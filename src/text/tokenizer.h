#ifndef SAGA_TEXT_TOKENIZER_H_
#define SAGA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace saga::text {

/// One token with its byte span in the original text. Spans let the
/// mention detector map token matches back to character offsets.
struct Token {
  std::string text;        // lowercased
  size_t begin = 0;        // byte offset of first char
  size_t end = 0;          // byte offset one past last char
  bool capitalized = false;  // original form started with an uppercase letter
};

/// ASCII word tokenizer: splits on non-alphanumeric characters, records
/// spans and capitalization. Multilingual tokenization is out of scope
/// (the paper's service is multilingual; see DESIGN.md substitutions).
std::vector<Token> Tokenize(std::string_view text);

/// Splits text into sentence strings on [.!?] followed by whitespace.
std::vector<std::string> SplitSentences(std::string_view text);

/// Lowercased whitespace-joined token string ("Michael  JORDAN!" ->
/// "michael jordan").
std::string NormalizedTokenString(std::string_view text);

}  // namespace saga::text

#endif  // SAGA_TEXT_TOKENIZER_H_
