#include "text/hashing_vectorizer.h"

#include <cmath>
#include <set>
#include <string>

#include "common/hash.h"
#include "text/tokenizer.h"

namespace saga::text {

HashingVectorizer::HashingVectorizer() : HashingVectorizer(Options()) {}

HashingVectorizer::HashingVectorizer(Options options) : options_(options) {}

void HashingVectorizer::FitDf(const std::vector<std::string_view>& docs) {
  for (std::string_view doc : docs) {
    std::set<std::string> seen;
    for (const Token& t : Tokenize(doc)) seen.insert(t.text);
    for (const auto& tok : seen) ++df_[tok];
    ++num_docs_;
  }
}

void HashingVectorizer::FitDf(const std::vector<std::string>& docs) {
  std::vector<std::string_view> views(docs.begin(), docs.end());
  FitDf(views);
}

double HashingVectorizer::IdfWeight(const std::string& token) const {
  if (!options_.use_idf || num_docs_ == 0) return 1.0;
  auto it = df_.find(token);
  const double df = it == df_.end() ? 0.0 : static_cast<double>(it->second);
  return std::log((1.0 + num_docs_) / (1.0 + df)) + 0.1;
}

void HashingVectorizer::AddTokenWeight(std::string_view token, double weight,
                                       std::vector<float>* vec) const {
  const uint64_t h = Hash64(token);
  const uint32_t dim = static_cast<uint32_t>(options_.dim);
  const uint32_t idx = static_cast<uint32_t>(h % dim);
  const double sign = (Mix64(h) & 1) ? 1.0 : -1.0;
  (*vec)[idx] += static_cast<float>(sign * weight);
}

std::vector<float> HashingVectorizer::Embed(std::string_view text) const {
  std::vector<float> vec(options_.dim, 0.0f);
  const std::vector<Token> tokens = Tokenize(text);
  for (size_t i = 0; i < tokens.size(); ++i) {
    AddTokenWeight(tokens[i].text, IdfWeight(tokens[i].text), &vec);
    if (options_.use_bigrams && i + 1 < tokens.size()) {
      const std::string bigram = tokens[i].text + "_" + tokens[i + 1].text;
      AddTokenWeight(bigram, 0.5, &vec);
    }
  }
  double norm_sq = 0.0;
  for (float v : vec) norm_sq += static_cast<double>(v) * v;
  if (norm_sq > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : vec) v *= inv;
  }
  return vec;
}

double HashingVectorizer::Cosine(const std::vector<float>& a,
                                 const std::vector<float>& b) {
  double dot = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) dot += static_cast<double>(a[i]) * b[i];
  return dot;
}

}  // namespace saga::text
