#include "text/aho_corasick.h"

#include <cassert>
#include <queue>

namespace saga::text {

uint32_t AhoCorasick::AddPattern(std::string_view pattern) {
  assert(!built_);
  int32_t node = 0;
  for (unsigned char c : pattern) {
    auto it = nodes_[node].next.find(c);
    if (it == nodes_[node].next.end()) {
      nodes_.emplace_back();
      const int32_t child = static_cast<int32_t>(nodes_.size() - 1);
      nodes_[node].next.emplace(c, child);
      node = child;
    } else {
      node = it->second;
    }
  }
  const uint32_t idx = static_cast<uint32_t>(patterns_.size());
  nodes_[node].outputs.push_back(idx);
  patterns_.emplace_back(pattern);
  return idx;
}

void AhoCorasick::Build() {
  assert(!built_);
  std::queue<int32_t> q;
  for (auto& [c, child] : nodes_[0].next) {
    nodes_[child].fail = 0;
    q.push(child);
  }
  while (!q.empty()) {
    const int32_t node = q.front();
    q.pop();
    for (auto& [c, child] : nodes_[node].next) {
      int32_t f = nodes_[node].fail;
      while (f != 0 && !nodes_[f].next.count(c)) f = nodes_[f].fail;
      auto it = nodes_[f].next.find(c);
      nodes_[child].fail =
          (it != nodes_[f].next.end() && it->second != child) ? it->second : 0;
      const auto& fail_outputs = nodes_[nodes_[child].fail].outputs;
      nodes_[child].outputs.insert(nodes_[child].outputs.end(),
                                   fail_outputs.begin(), fail_outputs.end());
      q.push(child);
    }
  }
  built_ = true;
}

std::vector<AhoCorasick::Match> AhoCorasick::FindAll(
    std::string_view text) const {
  assert(built_);
  std::vector<Match> matches;
  int32_t node = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const uint8_t c = static_cast<uint8_t>(text[i]);
    while (node != 0 && !nodes_[node].next.count(c)) {
      node = nodes_[node].fail;
    }
    auto it = nodes_[node].next.find(c);
    node = it == nodes_[node].next.end() ? 0 : it->second;
    for (uint32_t pat : nodes_[node].outputs) {
      Match m;
      m.end = i + 1;
      m.begin = m.end - patterns_[pat].size();
      m.pattern = pat;
      matches.push_back(m);
    }
  }
  return matches;
}

}  // namespace saga::text
