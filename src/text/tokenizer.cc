#include "text/tokenizer.h"

#include <cctype>

namespace saga::text {

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '\'';
}
}  // namespace

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) ++i;
    if (i >= text.size()) break;
    const size_t begin = i;
    while (i < text.size() && IsWordChar(text[i])) ++i;
    Token tok;
    tok.begin = begin;
    tok.end = i;
    tok.capitalized =
        std::isupper(static_cast<unsigned char>(text[begin])) != 0;
    tok.text.reserve(i - begin);
    for (size_t j = begin; j < i; ++j) {
      tok.text.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text[j]))));
    }
    tokens.push_back(std::move(tok));
  }
  return tokens;
}

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const bool end_mark = (c == '.' || c == '!' || c == '?');
    const bool at_break =
        end_mark && (i + 1 >= text.size() ||
                     std::isspace(static_cast<unsigned char>(text[i + 1])));
    if (at_break) {
      const std::string_view sentence = text.substr(start, i + 1 - start);
      if (!sentence.empty()) out.emplace_back(sentence);
      start = i + 1;
    }
  }
  if (start < text.size()) {
    std::string tail(text.substr(start));
    // Keep only non-blank tails.
    bool blank = true;
    for (char c : tail) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) out.push_back(std::move(tail));
  }
  return out;
}

std::string NormalizedTokenString(std::string_view text) {
  std::string out;
  for (const Token& tok : Tokenize(text)) {
    if (!out.empty()) out.push_back(' ');
    out += tok.text;
  }
  return out;
}

}  // namespace saga::text
