#ifndef SAGA_TEXT_SIMILARITY_H_
#define SAGA_TEXT_SIMILARITY_H_

#include <string_view>
#include <vector>

namespace saga::text {

/// Levenshtein edit distance (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// 1 - normalized edit distance, in [0, 1].
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1]; standard prefix boost (p=0.1,
/// max prefix 4). The on-device entity matcher uses this for names.
double JaroWinkler(std::string_view a, std::string_view b);

/// Jaccard similarity of the two token sets (lowercased word tokens).
double TokenJaccard(std::string_view a, std::string_view b);

}  // namespace saga::text

#endif  // SAGA_TEXT_SIMILARITY_H_
