#ifndef SAGA_TEXT_AHO_CORASICK_H_
#define SAGA_TEXT_AHO_CORASICK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace saga::text {

/// Multi-pattern string matcher (Aho-Corasick over bytes). The mention
/// detector compiles the KG alias gazetteer (hundreds of thousands of
/// surface forms) into one automaton and scans each document once.
class AhoCorasick {
 public:
  struct Match {
    size_t begin = 0;       // byte offset in the haystack
    size_t end = 0;         // one past the last byte
    uint32_t pattern = 0;   // index of the matched pattern
  };

  AhoCorasick() = default;

  /// Adds a pattern before Build(); returns its index. Patterns should
  /// be normalized (lowercased) by the caller; matching is exact bytes.
  uint32_t AddPattern(std::string_view pattern);

  /// Finalizes failure links. Must be called once, after all patterns.
  void Build();

  /// All (possibly overlapping) pattern occurrences in `text`.
  std::vector<Match> FindAll(std::string_view text) const;

  size_t num_patterns() const { return patterns_.size(); }
  const std::string& pattern(uint32_t idx) const { return patterns_[idx]; }

 private:
  struct Node {
    std::unordered_map<uint8_t, int32_t> next;
    int32_t fail = 0;
    std::vector<uint32_t> outputs;
  };

  std::vector<Node> nodes_{1};
  std::vector<std::string> patterns_;
  bool built_ = false;
};

}  // namespace saga::text

#endif  // SAGA_TEXT_AHO_CORASICK_H_
