#include "text/similarity.h"

#include <algorithm>
#include <set>
#include <string>

#include "text/tokenizer.h"

namespace saga::text {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t d = EditDistance(a, b);
  const size_t m = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(m);
}

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > match_window ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  const double jaro =
      (m / static_cast<double>(a.size()) + m / static_cast<double>(b.size()) +
       (m - static_cast<double>(transpositions) / 2.0) / m) /
      3.0;

  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] == b[i]) ++prefix;
    else break;
  }
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  std::set<std::string> sa;
  std::set<std::string> sb;
  for (const Token& t : Tokenize(a)) sa.insert(t.text);
  for (const Token& t : Tokenize(b)) sb.insert(t.text);
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace saga::text
