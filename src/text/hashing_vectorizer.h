#ifndef SAGA_TEXT_HASHING_VECTORIZER_H_
#define SAGA_TEXT_HASHING_VECTORIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace saga::text {

/// Feature-hashing text embedder: each (lowercased) token and token
/// bigram hashes to a dimension with a sign hash, producing a dense
/// L2-normalized vector. Plays the role of the paper's learned text
/// encoders for contextual reranking: entity textual features (name,
/// description, facts) embed into the same space as query/document
/// context, and cosine similarity is meaningful because shared tokens
/// land in shared dimensions.
class HashingVectorizer {
 public:
  struct Options {
    int dim = 256;
    bool use_bigrams = true;
    /// Down-weight frequent tokens: weight = 1/log(2 + df) when a
    /// document-frequency table is supplied via FitDf.
    bool use_idf = true;
  };

  HashingVectorizer();
  explicit HashingVectorizer(Options options);

  /// Accumulates document frequencies from a corpus sample so Embed can
  /// idf-weight. Optional; without it all tokens weigh 1.
  void FitDf(const std::vector<std::string_view>& docs);
  void FitDf(const std::vector<std::string>& docs);

  /// Dense L2-normalized embedding of `text`.
  std::vector<float> Embed(std::string_view text) const;

  /// Cosine similarity of two vectors from this vectorizer (assumes
  /// both are L2-normalized, so this is a dot product).
  static double Cosine(const std::vector<float>& a,
                       const std::vector<float>& b);

  int dim() const { return options_.dim; }

 private:
  void AddTokenWeight(std::string_view token, double weight,
                      std::vector<float>* vec) const;
  double IdfWeight(const std::string& token) const;

  Options options_;
  std::unordered_map<std::string, uint32_t> df_;
  uint32_t num_docs_ = 0;
};

}  // namespace saga::text

#endif  // SAGA_TEXT_HASHING_VECTORIZER_H_
