#ifndef SAGA_ODKE_CORROBORATOR_H_
#define SAGA_ODKE_CORROBORATOR_H_

#include <array>
#include <vector>

#include "common/rng.h"
#include "odke/extractor.h"

namespace saga::odke {

/// Evidence features of one candidate *value* (all extractions that
/// agree on it), Fig 6 step 5: "number of support, extractor type and
/// confidence, and quality of the source page".
struct EvidenceFeatures {
  static constexpr int kDim = 10;

  double log_support = 0.0;        // log(1 + #extractions)
  double max_confidence = 0.0;
  double mean_confidence = 0.0;
  double infobox_fraction = 0.0;   // share from the rule-based extractor
  double mean_source_quality = 0.0;
  double max_source_quality = 0.0;
  double recency = 0.0;            // max timestamp / 1000
  double distinct_domains = 0.0;   // log(1 + #distinct domains)
  /// Subject-context match of the supporting documents (gap-relative,
  /// in [0,1]) — the namesake-disambiguation signal.
  double max_subject_context = 0.0;
  double mean_subject_context = 0.0;

  std::array<double, kDim> AsArray() const {
    return {log_support,        max_confidence,      mean_confidence,
            infobox_fraction,   mean_source_quality, max_source_quality,
            recency,            distinct_domains,    max_subject_context,
            mean_subject_context};
  }
};

/// All evidence agreeing on one value.
struct ValueGroup {
  kg::Value value;
  std::vector<CandidateFact> evidence;
  EvidenceFeatures features;
};

/// Groups candidate facts by value and computes evidence features.
std::vector<ValueGroup> GroupByValue(
    const std::vector<CandidateFact>& candidates);

/// Logistic-regression corroboration model over evidence features —
/// the "trained machine learning model ... to corroborate and identify
/// high quality facts" (§4).
class CorroborationModel {
 public:
  CorroborationModel();

  /// Model with explicit weights [bias, w_0..w_kDim-1]; used for
  /// feature ablations (e.g. support-count-only corroboration).
  static CorroborationModel WithWeights(
      const std::array<double, EvidenceFeatures::kDim + 1>& weights);

  /// Trains with SGD on labeled groups (label: value is correct).
  void Train(const std::vector<std::pair<EvidenceFeatures, bool>>& examples,
             int epochs = 30, double lr = 0.3, uint64_t seed = 17);

  /// P(value correct | evidence).
  double Predict(const EvidenceFeatures& f) const;

  bool trained() const { return trained_; }
  const std::array<double, EvidenceFeatures::kDim + 1>& weights() const {
    return weights_;
  }

 private:
  /// Sensible hand-tuned prior used before / without training.
  void SetDefaultWeights();

  std::array<double, EvidenceFeatures::kDim + 1> weights_{};  // [bias, w...]
  bool trained_ = false;
};

/// Picks the winning value among groups and decides acceptance.
class Corroborator {
 public:
  struct Options {
    double accept_threshold = 0.5;
  };

  struct Decision {
    bool accepted = false;
    kg::Value value;
    double probability = 0.0;
    /// Index of the winning group in the input vector.
    size_t group_index = 0;
  };

  explicit Corroborator(const CorroborationModel* model);
  Corroborator(const CorroborationModel* model, Options options);

  Decision Decide(const std::vector<ValueGroup>& groups) const;

 private:
  const CorroborationModel* model_;
  Options options_;
};

}  // namespace saga::odke

#endif  // SAGA_ODKE_CORROBORATOR_H_
