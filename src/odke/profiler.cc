#include "odke/profiler.h"

namespace saga::odke {

std::string_view GapReasonName(GapReason reason) {
  switch (reason) {
    case GapReason::kQueryLog:
      return "query_log";
    case GapReason::kProfiling:
      return "profiling";
    case GapReason::kTrending:
      return "trending";
    case GapReason::kStale:
      return "stale";
  }
  return "?";
}

KgProfiler::KgProfiler(const kg::KnowledgeGraph* kg)
    : KgProfiler(kg, Options()) {}

KgProfiler::KgProfiler(const kg::KnowledgeGraph* kg, Options options)
    : kg_(kg), options_(options) {}

std::vector<kg::EntityId> KgProfiler::EntitiesOfType(kg::TypeId t) const {
  std::vector<kg::EntityId> out;
  for (const auto& rec : kg_->catalog().records()) {
    for (kg::TypeId has : rec.types) {
      if (kg_->ontology().IsSubtypeOf(has, t)) {
        out.push_back(rec.id);
        break;
      }
    }
  }
  return out;
}

double KgProfiler::Coverage(kg::TypeId t, kg::PredicateId p) const {
  const std::vector<kg::EntityId> entities = EntitiesOfType(t);
  if (entities.empty()) return 0.0;
  size_t have = 0;
  for (kg::EntityId e : entities) {
    if (!kg_->triples().BySubjectPredicate(e, p).empty()) ++have;
  }
  return static_cast<double>(have) / static_cast<double>(entities.size());
}

std::vector<FactGap> KgProfiler::FindCoverageGaps() const {
  std::vector<FactGap> gaps;
  for (const kg::PredicateMeta& meta : kg_->ontology().predicates()) {
    if (options_.functional_only && !meta.functional) continue;
    if (options_.literal_predicates_only &&
        meta.range_kind == kg::Value::Kind::kEntity) {
      continue;
    }
    if (!meta.domain.valid()) continue;
    const std::vector<kg::EntityId> entities = EntitiesOfType(meta.domain);
    if (entities.empty()) continue;
    size_t have = 0;
    std::vector<kg::EntityId> missing;
    for (kg::EntityId e : entities) {
      if (kg_->triples().BySubjectPredicate(e, meta.id).empty()) {
        missing.push_back(e);
      } else {
        ++have;
      }
    }
    const double coverage =
        static_cast<double>(have) / static_cast<double>(entities.size());
    if (coverage < options_.expected_coverage) continue;
    for (kg::EntityId e : missing) {
      gaps.push_back(FactGap{e, meta.id, GapReason::kProfiling,
                             kg::kInvalidTripleIdx});
    }
  }
  return gaps;
}

std::vector<FactGap> KgProfiler::FindStaleFacts() const {
  std::vector<FactGap> gaps;
  kg_->triples().ForEach([&](kg::TripleIdx idx, const kg::Triple& t) {
    const kg::PredicateMeta& meta = kg_->ontology().predicate(t.predicate);
    if (options_.functional_only && !meta.functional) return;
    if (t.provenance.timestamp <= options_.staleness_horizon) {
      gaps.push_back(FactGap{t.subject, t.predicate, GapReason::kStale, idx});
    }
  });
  return gaps;
}

}  // namespace saga::odke
