#ifndef SAGA_ODKE_PIPELINE_H_
#define SAGA_ODKE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "annotation/context_reranker.h"
#include "annotation/web_linker.h"
#include "kg/knowledge_graph.h"
#include "odke/corroborator.h"
#include "odke/extractor.h"
#include "odke/fact_gap.h"
#include "odke/query_synthesizer.h"
#include "websim/corpus_generator.h"
#include "websim/search_engine.h"

namespace saga::odke {

/// Outcome of harvesting one gap.
struct GapResult {
  FactGap gap;
  bool filled = false;
  kg::Value value;
  double probability = 0.0;
  size_t docs_fetched = 0;
  size_t candidates_extracted = 0;
  size_t value_groups = 0;
  /// The evidence rows of the winning value (Fig 6 step 5 display).
  std::vector<CandidateFact> winning_evidence;
};

struct OdkeRunStats {
  size_t gaps_processed = 0;
  size_t gaps_filled = 0;
  size_t docs_fetched = 0;
  size_t candidates_extracted = 0;
  size_t stale_replaced = 0;
};

/// End-to-end Open-Domain Knowledge Extraction (Fig 5): gap -> query
/// synthesis -> targeted web search -> per-document extraction (rules +
/// text patterns, with annotation weak labels) -> corroboration ->
/// fusion into the KG with provenance.
class OdkePipeline {
 public:
  struct Options {
    /// Documents fetched per synthesized query.
    size_t docs_per_query = 5;
    Corroborator::Options corroborator;
    QuerySynthesizer::Options synthesizer;
    /// When false, skips search and scans the whole corpus per gap —
    /// the "volume" ablation showing why targeted search matters.
    bool targeted_search = true;
  };

  OdkePipeline(kg::KnowledgeGraph* kg, const websim::WebCorpus* corpus,
               const websim::SearchEngine* search,
               const annotation::AnnotationIndex* annotations,
               const CorroborationModel* model);
  OdkePipeline(kg::KnowledgeGraph* kg, const websim::WebCorpus* corpus,
               const websim::SearchEngine* search,
               const annotation::AnnotationIndex* annotations,
               const CorroborationModel* model, Options options);

  /// Harvests one gap without touching the KG.
  GapResult HarvestGap(const FactGap& gap) const;

  /// Harvests all gaps and fuses accepted facts into the KG (replacing
  /// the old triple for stale gaps).
  OdkeRunStats Run(const std::vector<FactGap>& gaps);

  /// All candidate extractions for a gap (exposed for corroboration
  /// model training and the Fig-6 example).
  std::vector<CandidateFact> ExtractCandidates(const FactGap& gap,
                                               size_t* docs_fetched) const;

 private:
  kg::KnowledgeGraph* kg_;
  const websim::WebCorpus* corpus_;
  const websim::SearchEngine* search_;
  const annotation::AnnotationIndex* annotations_;
  const CorroborationModel* model_;
  Options options_;
  QuerySynthesizer synthesizer_;
  InfoboxExtractor infobox_extractor_;
  TextPatternExtractor text_extractor_;
  /// Builds subject KG-context profiles for the namesake-
  /// disambiguation evidence feature.
  annotation::ContextReranker profiler_;
  kg::SourceId odke_source_;
};

}  // namespace saga::odke

#endif  // SAGA_ODKE_PIPELINE_H_
