#include "odke/pipeline.h"

#include <set>

#include "common/metrics.h"
#include "common/trace.h"

namespace saga::odke {

OdkePipeline::OdkePipeline(kg::KnowledgeGraph* kg,
                           const websim::WebCorpus* corpus,
                           const websim::SearchEngine* search,
                           const annotation::AnnotationIndex* annotations,
                           const CorroborationModel* model)
    : OdkePipeline(kg, corpus, search, annotations, model, Options()) {}

OdkePipeline::OdkePipeline(kg::KnowledgeGraph* kg,
                           const websim::WebCorpus* corpus,
                           const websim::SearchEngine* search,
                           const annotation::AnnotationIndex* annotations,
                           const CorroborationModel* model, Options options)
    : kg_(kg),
      corpus_(corpus),
      search_(search),
      annotations_(annotations),
      model_(model),
      options_(options),
      synthesizer_(kg, options.synthesizer),
      infobox_extractor_(kg),
      text_extractor_(kg),
      profiler_(kg) {
  odke_source_ = kg_->AddSource("odke", 0.75);
}

std::vector<CandidateFact> OdkePipeline::ExtractCandidates(
    const FactGap& gap, size_t* docs_fetched) const {
  // 1. Targeted retrieval (Fig 5: Query Synthesizer + Web Search) or a
  //    full corpus scan for the ablation.
  std::set<websim::DocId> doc_ids;
  {
    obs::ScopedSpan span("odke.pipeline.search");
    if (options_.targeted_search) {
      for (const std::string& query : synthesizer_.Synthesize(gap)) {
        for (const auto& hit :
             search_->Search(query, options_.docs_per_query)) {
          doc_ids.insert(hit.doc);
        }
      }
    } else {
      for (websim::DocId id = 0; id < corpus_->size(); ++id) {
        doc_ids.insert(id);
      }
    }
  }
  if (docs_fetched != nullptr) *docs_fetched = doc_ids.size();
  SAGA_COUNTER("odke.pipeline.docs_fetched").Add(
      static_cast<int64_t>(doc_ids.size()));
  obs::ScopedSpan extract_span("odke.pipeline.extract");

  // 2. Per-document extraction with both extractor families, scoring
  //    each source document against the subject's KG context (its
  //    occupation and graph neighbors) so the corroborator can tell
  //    the target apart from namesakes.
  const std::vector<float> subject_profile = profiler_.vectorizer().Embed(
      profiler_.EntityProfileText(gap.subject));
  std::vector<CandidateFact> candidates;
  for (websim::DocId id : doc_ids) {
    const websim::WebDocument& doc = corpus_->doc(id);
    const annotation::AnnotatedDocument* ann =
        annotations_ == nullptr ? nullptr : annotations_->ForDoc(id);
    std::vector<CandidateFact> from_doc;
    for (auto& c : infobox_extractor_.Extract(doc, gap, ann)) {
      from_doc.push_back(std::move(c));
    }
    for (auto& c : text_extractor_.Extract(doc, gap, ann)) {
      from_doc.push_back(std::move(c));
    }
    if (!from_doc.empty()) {
      const double context = text::HashingVectorizer::Cosine(
          subject_profile, profiler_.vectorizer().Embed(doc.body));
      for (auto& c : from_doc) {
        c.subject_context = context;
        candidates.push_back(std::move(c));
      }
    }
  }
  // Normalize context scores within the gap: only relative match
  // matters when choosing among this gap's candidates.
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& c : candidates) {
    lo = std::min(lo, c.subject_context);
    hi = std::max(hi, c.subject_context);
  }
  if (hi - lo > 1e-9) {
    for (auto& c : candidates) {
      c.subject_context = (c.subject_context - lo) / (hi - lo);
    }
  } else {
    for (auto& c : candidates) c.subject_context = 1.0;
  }
  return candidates;
}

GapResult OdkePipeline::HarvestGap(const FactGap& gap) const {
  obs::ScopedSpan span("odke.pipeline.harvest_gap");
  obs::ScopedLatency timer(SAGA_LATENCY("odke.pipeline.harvest_ns"));
  GapResult result;
  result.gap = gap;
  std::vector<CandidateFact> candidates =
      ExtractCandidates(gap, &result.docs_fetched);
  result.candidates_extracted = candidates.size();
  if (candidates.empty()) return result;

  obs::ScopedSpan corroborate_span("odke.pipeline.corroborate");
  const std::vector<ValueGroup> groups = GroupByValue(candidates);
  result.value_groups = groups.size();
  Corroborator corroborator(model_, options_.corroborator);
  const Corroborator::Decision decision = corroborator.Decide(groups);
  result.probability = decision.probability;
  if (decision.accepted) {
    result.filled = true;
    result.value = decision.value;
    result.winning_evidence = groups[decision.group_index].evidence;
  }
  return result;
}

OdkeRunStats OdkePipeline::Run(const std::vector<FactGap>& gaps) {
  obs::ScopedSpan span("odke.pipeline.run");
  OdkeRunStats stats;
  for (const FactGap& gap : gaps) {
    ++stats.gaps_processed;
    SAGA_COUNTER("odke.pipeline.gaps_processed").Add();
    const GapResult result = HarvestGap(gap);
    stats.docs_fetched += result.docs_fetched;
    stats.candidates_extracted += result.candidates_extracted;
    if (!result.filled) continue;
    ++stats.gaps_filled;
    SAGA_COUNTER("odke.pipeline.gaps_filled").Add();
    if (gap.reason == GapReason::kStale &&
        gap.stale_triple != kg::kInvalidTripleIdx) {
      kg_->triples().Remove(gap.stale_triple);
      ++stats.stale_replaced;
    }
    kg_->AddFact(gap.subject, gap.predicate, result.value, odke_source_,
                 result.probability);
  }
  return stats;
}

}  // namespace saga::odke
