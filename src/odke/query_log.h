#ifndef SAGA_ODKE_QUERY_LOG_H_
#define SAGA_ODKE_QUERY_LOG_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "kg/kg_generator.h"
#include "kg/knowledge_graph.h"
#include "odke/fact_gap.h"

namespace saga::odke {

/// One user query asking for a fact ("michelle williams date of
/// birth"), already semantically parsed to (subject, predicate).
struct FactQuery {
  std::string text;
  kg::EntityId subject;
  kg::PredicateId predicate;
};

/// Synthesizes a popularity-weighted query log over functional facts of
/// the generated KG (users ask about popular entities more).
std::vector<FactQuery> GenerateQueryLog(const kg::GeneratedKg& gen,
                                        size_t num_queries, Rng* rng);

/// Reactive gap mining (§4: "analyzing query logs and finding user
/// queries that are not answered correctly"): queries the KG cannot
/// answer become FactGaps, deduplicated, ordered by ask frequency.
std::vector<FactGap> FindUnansweredQueries(
    const kg::KnowledgeGraph& kg, const std::vector<FactQuery>& log);

/// Predictive gap mining (§4: "predict new facts missing from the
/// current knowledge graph by analyzing potential trending queries"):
/// (subject, predicate) pairs whose ask rate grew by >= `min_growth`x
/// between the two log windows, asked >= `min_asks` times recently,
/// and unanswered by the KG. Ordered by growth, steepest first.
std::vector<FactGap> FindTrendingGaps(const kg::KnowledgeGraph& kg,
                                      const std::vector<FactQuery>& old_window,
                                      const std::vector<FactQuery>& new_window,
                                      double min_growth = 3.0,
                                      size_t min_asks = 3);

}  // namespace saga::odke

#endif  // SAGA_ODKE_QUERY_LOG_H_
