#ifndef SAGA_ODKE_QUERY_SYNTHESIZER_H_
#define SAGA_ODKE_QUERY_SYNTHESIZER_H_

#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "odke/fact_gap.h"

namespace saga::odke {

/// Auto-composes Web search queries for a missing fact (§4, Fig 6 step
/// 2: "auto-generated search queries based on the missing fact").
class QuerySynthesizer {
 public:
  struct Options {
    /// Cap on generated query variants per gap.
    int max_queries = 4;
    /// Append a disambiguating context term (the entity's primary
    /// occupation) so namesakes retrieve the right pages — the Fig-6
    /// "music artist Michelle Williams" trick.
    bool add_context_term = true;
  };

  explicit QuerySynthesizer(const kg::KnowledgeGraph* kg);
  QuerySynthesizer(const kg::KnowledgeGraph* kg, Options options);

  std::vector<std::string> Synthesize(const FactGap& gap) const;

 private:
  const kg::KnowledgeGraph* kg_;
  Options options_;
};

}  // namespace saga::odke

#endif  // SAGA_ODKE_QUERY_SYNTHESIZER_H_
