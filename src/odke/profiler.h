#ifndef SAGA_ODKE_PROFILER_H_
#define SAGA_ODKE_PROFILER_H_

#include <map>
#include <vector>

#include "kg/knowledge_graph.h"
#include "odke/fact_gap.h"

namespace saga::odke {

/// Proactive coverage / freshness profiling of the KG (§4: "identify
/// potential coverage and freshness issues ... via knowledge graph
/// profiling").
class KgProfiler {
 public:
  struct Options {
    /// A predicate is "expected" for a type when at least this fraction
    /// of that type's entities carry it; entities lacking an expected
    /// predicate are coverage gaps.
    double expected_coverage = 0.5;
    /// Facts with provenance timestamps <= this horizon are considered
    /// possibly stale.
    int64_t staleness_horizon = 0;
    /// Only profile functional predicates (multi-valued absence is not
    /// a reliable gap signal).
    bool functional_only = true;
    /// Only emit gaps for literal-valued predicates — the ones ODKE's
    /// extractor families can currently harvest from text/infoboxes.
    bool literal_predicates_only = false;
  };

  explicit KgProfiler(const kg::KnowledgeGraph* kg);
  KgProfiler(const kg::KnowledgeGraph* kg, Options options);

  /// Fraction of entities with domain type `t` that carry predicate
  /// `p` (predicate domains come from the ontology).
  double Coverage(kg::TypeId t, kg::PredicateId p) const;

  /// Coverage gaps: entities missing predicates their type usually has.
  std::vector<FactGap> FindCoverageGaps() const;

  /// Stale facts: functional facts whose timestamp is at or below the
  /// horizon.
  std::vector<FactGap> FindStaleFacts() const;

 private:
  std::vector<kg::EntityId> EntitiesOfType(kg::TypeId t) const;

  const kg::KnowledgeGraph* kg_;
  Options options_;
};

}  // namespace saga::odke

#endif  // SAGA_ODKE_PROFILER_H_
