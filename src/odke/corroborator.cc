#include "odke/corroborator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace saga::odke {

namespace {

double SigmoidStable(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

EvidenceFeatures ComputeFeatures(const std::vector<CandidateFact>& evidence) {
  EvidenceFeatures f;
  if (evidence.empty()) return f;
  double conf_sum = 0.0;
  double quality_sum = 0.0;
  double context_sum = 0.0;
  size_t infobox = 0;
  int64_t max_ts = 0;
  std::set<std::string> domains;
  for (const CandidateFact& c : evidence) {
    conf_sum += c.confidence;
    quality_sum += c.source_quality;
    context_sum += c.subject_context;
    f.max_confidence = std::max(f.max_confidence, c.confidence);
    f.max_source_quality = std::max(f.max_source_quality, c.source_quality);
    f.max_subject_context =
        std::max(f.max_subject_context, c.subject_context);
    if (c.extractor == ExtractorKind::kInfoboxRule) ++infobox;
    max_ts = std::max(max_ts, c.doc_timestamp);
    domains.insert(c.domain);
  }
  const double n = static_cast<double>(evidence.size());
  f.log_support = std::log1p(n);
  f.mean_confidence = conf_sum / n;
  f.infobox_fraction = static_cast<double>(infobox) / n;
  f.mean_source_quality = quality_sum / n;
  f.recency = static_cast<double>(max_ts) / 1000.0;
  f.distinct_domains = std::log1p(static_cast<double>(domains.size()));
  f.mean_subject_context = context_sum / n;
  return f;
}

}  // namespace

std::vector<ValueGroup> GroupByValue(
    const std::vector<CandidateFact>& candidates) {
  // Distinct values per gap are few (a handful of conflicting dates),
  // so exact value-equality scan beats hashing subtleties.
  std::vector<ValueGroup> groups;
  for (const CandidateFact& c : candidates) {
    ValueGroup* target = nullptr;
    for (ValueGroup& g : groups) {
      if (g.value == c.value) {
        target = &g;
        break;
      }
    }
    if (target == nullptr) {
      ValueGroup group;
      group.value = c.value;
      groups.push_back(std::move(group));
      target = &groups.back();
    }
    target->evidence.push_back(c);
  }
  for (ValueGroup& g : groups) {
    g.features = ComputeFeatures(g.evidence);
  }
  return groups;
}

CorroborationModel::CorroborationModel() { SetDefaultWeights(); }

CorroborationModel CorroborationModel::WithWeights(
    const std::array<double, EvidenceFeatures::kDim + 1>& weights) {
  CorroborationModel model;
  model.weights_ = weights;
  model.trained_ = true;
  return model;
}

void CorroborationModel::SetDefaultWeights() {
  // Bias + [log_support, max_conf, mean_conf, infobox_frac,
  //         mean_quality, max_quality, recency, distinct_domains,
  //         max_subject_context, mean_subject_context].
  // Subject context carries heavy weight: support alone is misleading
  // when a popular namesake has more pages (Fig 6).
  weights_ = {-4.0, 1.0, 1.5, 0.5, 0.8, 1.0, 0.5, 0.2, 0.6, 2.5, 1.0};
}

void CorroborationModel::Train(
    const std::vector<std::pair<EvidenceFeatures, bool>>& examples,
    int epochs, double lr, uint64_t seed) {
  if (examples.empty()) return;
  Rng rng(seed);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const auto& [features, label] = examples[idx];
      const auto x = features.AsArray();
      double z = weights_[0];
      for (int i = 0; i < EvidenceFeatures::kDim; ++i) {
        z += weights_[i + 1] * x[i];
      }
      const double err = SigmoidStable(z) - (label ? 1.0 : 0.0);
      weights_[0] -= lr * err;
      for (int i = 0; i < EvidenceFeatures::kDim; ++i) {
        weights_[i + 1] -= lr * (err * x[i] + 1e-4 * weights_[i + 1]);
      }
    }
  }
  trained_ = true;
}

double CorroborationModel::Predict(const EvidenceFeatures& f) const {
  const auto x = f.AsArray();
  double z = weights_[0];
  for (int i = 0; i < EvidenceFeatures::kDim; ++i) {
    z += weights_[i + 1] * x[i];
  }
  return SigmoidStable(z);
}

Corroborator::Corroborator(const CorroborationModel* model)
    : Corroborator(model, Options()) {}

Corroborator::Corroborator(const CorroborationModel* model, Options options)
    : model_(model), options_(options) {}

Corroborator::Decision Corroborator::Decide(
    const std::vector<ValueGroup>& groups) const {
  Decision d;
  if (groups.empty()) return d;
  double best = -1.0;
  for (size_t i = 0; i < groups.size(); ++i) {
    const double p = model_->Predict(groups[i].features);
    if (p > best) {
      best = p;
      d.group_index = i;
    }
  }
  d.probability = best;
  d.value = groups[d.group_index].value;
  d.accepted = best >= options_.accept_threshold;
  return d;
}

}  // namespace saga::odke
