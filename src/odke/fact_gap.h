#ifndef SAGA_ODKE_FACT_GAP_H_
#define SAGA_ODKE_FACT_GAP_H_

#include <string_view>

#include "kg/ids.h"
#include "kg/triple.h"

namespace saga::odke {

/// How a coverage/freshness issue was identified (§4: reactively from
/// query logs, proactively from KG profiling, or predictively from
/// trends).
enum class GapReason {
  kQueryLog,
  kProfiling,
  kTrending,
  kStale,
};

std::string_view GapReasonName(GapReason reason);

/// A missing or stale fact ODKE should harvest: "entity X lacks
/// predicate P" (or "holds a stale value for P").
struct FactGap {
  kg::EntityId subject;
  kg::PredicateId predicate;
  GapReason reason = GapReason::kProfiling;
  /// For kStale: the existing outdated triple to replace.
  kg::TripleIdx stale_triple = kg::kInvalidTripleIdx;
};

}  // namespace saga::odke

#endif  // SAGA_ODKE_FACT_GAP_H_
