#include "odke/query_synthesizer.h"

#include "common/string_util.h"

namespace saga::odke {

QuerySynthesizer::QuerySynthesizer(const kg::KnowledgeGraph* kg)
    : QuerySynthesizer(kg, Options()) {}

QuerySynthesizer::QuerySynthesizer(const kg::KnowledgeGraph* kg,
                                   Options options)
    : kg_(kg), options_(options) {}

std::vector<std::string> QuerySynthesizer::Synthesize(
    const FactGap& gap) const {
  const kg::EntityRecord& rec = kg_->catalog().record(gap.subject);
  const kg::PredicateMeta& pred = kg_->ontology().predicate(gap.predicate);
  std::vector<std::string> queries;

  // Context term: first occupation-ish entity neighbor name (cheap
  // proxy for "music artist" vs "actress").
  std::string context;
  if (options_.add_context_term) {
    auto occ = kg_->ontology().FindPredicate("occupation");
    if (occ.ok()) {
      for (const kg::Value& v : kg_->ObjectsOf(gap.subject, occ.value())) {
        if (v.is_entity()) {
          context = kg_->catalog().name(v.entity());
          break;
        }
      }
    }
  }

  queries.push_back(rec.canonical_name + " " + pred.surface_form);
  if (!context.empty()) {
    queries.push_back(rec.canonical_name + " " + context + " " +
                      pred.surface_form);
  }
  for (const std::string& alias : rec.aliases) {
    if (static_cast<int>(queries.size()) >= options_.max_queries) break;
    if (alias == rec.canonical_name) continue;
    queries.push_back(alias + " " + pred.surface_form);
  }
  if (static_cast<int>(queries.size()) < options_.max_queries) {
    queries.push_back(rec.canonical_name + " profile");
  }
  if (static_cast<int>(queries.size()) > options_.max_queries) {
    queries.resize(options_.max_queries);
  }
  return queries;
}

}  // namespace saga::odke
