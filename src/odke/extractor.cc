#include "odke/extractor.h"

#include <algorithm>
#include <cctype>

#include "websim/corpus_generator.h"

namespace saga::odke {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Infobox key conventions for the predicates ODKE currently harvests.
std::string InfoboxKeyFor(const std::string& predicate_name) {
  if (predicate_name == "date_of_birth") return "born";
  if (predicate_name == "height_cm") return "height_cm";
  return predicate_name;
}

/// Parses an infobox value string per the predicate's range kind.
bool ParseInfoboxValue(const kg::PredicateMeta& meta, const std::string& raw,
                       kg::Value* out) {
  switch (meta.range_kind) {
    case kg::Value::Kind::kDate: {
      kg::Date d;
      if (!kg::Date::Parse(raw, &d)) return false;
      *out = kg::Value::OfDate(d);
      return true;
    }
    case kg::Value::Kind::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(raw.c_str(), &end, 10);
      if (end == raw.c_str()) return false;
      *out = kg::Value::Int(v);
      return true;
    }
    case kg::Value::Kind::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(raw.c_str(), &end);
      if (end == raw.c_str()) return false;
      *out = kg::Value::Double(v);
      return true;
    }
    case kg::Value::Kind::kString:
      *out = kg::Value::String(raw);
      return true;
    default:
      return false;
  }
}

/// True when any annotation links `subject` with a span overlapping
/// [begin, end).
bool AnnotationSupports(const annotation::AnnotatedDocument* annotations,
                        kg::EntityId subject, size_t begin, size_t end) {
  if (annotations == nullptr) return false;
  for (const auto& a : annotations->annotations) {
    if (a.entity == subject && a.mention.begin < end &&
        begin < a.mention.end) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string_view ExtractorKindName(ExtractorKind kind) {
  switch (kind) {
    case ExtractorKind::kInfoboxRule:
      return "infobox_rule";
    case ExtractorKind::kTextPattern:
      return "text_pattern";
  }
  return "?";
}

std::vector<CandidateFact> InfoboxExtractor::Extract(
    const websim::WebDocument& doc, const FactGap& gap,
    const annotation::AnnotatedDocument* annotations) const {
  (void)annotations;
  std::vector<CandidateFact> out;
  if (doc.infobox.empty()) return out;

  // The page must be about the subject: infobox name matches an alias,
  // or the title contains the canonical name.
  const kg::EntityRecord& rec = kg_->catalog().record(gap.subject);
  bool about_subject = false;
  for (const auto& [key, value] : doc.infobox) {
    if (key != "name") continue;
    const std::string norm = kg::EntityCatalog::NormalizeSurface(value);
    for (const std::string& alias : rec.aliases) {
      if (kg::EntityCatalog::NormalizeSurface(alias) == norm) {
        about_subject = true;
        break;
      }
    }
  }
  if (!about_subject &&
      Lower(doc.title).find(Lower(rec.canonical_name)) != std::string::npos) {
    about_subject = true;
  }
  if (!about_subject) return out;

  const kg::PredicateMeta& meta = kg_->ontology().predicate(gap.predicate);
  const std::string wanted_key = InfoboxKeyFor(meta.name);
  for (const auto& [key, value] : doc.infobox) {
    if (key != wanted_key) continue;
    kg::Value parsed;
    if (!ParseInfoboxValue(meta, value, &parsed)) continue;
    CandidateFact fact;
    fact.subject = gap.subject;
    fact.predicate = gap.predicate;
    fact.value = parsed;
    fact.confidence = 0.9;  // rule-based on structured data: precise
    fact.extractor = ExtractorKind::kInfoboxRule;
    fact.doc = doc.id;
    fact.url = doc.url;
    fact.domain = doc.domain;
    fact.source_quality = doc.quality;
    fact.doc_timestamp = doc.timestamp;
    fact.support = key + ": " + value;
    out.push_back(std::move(fact));
  }
  return out;
}

std::vector<CandidateFact> TextPatternExtractor::Extract(
    const websim::WebDocument& doc, const FactGap& gap,
    const annotation::AnnotatedDocument* annotations) const {
  std::vector<CandidateFact> out;
  const kg::PredicateMeta& meta = kg_->ontology().predicate(gap.predicate);

  // Pattern templates per harvested predicate.
  std::string infix;
  if (meta.name == "date_of_birth") {
    infix = " was born on ";
  } else if (meta.name == "height_cm") {
    infix = " is ";
  } else {
    return out;  // predicate not supported by text patterns
  }

  const std::string body_lower = Lower(doc.body);
  const kg::EntityRecord& rec = kg_->catalog().record(gap.subject);
  for (const std::string& alias : rec.aliases) {
    const std::string pattern = Lower(alias) + infix;
    size_t pos = 0;
    while ((pos = body_lower.find(pattern, pos)) != std::string::npos) {
      const size_t value_begin = pos + pattern.size();
      const size_t sentence_end = doc.body.find(". ", value_begin);
      const size_t value_end = sentence_end == std::string::npos
                                   ? doc.body.size()
                                   : sentence_end;
      const std::string_view value_text =
          std::string_view(doc.body).substr(value_begin,
                                            value_end - value_begin);
      kg::Value parsed;
      bool ok = false;
      if (meta.name == "date_of_birth") {
        kg::Date d;
        ok = websim::ParseDateLong(value_text, &d);
        if (ok) parsed = kg::Value::OfDate(d);
      } else {  // height: "<int> cm tall"
        char* end = nullptr;
        const std::string value_str(value_text);
        const long long v = std::strtoll(value_str.c_str(), &end, 10);
        if (end != value_str.c_str() &&
            value_str.find("cm tall") != std::string::npos) {
          parsed = kg::Value::Int(v);
          ok = true;
        }
      }
      if (ok) {
        CandidateFact fact;
        fact.subject = gap.subject;
        fact.predicate = gap.predicate;
        fact.value = parsed;
        fact.confidence = 0.65;
        if (AnnotationSupports(annotations, gap.subject, pos,
                               pos + alias.size())) {
          // Weak label from web-scale semantic annotation (§4).
          fact.confidence = 0.8;
        }
        fact.extractor = ExtractorKind::kTextPattern;
        fact.doc = doc.id;
        fact.url = doc.url;
        fact.domain = doc.domain;
        fact.source_quality = doc.quality;
        fact.doc_timestamp = doc.timestamp;
        fact.support = std::string(
            std::string_view(doc.body).substr(pos, value_end - pos));
        out.push_back(std::move(fact));
      }
      pos = value_begin;
    }
  }
  return out;
}

}  // namespace saga::odke
