#ifndef SAGA_ODKE_EXTRACTOR_H_
#define SAGA_ODKE_EXTRACTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "annotation/web_linker.h"
#include "kg/knowledge_graph.h"
#include "odke/fact_gap.h"
#include "websim/web_document.h"

namespace saga::odke {

enum class ExtractorKind {
  kInfoboxRule,   // rule-based over semi-structured data (§4)
  kTextPattern,   // pattern/"neural" extraction from plain text (§4)
};

std::string_view ExtractorKindName(ExtractorKind kind);

/// One candidate fact pulled from one document — Fig 6 step 4. Carries
/// every evidence signal the corroborator consumes.
struct CandidateFact {
  kg::EntityId subject;
  kg::PredicateId predicate;
  kg::Value value;
  double confidence = 0.0;
  ExtractorKind extractor = ExtractorKind::kTextPattern;
  websim::DocId doc = 0;
  std::string url;
  std::string domain;
  double source_quality = 0.0;
  int64_t doc_timestamp = 0;
  /// The sentence / infobox row the value came from.
  std::string support;
  /// How well the source document matches the *target* subject's KG
  /// context (occupation, neighbors), normalized to [0, 1] within a
  /// gap. Separates the music artist's pages from the actress's when
  /// both share a name (Fig 6). Filled in by the pipeline.
  double subject_context = 0.0;
};

/// Extracts candidate values for (gap.subject, gap.predicate) from one
/// document. `annotations` (nullable) are the semantic-annotation weak
/// labels §4 mentions; extractors boost confidence when the subject is
/// annotated near the evidence.
class Extractor {
 public:
  virtual ~Extractor() = default;
  virtual ExtractorKind kind() const = 0;
  virtual std::vector<CandidateFact> Extract(
      const websim::WebDocument& doc, const FactGap& gap,
      const annotation::AnnotatedDocument* annotations) const = 0;
};

/// Rule-based key/value extraction from infobox blocks (schema.org-like
/// semi-structured data). High precision, only fires when the page is
/// about the subject.
class InfoboxExtractor : public Extractor {
 public:
  explicit InfoboxExtractor(const kg::KnowledgeGraph* kg) : kg_(kg) {}
  ExtractorKind kind() const override { return ExtractorKind::kInfoboxRule; }
  std::vector<CandidateFact> Extract(
      const websim::WebDocument& doc, const FactGap& gap,
      const annotation::AnnotatedDocument* annotations) const override;

 private:
  const kg::KnowledgeGraph* kg_;
};

/// Template extraction from plain text ("X was born on July 23, 1979",
/// "X is 185 cm tall"), standing in for the paper's LLM-based text
/// extractors. Confidence rises when a semantic annotation links the
/// matched name span to the target subject.
class TextPatternExtractor : public Extractor {
 public:
  explicit TextPatternExtractor(const kg::KnowledgeGraph* kg) : kg_(kg) {}
  ExtractorKind kind() const override { return ExtractorKind::kTextPattern; }
  std::vector<CandidateFact> Extract(
      const websim::WebDocument& doc, const FactGap& gap,
      const annotation::AnnotatedDocument* annotations) const override;

 private:
  const kg::KnowledgeGraph* kg_;
};

}  // namespace saga::odke

#endif  // SAGA_ODKE_EXTRACTOR_H_
