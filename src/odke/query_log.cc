#include "odke/query_log.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace saga::odke {

std::vector<FactQuery> GenerateQueryLog(const kg::GeneratedKg& gen,
                                        size_t num_queries, Rng* rng) {
  const kg::KnowledgeGraph& kg = gen.kg;
  // Askable facts: every functional ground-truth fact (present or
  // withheld — users do not know what the KG lacks).
  const auto& facts = gen.functional_facts;
  std::vector<FactQuery> log;
  if (facts.empty()) return log;

  // Popularity-proportional sampling via cumulative weights.
  std::vector<double> cumulative;
  cumulative.reserve(facts.size());
  double total = 0.0;
  for (const auto& f : facts) {
    total += kg.catalog().popularity(f.subject) + 0.01;
    cumulative.push_back(total);
  }
  for (size_t i = 0; i < num_queries; ++i) {
    const double u = rng->UniformDouble(0.0, total);
    const size_t idx = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const auto& f = facts[std::min(idx, facts.size() - 1)];
    FactQuery q;
    q.subject = f.subject;
    q.predicate = f.predicate;
    q.text = ToLower(kg.catalog().name(f.subject)) + " " +
             kg.ontology().predicate(f.predicate).surface_form;
    log.push_back(std::move(q));
  }
  return log;
}

std::vector<FactGap> FindUnansweredQueries(
    const kg::KnowledgeGraph& kg, const std::vector<FactQuery>& log) {
  // (subject, predicate) -> ask count, for unanswered queries only.
  std::map<std::pair<kg::EntityId, kg::PredicateId>, size_t> unanswered;
  for (const FactQuery& q : log) {
    if (kg.triples().BySubjectPredicate(q.subject, q.predicate).empty()) {
      ++unanswered[{q.subject, q.predicate}];
    }
  }
  std::vector<std::pair<std::pair<kg::EntityId, kg::PredicateId>, size_t>>
      ordered(unanswered.begin(), unanswered.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<FactGap> gaps;
  gaps.reserve(ordered.size());
  for (const auto& [key, count] : ordered) {
    gaps.push_back(
        FactGap{key.first, key.second, GapReason::kQueryLog,
                kg::kInvalidTripleIdx});
  }
  return gaps;
}

std::vector<FactGap> FindTrendingGaps(const kg::KnowledgeGraph& kg,
                                      const std::vector<FactQuery>& old_window,
                                      const std::vector<FactQuery>& new_window,
                                      double min_growth, size_t min_asks) {
  using Key = std::pair<kg::EntityId, kg::PredicateId>;
  std::map<Key, size_t> old_counts;
  std::map<Key, size_t> new_counts;
  for (const FactQuery& q : old_window) {
    ++old_counts[{q.subject, q.predicate}];
  }
  for (const FactQuery& q : new_window) {
    ++new_counts[{q.subject, q.predicate}];
  }
  std::vector<std::pair<double, Key>> trending;
  for (const auto& [key, count] : new_counts) {
    if (count < min_asks) continue;
    auto it = old_counts.find(key);
    const double old_count =
        it == old_counts.end() ? 0.0 : static_cast<double>(it->second);
    const double growth = static_cast<double>(count) / (old_count + 1.0);
    if (growth < min_growth) continue;
    if (!kg.triples().BySubjectPredicate(key.first, key.second).empty()) {
      continue;  // already covered
    }
    trending.emplace_back(growth, key);
  }
  std::sort(trending.begin(), trending.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<FactGap> gaps;
  gaps.reserve(trending.size());
  for (const auto& [growth, key] : trending) {
    gaps.push_back(FactGap{key.first, key.second, GapReason::kTrending,
                           kg::kInvalidTripleIdx});
  }
  return gaps;
}

}  // namespace saga::odke
