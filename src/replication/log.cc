#include "replication/log.h"

#include <algorithm>

namespace saga::replication {

ReplicatedLog::ReplicatedLog(std::string wal_path)
    : wal_path_(std::move(wal_path)) {}

Status ReplicatedLog::Open() {
  entries_.clear();
  last_seq_floor_ = 0;
  last_epoch_floor_ = 0;
  if (wal_path_.empty()) return Status::OK();
  SAGA_ASSIGN_OR_RETURN(std::vector<storage::SequencedRecord> records,
                        storage::ReadWalRecordsFrom(wal_path_, 0));
  for (storage::SequencedRecord& rec : records) {
    // Replay tolerates a torn tail (the WAL reader already stopped at
    // damage); a mid-log gap means the file was hand-damaged, and we
    // keep the intact prefix — same stop-at-damage stance as KvStore.
    if (!entries_.empty() && rec.seq != entries_.back().seq + 1) break;
    entries_.push_back(LogRecord{rec.seq, rec.epoch, std::move(rec.payload)});
  }
  wal_ = std::make_unique<storage::WalWriter>(wal_path_);
  return wal_->Open();
}

Status ReplicatedLog::Append(const LogRecord& record, bool durable) {
  if (!entries_.empty() && record.seq != entries_.back().seq + 1) {
    return Status::InvalidArgument("non-contiguous append: seq " +
                                   std::to_string(record.seq) + " after " +
                                   std::to_string(entries_.back().seq));
  }
  if (entries_.empty() && last_seq_floor_ != 0 &&
      record.seq != last_seq_floor_ + 1) {
    return Status::InvalidArgument("non-contiguous append after compaction");
  }
  if (record.epoch < last_epoch()) {
    return Status::InvalidArgument("epoch regression in log append");
  }
  if (wal_) {
    const storage::SequencedRecord rec{record.seq, record.epoch,
                                       record.payload};
    SAGA_RETURN_IF_ERROR(wal_->Append(storage::EncodeSequencedRecord(rec)));
    if (durable) SAGA_RETURN_IF_ERROR(wal_->Sync());
  }
  entries_.push_back(record);
  return Status::OK();
}

Status ReplicatedLog::TruncateFrom(uint64_t seq) {
  while (!entries_.empty() && entries_.back().seq >= seq) {
    entries_.pop_back();
  }
  return RewriteWal();
}

Status ReplicatedLog::Compact(uint64_t upto_seq) {
  while (!entries_.empty() && entries_.front().seq <= upto_seq) {
    compacted_upto_epoch_ = entries_.front().epoch;
    if (entries_.size() == 1) {
      last_seq_floor_ = entries_.back().seq;
      last_epoch_floor_ = entries_.back().epoch;
    }
    entries_.pop_front();
  }
  return RewriteWal();
}

Status ReplicatedLog::RewriteWal() {
  if (!wal_) return Status::OK();
  SAGA_RETURN_IF_ERROR(wal_->Reset());
  for (const LogRecord& e : entries_) {
    const storage::SequencedRecord rec{e.seq, e.epoch, e.payload};
    SAGA_RETURN_IF_ERROR(wal_->Append(storage::EncodeSequencedRecord(rec)));
  }
  return wal_->Sync();
}

std::vector<LogRecord> ReplicatedLog::ReadFrom(uint64_t seq,
                                               size_t max) const {
  std::vector<LogRecord> out;
  if (entries_.empty() || max == 0) return out;
  const uint64_t first = entries_.front().seq;
  if (seq < first) seq = first;  // caller checks first_seq() for gaps
  if (seq > entries_.back().seq) return out;
  size_t idx = static_cast<size_t>(seq - first);
  for (; idx < entries_.size() && out.size() < max; ++idx) {
    out.push_back(entries_[idx]);
  }
  return out;
}

const LogRecord* ReplicatedLog::At(uint64_t seq) const {
  if (entries_.empty()) return nullptr;
  const uint64_t first = entries_.front().seq;
  if (seq < first || seq > entries_.back().seq) return nullptr;
  return &entries_[static_cast<size_t>(seq - first)];
}

}  // namespace saga::replication
