#ifndef SAGA_REPLICATION_REPLICA_H_
#define SAGA_REPLICATION_REPLICA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "replication/failure_detector.h"
#include "resource/disk_space_governor.h"
#include "replication/log.h"
#include "replication/message.h"
#include "replication/sim_transport.h"

namespace saga::replication {

enum class Role : int {
  kFollower = 0,
  kCandidate = 1,
  kLeader = 2,
};

/// One node of a replica group: a sequenced log plus the leader /
/// follower state machine that ships it.
///
/// Protocol (a deliberately small Raft-shaped core — leader election
/// with the catch-up restriction, epoch fencing, quorum commit with
/// the current-epoch rule, conflict-truncation on divergence):
///
///  - The leader assigns monotonic seqs, appends locally (durably when
///    WAL-backed), and ships records to every follower; a record is
///    committed — and only then acknowledged to the client — once a
///    quorum of logs holds it and its epoch is the leader's own.
///  - Followers fence on epoch: any append or vote from a lower epoch
///    is rejected (`fenced_appends` counts them), so a partitioned
///    ex-leader's late appends can never reach a log that has moved
///    on. Seeing a higher epoch always steps a node down.
///  - Failure detection is heartbeat-based (FailureDetector: timeout
///    windows + suspicion counts). A follower whose leader detector
///    fires starts an election for epoch + 1; peers grant a vote iff
///    they have not voted in that epoch and the candidate's
///    (last_epoch, last_seq) is at least their own — the most
///    caught-up follower wins, which together with quorum overlap
///    guarantees every elected leader already holds every committed
///    record.
///  - A fresh leader appends a no-op record so the current-epoch
///    commit rule can advance past inherited entries, then resumes
///    shipping from each follower's acked position (backing up its
///    ship cursor on rejection until logs meet).
///
/// Crash model: Crash() drops the node off the network and wipes
/// volatile state (role, commit index, apply cursor). The log and the
/// epoch/vote pair survive — they model the durable state every real
/// implementation persists (the log via an actual storage WAL when
/// `wal_path` is set; Restart() then re-opens and replays it from
/// disk). Restart() rejoins as a follower; the apply callback replays
/// from scratch as the new leader re-advances the commit index.
///
/// Single-threaded by design: all entry points are called from the
/// group's pump loop on the logical clock. Nothing here sleeps.
class Replica {
 public:
  struct Options {
    int id = 0;
    int group_size = 3;
    /// Leader-side ship/heartbeat cadence.
    double heartbeat_interval_ms = 10.0;
    /// Follower-side leader detector; the effective timeout is
    /// jittered per replica (seeded) so concurrent elections rarely
    /// split votes.
    FailureDetector::Options detector;
    double election_jitter_fraction = 0.8;
    uint64_t seed = 0x5EED;
    /// Records per append message (catch-up batches).
    size_t max_batch_records = 64;
    /// Non-empty: the log is backed by a real storage WAL here.
    std::string wal_path;
    /// fsync every append before acking (WAL-backed logs only).
    bool durable_appends = true;
    /// Optional disk-space governor for this node's data directory.
    /// A degraded follower NACKs appends with NackReason::kNoSpace
    /// (keeping its proven-shared last_seq so the leader does not back
    /// up its ship cursor) instead of dying; a degraded leader refuses
    /// LeaderAppend with a storage-origin kResourceExhausted. Not
    /// owned.
    resource::DiskSpaceGovernor* governor = nullptr;
  };

  /// Applies one committed record to the replica's state machine.
  /// Never called with a no-op. Must be deterministic.
  using ApplyFn = std::function<void(int replica_id, const LogRecord&)>;

  Replica(Options options, SimTransport* transport, ApplyFn apply);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Opens (replaying when WAL-backed) the log. Must precede traffic.
  Status Open(double now_ms);

  /// Transport delivery entry point.
  void HandleMessage(const Message& m, double now_ms);

  /// Clock tick: leaders ship/heartbeat, followers run the leader
  /// detector and start elections when it fires.
  void Tick(double now_ms);

  /// Leader-only: assigns the next seq, appends locally, ships to all
  /// peers. Returns the assigned seq; FailedPrecondition when not the
  /// leader. Commitment (the client ack) is asynchronous — poll
  /// IsCommitted().
  Result<uint64_t> LeaderAppend(std::string payload, double now_ms);

  /// True when `seq` is committed *in this record's incarnation*: the
  /// entry at `seq` still carries `epoch` and the commit index covers
  /// it. A record lost to a leader change answers false forever.
  bool IsCommitted(uint64_t seq, uint64_t epoch) const;

  // --- crash / restart (chaos controls) ---
  void Crash();
  Status Restart(double now_ms);
  bool alive() const { return alive_; }

  // --- introspection ---
  Role role() const { return role_; }
  uint64_t epoch() const { return epoch_; }
  int leader_id() const { return leader_id_; }
  uint64_t commit_seq() const { return commit_seq_; }
  uint64_t last_applied() const { return last_applied_; }
  const ReplicatedLog& log() const { return log_; }
  ReplicatedLog& mutable_log() { return log_; }
  int id() const { return options_.id; }
  /// Leader's view of a peer's replicated position (0 when unknown).
  uint64_t match_seq(int peer) const;
  /// Leader's per-peer failure detector verdict (false when not
  /// leader or peer unknown).
  bool PeerSuspected(int peer) const;
  /// Follower's leader detector (for tests / the group's health view).
  const FailureDetector& leader_detector() const { return leader_detector_; }
  uint64_t fenced_appends() const { return fenced_appends_; }
  uint64_t elections_won() const { return elections_won_; }
  double effective_detector_timeout_ms() const {
    return jittered_detector_.timeout_ms;
  }

 private:
  int quorum() const { return options_.group_size / 2 + 1; }
  /// Re-arms the leader detector with a freshly drawn jittered
  /// timeout (the draw is per-arm, not per-replica — see replica.cc).
  void ArmElectionTimer(double now_ms);
  void BecomeFollower(int leader_id, uint64_t epoch, double now_ms);
  void BecomeLeader(double now_ms);
  void StartElection(double now_ms);
  /// Ships records (or an empty heartbeat) to one peer.
  void ShipTo(int peer, double now_ms);
  void ShipToAll(double now_ms);
  /// Recomputes the commit index from match positions (current-epoch
  /// rule) and applies newly committed records.
  void AdvanceCommit();
  void ApplyUpTo(uint64_t seq);
  /// Per-type dispatch, run inside the adopted trace segment when the
  /// message carries one (HandleMessage wraps this).
  void DispatchMessage(const Message& m, double now_ms);
  void HandleAppend(const Message& m, double now_ms);
  void HandleAppendAck(const Message& m, double now_ms);
  void HandleVoteRequest(const Message& m, double now_ms);
  void HandleVoteReply(const Message& m, double now_ms);

  Options options_;
  SimTransport* transport_;
  ApplyFn apply_;
  Rng rng_;
  FailureDetector::Options jittered_detector_;

  // Durable-modeled state (survives Crash; on disk when WAL-backed).
  ReplicatedLog log_;
  uint64_t epoch_ = 0;
  uint64_t voted_epoch_ = 0;

  // Volatile state.
  bool alive_ = true;
  Role role_ = Role::kFollower;
  int leader_id_ = -1;
  uint64_t commit_seq_ = 0;
  uint64_t last_applied_ = 0;
  FailureDetector leader_detector_;
  double last_broadcast_ms_ = -1e18;
  std::set<int> votes_;
  std::map<int, uint64_t> next_seq_;
  std::map<int, uint64_t> match_seq_;
  std::map<int, FailureDetector> peer_detectors_;

  // Counters.
  uint64_t fenced_appends_ = 0;
  uint64_t elections_won_ = 0;
};

}  // namespace saga::replication

#endif  // SAGA_REPLICATION_REPLICA_H_
