#ifndef SAGA_REPLICATION_REPLICA_GROUP_H_
#define SAGA_REPLICATION_REPLICA_GROUP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "replication/replica.h"
#include "replication/sim_transport.h"
#include "serving/replica_router.h"

namespace saga::replication {

/// A leader/follower replica group serving a replicated KV surface —
/// the process-local reproduction of "no single copy of the store is
/// ever load-bearing".
///
/// The group owns N Replicas, the SimTransport wiring them, a logical
/// clock, and per-replica applied KV state; it exposes:
///
///  - Put/Delete with acked-write semantics: the call appends at the
///    leader and pumps the simulation until the record is
///    quorum-committed (observed on any live replica) or the logical
///    timeout passes. An OK from Put is the invariant the chaos suite
///    hammers: "no acked write is ever lost across any single failure
///    + partition schedule".
///  - Get routed through serving::ReplicaRouter: healthy followers
///    within the bounded-staleness window serve reads round-robin;
///    lagging or suspected followers are skipped and the leader
///    serves instead; a leaderless group answers Unavailable rather
///    than risk unbounded staleness.
///  - Chaos controls (Crash/Restart/Partition/HealAll/fault profile)
///    and a Step() pump, all on the logical clock, so a whole failure
///    schedule replays from one seed.
///
/// Leader commit-safety note: the group deliberately never compacts a
/// leader log past the minimum follower match position, so a ship
/// cursor can always back up to where a lagging follower's log ends
/// (no snapshot transfer tier yet — ROADMAP item).
///
/// Observability (updated every Step):
///   replication.group.epoch / commit_seq / leader_index gauges,
///   replication.group.max_lag_records gauge,
///   replication.group.failovers counter (+ last_failover_unix_ms),
///   replication.group.acked_puts / rejected_puts counters,
///   replication.health.replica_<i> per-replica health gauges,
///   replication.lag.replica_<i> per-replica lag gauges,
///   replication.transport.* counters (from SimTransport).
class ReplicaGroup {
 public:
  struct Options {
    int num_replicas = 3;
    uint64_t seed = 0x5A6A;
    /// Non-empty: replica logs are real storage WALs under this
    /// directory (replica_<i>.wal), and Restart() recovers from disk.
    std::string dir;
    /// Simulation granularity.
    double tick_ms = 1.0;
    /// Logical time budget for one acked Put (covers one failover).
    double put_timeout_ms = 3000.0;
    /// Logical time budget for finding/electing a leader before a Put
    /// gives up.
    double election_settle_ms = 3000.0;
    /// Template for every replica (id/seed/wal_path are overwritten).
    Replica::Options replica;
    SimTransport::Options transport;
    serving::ReplicaRouter::Options router;
  };

  static Result<std::unique_ptr<ReplicaGroup>> Create(Options options);

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  /// Quorum-acked write: OK means the record is committed on a quorum
  /// of logs and will survive any single failure; Unavailable means
  /// not acknowledged (it may still commit later — the caller must
  /// treat it as unknown, exactly like a timed-out RPC).
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Routed read (see class comment). NotFound for absent keys,
  /// Unavailable when no replica may serve.
  Result<std::string> Get(std::string_view key);
  /// Direct read of one replica's applied state (tests / debugging).
  Result<std::string> GetAt(int replica_id, std::string_view key) const;

  // --- chaos controls ---
  void Crash(int replica_id);
  Status Restart(int replica_id);
  /// Cuts replica_id off from everyone (its links only).
  void PartitionNode(int replica_id);
  /// Cuts the links between every pair across the two sides.
  void PartitionSides(const std::vector<int>& a, const std::vector<int>& b);
  void HealAll();
  /// Re-rolls the probabilistic link faults (chaos rounds).
  void SetFaultProfile(double drop_p, double duplicate_p, double reorder_p,
                       double jitter_ms);

  // --- simulation pump ---
  /// Advances the logical clock by `ms`, ticking replicas and
  /// delivering due messages each tick_ms.
  void Step(double ms);
  /// Steps until pred() or the logical deadline; true when pred held.
  bool StepUntil(const std::function<bool()>& pred, double max_ms);
  double now_ms() const { return now_ms_; }

  // --- introspection ---
  /// Alive leader of the highest epoch, or -1. During a partition a
  /// fenced ex-leader may still believe it leads; it is not returned.
  int LeaderId() const;
  uint64_t epoch() const;
  /// Highest commit index over alive replicas.
  uint64_t CommitSeq() const;
  /// Committed records `replica_id` trails the group commit by.
  uint64_t LagOf(int replica_id) const;
  uint64_t failovers() const { return failovers_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  Replica& replica(int i) { return *replicas_[i]; }
  const Replica& replica(int i) const { return *replicas_[i]; }
  SimTransport& transport() { return transport_; }
  const serving::ReplicaRouter& router() const { return router_; }

  /// Router-facing snapshot of per-replica state.
  std::vector<serving::ReplicaRouter::ReplicaView> Views() const;

  /// Encoded KV ops (exposed for tests that append raw records).
  static std::string EncodePut(std::string_view key, std::string_view value);
  static std::string EncodeDelete(std::string_view key);

 private:
  explicit ReplicaGroup(Options options);

  Status AppendOp(std::string op);
  void ApplyRecord(int replica_id, const LogRecord& record);
  void TrackFailover();
  void UpdateMetrics();

  Options options_;
  double now_ms_ = 0;
  SimTransport transport_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  /// Applied (committed-only) KV state per replica.
  std::vector<std::map<std::string, std::string, std::less<>>> applied_;
  serving::ReplicaRouter router_;
  int last_leader_ = -1;
  uint64_t last_leader_epoch_ = 0;
  uint64_t failovers_ = 0;
};

}  // namespace saga::replication

#endif  // SAGA_REPLICATION_REPLICA_GROUP_H_
