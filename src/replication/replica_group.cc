#include "replication/replica_group.h"

#include <algorithm>
#include <chrono>

#include "common/file_util.h"
#include "common/metrics.h"
#include "common/serialization.h"
#include "common/trace.h"

namespace saga::replication {

namespace {

constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;

double WallUnixMs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string ReplicaGroup::EncodePut(std::string_view key,
                                    std::string_view value) {
  std::string out;
  out.push_back(static_cast<char>(kOpPut));
  BinaryWriter w(&out);
  w.PutString(key);
  w.PutString(value);
  return out;
}

std::string ReplicaGroup::EncodeDelete(std::string_view key) {
  std::string out;
  out.push_back(static_cast<char>(kOpDelete));
  BinaryWriter w(&out);
  w.PutString(key);
  return out;
}

ReplicaGroup::ReplicaGroup(Options options)
    : options_(options), transport_([&] {
        SimTransport::Options t = options.transport;
        t.seed = options.seed ^ 0x7A115EEDull;
        return t;
      }()) {
  router_ = serving::ReplicaRouter(options_.router);
}

Result<std::unique_ptr<ReplicaGroup>> ReplicaGroup::Create(Options options) {
  if (options.num_replicas < 1) {
    return Status::InvalidArgument("replica group needs >= 1 replica");
  }
  if (!options.dir.empty()) {
    SAGA_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  }
  std::unique_ptr<ReplicaGroup> group(new ReplicaGroup(options));
  group->applied_.resize(options.num_replicas);
  for (int i = 0; i < options.num_replicas; ++i) {
    Replica::Options r = options.replica;
    r.id = i;
    r.group_size = options.num_replicas;
    r.seed = options.seed;
    r.wal_path = options.dir.empty()
                     ? std::string()
                     : options.dir + "/replica_" + std::to_string(i) + ".wal";
    auto* self = group.get();
    group->replicas_.push_back(std::make_unique<Replica>(
        r, &group->transport_,
        [self](int id, const LogRecord& rec) { self->ApplyRecord(id, rec); }));
    SAGA_RETURN_IF_ERROR(group->replicas_.back()->Open(0));
  }
  for (int i = 0; i < options.num_replicas; ++i) {
    Replica* rep = group->replicas_[i].get();
    auto* self = group.get();
    group->transport_.Register(i, [self, rep](const Message& m) {
      rep->HandleMessage(m, self->now_ms_);
    });
  }
  return group;
}

void ReplicaGroup::ApplyRecord(int replica_id, const LogRecord& record) {
  // Committed-only, in seq order, deterministic: the replicated state
  // machine of this tier is a sorted KV map per replica.
  std::string_view payload(record.payload);
  if (payload.empty()) return;
  const uint8_t op = static_cast<uint8_t>(payload[0]);
  BinaryReader r(payload.substr(1));
  std::string key;
  if (!r.GetString(&key).ok()) return;
  auto& kv = applied_[replica_id];
  if (op == kOpPut) {
    std::string value;
    if (!r.GetString(&value).ok()) return;
    kv.insert_or_assign(std::move(key), std::move(value));
  } else if (op == kOpDelete) {
    kv.erase(key);
  }
}

void ReplicaGroup::Step(double ms) {
  const double deadline = now_ms_ + ms;
  while (now_ms_ < deadline) {
    now_ms_ = std::min(now_ms_ + options_.tick_ms, deadline);
    for (auto& r : replicas_) r->Tick(now_ms_);
    transport_.DeliverDue(now_ms_);
  }
  TrackFailover();
  UpdateMetrics();
}

bool ReplicaGroup::StepUntil(const std::function<bool()>& pred,
                             double max_ms) {
  const double deadline = now_ms_ + max_ms;
  while (true) {
    if (pred()) return true;
    if (now_ms_ >= deadline) return false;
    Step(options_.tick_ms);
  }
}

int ReplicaGroup::LeaderId() const {
  int best = -1;
  uint64_t best_epoch = 0;
  for (const auto& r : replicas_) {
    if (r->alive() && r->role() == Role::kLeader && r->epoch() >= best_epoch) {
      best = r->id();
      best_epoch = r->epoch();
    }
  }
  return best;
}

uint64_t ReplicaGroup::epoch() const {
  uint64_t e = 0;
  for (const auto& r : replicas_) e = std::max(e, r->epoch());
  return e;
}

uint64_t ReplicaGroup::CommitSeq() const {
  uint64_t c = 0;
  for (const auto& r : replicas_) {
    if (r->alive()) c = std::max(c, r->commit_seq());
  }
  return c;
}

uint64_t ReplicaGroup::LagOf(int replica_id) const {
  const uint64_t group_commit = CommitSeq();
  const uint64_t mine = replicas_[replica_id]->commit_seq();
  return group_commit > mine ? group_commit - mine : 0;
}

Status ReplicaGroup::AppendOp(std::string op) {
  // Root span of the quorum write: leader append, shipped appends and
  // follower acks all stitch under it (by trace id, across the
  // simulated transport).
  obs::ScopedSpan span("replication.group.write");
  // Find (or wait out the election of) a leader.
  if (!StepUntil([this] { return LeaderId() >= 0; },
                 options_.election_settle_ms)) {
    SAGA_COUNTER("replication.group.rejected_puts").Add();
    obs::MarkSpanError(StatusCode::kUnavailable);
    return Status::Unavailable("no leader elected within settle budget");
  }
  const int lid = LeaderId();
  Replica* leader = replicas_[lid].get();
  const uint64_t put_epoch = leader->epoch();
  Result<uint64_t> seq = leader->LeaderAppend(std::move(op), now_ms_);
  if (!seq.ok()) {
    SAGA_COUNTER("replication.group.rejected_puts").Add();
    obs::MarkSpanError(StatusCode::kUnavailable);
    return Status::Unavailable("leader refused append: " +
                               seq.status().ToString());
  }
  // Acked only when committed — observed on any live replica (commit
  // indexes only ever cover quorum-replicated records).
  const bool acked = StepUntil(
      [&] {
        for (const auto& r : replicas_) {
          if (r->alive() && r->IsCommitted(*seq, put_epoch)) return true;
        }
        return false;
      },
      options_.put_timeout_ms);
  if (!acked) {
    SAGA_COUNTER("replication.group.rejected_puts").Add();
    obs::MarkSpanError(StatusCode::kUnavailable);
    return Status::Unavailable(
        "write not quorum-acked within timeout (outcome unknown)");
  }
  SAGA_COUNTER("replication.group.acked_puts").Add();
  return Status::OK();
}

Status ReplicaGroup::Put(std::string_view key, std::string_view value) {
  return AppendOp(EncodePut(key, value));
}

Status ReplicaGroup::Delete(std::string_view key) {
  return AppendOp(EncodeDelete(key));
}

std::vector<serving::ReplicaRouter::ReplicaView> ReplicaGroup::Views() const {
  std::vector<serving::ReplicaRouter::ReplicaView> views;
  const int lid = LeaderId();
  const Replica* leader = lid >= 0 ? replicas_[lid].get() : nullptr;
  for (const auto& r : replicas_) {
    serving::ReplicaRouter::ReplicaView v;
    v.id = r->id();
    v.is_leader = r->id() == lid;
    if (!r->alive() || leader == nullptr) {
      v.healthy = false;
    } else if (v.is_leader) {
      v.healthy = true;
    } else {
      v.healthy = !leader->PeerSuspected(r->id());
    }
    v.lag_records = LagOf(r->id());
    views.push_back(v);
  }
  return views;
}

Result<std::string> ReplicaGroup::Get(std::string_view key) {
  const int target = router_.PickRead(Views());
  if (target < 0) {
    return Status::Unavailable("no replica may serve reads (no leader)");
  }
  return GetAt(target, key);
}

Result<std::string> ReplicaGroup::GetAt(int replica_id,
                                        std::string_view key) const {
  const auto& kv = applied_[replica_id];
  auto it = kv.find(key);
  if (it == kv.end()) {
    return Status::NotFound("no value for key on replica " +
                            std::to_string(replica_id));
  }
  return it->second;
}

void ReplicaGroup::Crash(int replica_id) { replicas_[replica_id]->Crash(); }

Status ReplicaGroup::Restart(int replica_id) {
  // Volatile applied state died with the process; it is rebuilt as the
  // recovered replica re-advances its commit index.
  applied_[replica_id].clear();
  return replicas_[replica_id]->Restart(now_ms_);
}

void ReplicaGroup::PartitionNode(int replica_id) {
  transport_.PartitionNode(replica_id, num_replicas());
}

void ReplicaGroup::PartitionSides(const std::vector<int>& a,
                                  const std::vector<int>& b) {
  for (int x : a) {
    for (int y : b) transport_.Partition(x, y);
  }
}

void ReplicaGroup::HealAll() { transport_.HealAll(); }

void ReplicaGroup::SetFaultProfile(double drop_p, double duplicate_p,
                                   double reorder_p, double jitter_ms) {
  transport_.SetFaultProfile(drop_p, duplicate_p, reorder_p, jitter_ms);
}

void ReplicaGroup::TrackFailover() {
  const int lid = LeaderId();
  if (lid < 0) return;
  const uint64_t e = replicas_[lid]->epoch();
  if (last_leader_ >= 0 &&
      (lid != last_leader_ || e != last_leader_epoch_)) {
    ++failovers_;
    SAGA_COUNTER("replication.group.failovers").Add();
    SAGA_GAUGE("replication.group.last_failover_unix_ms").Set(WallUnixMs());
  }
  last_leader_ = lid;
  last_leader_epoch_ = e;
}

void ReplicaGroup::UpdateMetrics() {
  SAGA_GAUGE("replication.group.epoch").Set(static_cast<double>(epoch()));
  SAGA_GAUGE("replication.group.commit_seq")
      .Set(static_cast<double>(CommitSeq()));
  SAGA_GAUGE("replication.group.leader_index")
      .Set(static_cast<double>(LeaderId()));
  uint64_t max_lag = 0;
  const auto views = Views();
  for (const auto& v : views) {
    max_lag = std::max(max_lag, v.lag_records);
    // Dynamic (per-replica) names can't go through the literal-only
    // SAGA_* macros; the registry call is the same thing uncached.
    const std::string idx = std::to_string(v.id);
    obs::Registry::Global()
        .gauge("replication.health.replica_" + idx)
        .Set(v.healthy ? 1.0 : 0.0);
    obs::Registry::Global()
        .gauge("replication.lag.replica_" + idx)
        .Set(static_cast<double>(v.lag_records));
  }
  SAGA_GAUGE("replication.group.max_lag_records")
      .Set(static_cast<double>(max_lag));
}

}  // namespace saga::replication
