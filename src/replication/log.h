#ifndef SAGA_REPLICATION_LOG_H_
#define SAGA_REPLICATION_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "replication/message.h"
#include "storage/wal.h"

namespace saga::replication {

/// The sequenced log one replica owns: a contiguous run of LogRecords
/// [first_seq, last_seq], held in memory for shipping and optionally
/// backed by a storage WAL (sequenced-record framing) for durability.
///
/// Invariants:
///  - seqs are contiguous: Append requires seq == last_seq + 1;
///  - entry epochs are non-decreasing in seq order;
///  - the WAL, when configured, always holds exactly the in-memory
///    suffix [first_seq, last_seq] — TruncateFrom and Compact rewrite
///    it through WalWriter::Reset(), so a restart replay reconstructs
///    the same window.
///
/// Compact(upto) drops the applied prefix but the in-memory tail keeps
/// serving ReadFrom() for follower catch-up — resetting the on-disk
/// WAL after shipping must never regress a lagging follower (pinned by
/// replication_test).
class ReplicatedLog {
 public:
  /// Empty `wal_path` = memory-only (the chaos harness's fast mode;
  /// durability is then modeled, not exercised).
  explicit ReplicatedLog(std::string wal_path = "");

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;

  /// Opens the backing WAL (if any) and replays it into memory.
  Status Open();

  /// Appends one record; `record.seq` must be last_seq + 1 (or any
  /// value for the very first record, seeding first_seq). When
  /// `durable` and WAL-backed, the record is fsynced before OK.
  Status Append(const LogRecord& record, bool durable);

  /// Drops every record with seq >= seq (divergence repair on a
  /// follower that split from a fenced leader). Rewrites the WAL.
  Status TruncateFrom(uint64_t seq);

  /// Drops every record with seq <= upto_seq (they are applied and no
  /// follower needs them). Rewrites the WAL via Reset() + re-append.
  Status Compact(uint64_t upto_seq);

  /// Records with seq >= seq, at most `max`, in order. Empty when seq
  /// is past the end; callers must detect seq < first_seq() themselves
  /// (a compacted-away request needs a snapshot, not a ship).
  std::vector<LogRecord> ReadFrom(uint64_t seq, size_t max) const;

  /// Entry at `seq`, or nullptr when outside [first_seq, last_seq].
  const LogRecord* At(uint64_t seq) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  /// 0 when empty.
  uint64_t first_seq() const {
    return entries_.empty() ? 0 : entries_.front().seq;
  }
  uint64_t last_seq() const {
    return entries_.empty() ? last_seq_floor_ : entries_.back().seq;
  }
  /// Epoch of the last entry (0 when empty) — the election
  /// restriction's first comparison key.
  uint64_t last_epoch() const {
    return entries_.empty() ? last_epoch_floor_ : entries_.back().epoch;
  }

  /// Epoch of the newest compacted-away entry (0 if never compacted):
  /// the consistency-check epoch for prev_seq == first_seq() - 1.
  uint64_t compacted_upto_epoch() const { return compacted_upto_epoch_; }

  bool wal_backed() const { return wal_ != nullptr; }
  /// Bytes the backing WAL has accepted since its last Reset (0 for
  /// memory-only logs).
  uint64_t wal_bytes_written() const {
    return wal_ ? wal_->bytes_written() : 0;
  }

 private:
  /// Rewrites the backing WAL to exactly the in-memory entries.
  Status RewriteWal();

  std::string wal_path_;
  std::unique_ptr<storage::WalWriter> wal_;
  std::deque<LogRecord> entries_;
  /// After Compact empties the log, remember where it ended so new
  /// appends keep the sequence contiguous.
  uint64_t last_seq_floor_ = 0;
  uint64_t last_epoch_floor_ = 0;
  uint64_t compacted_upto_epoch_ = 0;
};

}  // namespace saga::replication

#endif  // SAGA_REPLICATION_LOG_H_
