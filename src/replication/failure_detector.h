#ifndef SAGA_REPLICATION_FAILURE_DETECTOR_H_
#define SAGA_REPLICATION_FAILURE_DETECTOR_H_

#include <cstdint>

namespace saga::replication {

/// Heartbeat-based failure detector over the group's logical clock.
///
/// The monitored peer is expected to be heard from (heartbeat, append,
/// ack — any message counts) at least once per `timeout_ms`. Every
/// elapsed timeout window without contact adds one suspicion; at
/// `suspicion_threshold` the peer is Suspected(). A single late packet
/// is therefore never enough to declare a peer dead — with the default
/// threshold of 3 the peer must stay silent for three full windows —
/// while a real crash or partition is detected in bounded time:
/// timeout_ms * suspicion_threshold after the last contact.
///
/// Any contact resets suspicion to zero (trust recovers instantly;
/// distrust accumulates). Used twice in the tier: followers monitor
/// the leader (an expired detector starts an election) and the leader
/// monitors each follower (suspected followers are excluded from
/// serving reads until they ack again).
class FailureDetector {
 public:
  struct Options {
    double timeout_ms = 50.0;
    int suspicion_threshold = 3;
  };

  FailureDetector() : FailureDetector(Options()) {}
  explicit FailureDetector(Options options) : options_(options) {}

  /// Contact from the monitored peer: resets suspicion and restarts
  /// the current timeout window at `now_ms`.
  void RecordContact(double now_ms) {
    last_contact_ms_ = now_ms;
    window_start_ms_ = now_ms;
    suspicion_ = 0;
  }

  /// Forgets all history (fresh peer, or a role change): the first
  /// window starts at `now_ms`.
  void Reset(double now_ms) { RecordContact(now_ms); }

  /// Advances the detector to `now_ms`, accumulating one suspicion per
  /// fully elapsed silent timeout window. Returns true when the
  /// suspicion threshold is crossed *by this call* (edge trigger, so
  /// the caller starts exactly one election per detection).
  bool Tick(double now_ms) {
    const bool was_suspected = Suspected();
    while (now_ms - window_start_ms_ >= options_.timeout_ms) {
      window_start_ms_ += options_.timeout_ms;
      ++suspicion_;
    }
    return !was_suspected && Suspected();
  }

  bool Suspected() const {
    return suspicion_ >= options_.suspicion_threshold;
  }

  int suspicion() const { return suspicion_; }
  double last_contact_ms() const { return last_contact_ms_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  double last_contact_ms_ = 0;
  double window_start_ms_ = 0;
  int suspicion_ = 0;
};

}  // namespace saga::replication

#endif  // SAGA_REPLICATION_FAILURE_DETECTOR_H_
