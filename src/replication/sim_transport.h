#ifndef SAGA_REPLICATION_SIM_TRANSPORT_H_
#define SAGA_REPLICATION_SIM_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "replication/message.h"

namespace saga::replication {

/// Deterministic in-process network for a replica group.
///
/// Every Send() stamps the message with a logical delivery time and
/// queues it; DeliverDue(now) hands all due messages to the registered
/// handlers in (deliver_at, enqueue order) — so a fixed seed and a
/// fixed call sequence replay the exact same delivery schedule, fault
/// for fault. No threads, no wall clock: the replica group advances a
/// logical clock and pumps the queue, which is what makes 200-round
/// chaos schedules replayable from one printed seed (and trivially
/// TSan-clean).
///
/// Faults come from three layers, all seeded:
///  - structural partitions (Partition/PartitionNode/Heal*): messages
///    crossing a cut are dropped — checked both at send and at
///    delivery, so healing mid-flight does not resurrect frames that
///    were in a dead link;
///  - per-link probabilistic faults (Options: drop / duplicate /
///    reorder / extra-delay), drawn from the transport's own Rng;
///  - the process-wide injector: when armed, every send consults the
///    `transport.send` fault point, so chaos tests arm
///    FaultKind::kDrop / kDuplicate / kReorder / kDelay / kPartition
///    exactly like disk faults.
///
/// Handlers may Send() reentrantly (a replica acking an append);
/// those messages are queued with fresh delivery times and land on a
/// later pump, never inside the same delivery instant — replies can
/// not outrun the message they answer.
class SimTransport {
 public:
  struct Options {
    uint64_t seed = 0x5EED;
    /// Base one-way latency stamped on every message.
    double base_delay_ms = 1.0;
    /// Probabilistic per-message faults (0 disables each).
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double reorder_probability = 0.0;
    /// Uniform extra latency in [0, jitter_ms) added per message.
    double jitter_ms = 0.0;
    /// How late a reordered (or duplicated) copy lands, relative to
    /// base delay: uniform in (0, reorder_spread_ms].
    double reorder_spread_ms = 5.0;
  };

  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;      // probabilistic + injector drops
    uint64_t duplicated = 0;
    uint64_t reordered = 0;
    uint64_t partitioned = 0;  // drops caused by a structural cut
  };

  using Handler = std::function<void(const Message&)>;

  SimTransport() : SimTransport(Options()) {}
  explicit SimTransport(Options options);

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  /// Registers (or replaces) the delivery handler for `node`.
  void Register(int node, Handler handler);

  /// Queues `m` for delivery at now + latency, applying faults.
  /// `now_ms` is the sender's logical clock.
  void Send(const Message& m, double now_ms);

  /// Delivers every queued message with deliver_at <= now_ms, in
  /// deterministic order. Returns the number delivered.
  size_t DeliverDue(double now_ms);

  /// Undelivered messages still in the queue.
  size_t Pending() const { return queue_.size(); }

  // --- structural partitions ---
  /// Cuts the (bidirectional) link between a and b.
  void Partition(int a, int b);
  /// Cuts every link touching `n` (node isolated / killed NIC).
  void PartitionNode(int n, int num_nodes);
  void Heal(int a, int b);
  void HealAll();
  bool Partitioned(int a, int b) const;

  /// Replaces the probabilistic fault knobs (seed/base delay keep
  /// their constructor values). Chaos rounds re-roll these per round.
  void SetFaultProfile(double drop_p, double duplicate_p, double reorder_p,
                       double jitter_ms);

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  struct InFlight {
    double deliver_at_ms = 0;
    uint64_t tie = 0;  // enqueue order, breaks deliver_at ties
    Message msg;
  };

  static std::pair<int, int> LinkKey(int a, int b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
  void Enqueue(const Message& m, double deliver_at_ms);

  Options options_;
  Rng rng_;
  std::map<int, Handler> handlers_;
  std::vector<InFlight> queue_;
  std::set<std::pair<int, int>> cuts_;
  uint64_t next_tie_ = 0;
  Stats stats_;
};

}  // namespace saga::replication

#endif  // SAGA_REPLICATION_SIM_TRANSPORT_H_
