#include "replication/sim_transport.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/metrics.h"

namespace saga::replication {

SimTransport::SimTransport(Options options)
    : options_(options), rng_(options.seed) {}

void SimTransport::Register(int node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void SimTransport::Enqueue(const Message& m, double deliver_at_ms) {
  queue_.push_back(InFlight{deliver_at_ms, next_tie_++, m});
}

void SimTransport::Send(const Message& m, double now_ms) {
  ++stats_.sent;
  SAGA_COUNTER("replication.transport.sent").Add();
  if (Partitioned(m.from, m.to)) {
    ++stats_.partitioned;
    SAGA_COUNTER("replication.transport.partitioned").Add();
    return;
  }

  double deliver_at = now_ms + options_.base_delay_ms;
  if (options_.jitter_ms > 0) {
    deliver_at += rng_.UniformDouble(0, options_.jitter_ms);
  }
  bool duplicate = false;
  bool reorder = false;

  // Layer 1: per-link probabilistic faults from the transport's seed.
  if (options_.drop_probability > 0 &&
      rng_.Bernoulli(options_.drop_probability)) {
    ++stats_.dropped;
    SAGA_COUNTER("replication.transport.dropped").Add();
    return;
  }
  if (options_.duplicate_probability > 0 &&
      rng_.Bernoulli(options_.duplicate_probability)) {
    duplicate = true;
  }
  if (options_.reorder_probability > 0 &&
      rng_.Bernoulli(options_.reorder_probability)) {
    reorder = true;
  }

  // Layer 2: the process-wide injector (`transport.send`), same
  // arming surface as every disk fault point.
  if (Faults().armed()) {
    const TransportFault f = Faults().InjectTransport("transport.send");
    switch (f.action) {
      case TransportFaultAction::kNone:
        break;
      case TransportFaultAction::kDrop:
        ++stats_.dropped;
        SAGA_COUNTER("replication.transport.dropped").Add();
        return;
      case TransportFaultAction::kDuplicate:
        duplicate = true;
        break;
      case TransportFaultAction::kReorder:
        reorder = true;
        break;
      case TransportFaultAction::kDelay:
        deliver_at += f.delay_ms;
        break;
    }
  }

  if (reorder) {
    // Land after traffic sent later on the same link: push delivery
    // past the base delay by a seeded spread.
    deliver_at +=
        rng_.UniformDouble(0, std::max(options_.reorder_spread_ms, 0.001));
    ++stats_.reordered;
    SAGA_COUNTER("replication.transport.reordered").Add();
  }
  Enqueue(m, deliver_at);
  if (duplicate) {
    ++stats_.duplicated;
    SAGA_COUNTER("replication.transport.duplicated").Add();
    Enqueue(m, deliver_at +
                   rng_.UniformDouble(0, std::max(options_.reorder_spread_ms,
                                                  0.001)));
  }
}

size_t SimTransport::DeliverDue(double now_ms) {
  // Split due / not-due first: handlers may Send() reentrantly, and
  // those messages must wait for a later pump (a reply can never
  // outrun the message it answers).
  std::vector<InFlight> due;
  std::vector<InFlight> later;
  later.reserve(queue_.size());
  for (InFlight& f : queue_) {
    if (f.deliver_at_ms <= now_ms) {
      due.push_back(std::move(f));
    } else {
      later.push_back(std::move(f));
    }
  }
  queue_ = std::move(later);
  std::sort(due.begin(), due.end(), [](const InFlight& a, const InFlight& b) {
    return a.deliver_at_ms != b.deliver_at_ms
               ? a.deliver_at_ms < b.deliver_at_ms
               : a.tie < b.tie;
  });
  size_t delivered = 0;
  for (const InFlight& f : due) {
    // A cut made after the send still swallows in-flight frames.
    if (Partitioned(f.msg.from, f.msg.to)) {
      ++stats_.partitioned;
      SAGA_COUNTER("replication.transport.partitioned").Add();
      continue;
    }
    auto it = handlers_.find(f.msg.to);
    if (it == handlers_.end() || !it->second) continue;
    it->second(f.msg);
    ++delivered;
    ++stats_.delivered;
    SAGA_COUNTER("replication.transport.delivered").Add();
  }
  return delivered;
}

void SimTransport::Partition(int a, int b) {
  if (a == b) return;
  cuts_.insert(LinkKey(a, b));
}

void SimTransport::PartitionNode(int n, int num_nodes) {
  for (int i = 0; i < num_nodes; ++i) {
    if (i != n) cuts_.insert(LinkKey(n, i));
  }
}

void SimTransport::Heal(int a, int b) { cuts_.erase(LinkKey(a, b)); }

void SimTransport::HealAll() { cuts_.clear(); }

bool SimTransport::Partitioned(int a, int b) const {
  return cuts_.count(LinkKey(a, b)) > 0;
}

void SimTransport::SetFaultProfile(double drop_p, double duplicate_p,
                                   double reorder_p, double jitter_ms) {
  options_.drop_probability = drop_p;
  options_.duplicate_probability = duplicate_p;
  options_.reorder_probability = reorder_p;
  options_.jitter_ms = jitter_ms;
}

}  // namespace saga::replication
