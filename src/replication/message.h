#ifndef SAGA_REPLICATION_MESSAGE_H_
#define SAGA_REPLICATION_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace saga::replication {

/// One entry of a replicated log. `seq` is the leader-assigned
/// monotonic sequence number, `epoch` the leadership epoch under which
/// the entry was first appended. An empty payload is a leadership
/// no-op (appended by a freshly elected leader so the current-epoch
/// commit rule can advance past inherited entries); appliers skip it.
struct LogRecord {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  std::string payload;

  bool is_noop() const { return payload.empty(); }
};

/// Why a follower rejected an append (kAppendAck with success=false).
/// The leader's reaction differs by cause: a log mismatch means the
/// ship cursor must back up and re-ship earlier records, while a
/// follower out of disk budget has a perfectly consistent log — backing
/// up would re-send records it already has and still cannot store.
enum class NackReason : uint8_t {
  kNone = 0,
  /// (prev_seq, prev_epoch) did not match the follower's log, or the
  /// append failed structurally — back up and re-ship.
  kLogMismatch,
  /// The follower is disk-space degraded and refused to append. Its
  /// `last_seq` is still a proven shared prefix; the leader holds the
  /// cursor and retries on a later heartbeat instead of regressing.
  kNoSpace,
};

enum class MessageType : uint8_t {
  /// Leader -> follower: records from `prev_seq + 1`, or an empty
  /// heartbeat carrying only `commit_seq`. Every append doubles as a
  /// heartbeat for the follower's failure detector.
  kAppend,
  /// Follower -> leader: outcome of an append, with the follower's
  /// log end so the leader can advance or back up its ship cursor.
  kAppendAck,
  /// Candidate -> peers: request a vote for `epoch`; carries the
  /// candidate's log end for the catch-up restriction.
  kVoteRequest,
  /// Peer -> candidate: vote outcome for `epoch`.
  kVoteReply,
};

/// The one wire message of the replication protocol. A single struct
/// (rather than a variant hierarchy) keeps the simulated transport
/// trivially copyable for duplicate/reorder faults; unused fields stay
/// zero for a given `type`.
struct Message {
  MessageType type = MessageType::kAppend;
  int from = -1;
  int to = -1;
  /// Sender's epoch; every receiver first fences on this.
  uint64_t epoch = 0;

  // --- kAppend ---
  /// Log position immediately before `records[0]`; (prev_seq,
  /// prev_epoch) must match the follower's entry at prev_seq or the
  /// append is rejected (divergence / gap).
  uint64_t prev_seq = 0;
  uint64_t prev_epoch = 0;
  std::vector<LogRecord> records;
  /// Leader's commit index at send time.
  uint64_t commit_seq = 0;

  // --- kAppendAck / kVoteReply ---
  bool success = false;
  /// Acker's log end after processing (ship-cursor hint), or the
  /// voter's log end.
  uint64_t last_seq = 0;
  /// kAppendAck with success=false: why (see NackReason).
  NackReason nack_reason = NackReason::kNone;

  // --- kVoteRequest ---
  /// Candidate's log end, compared lexicographically as
  /// (last_epoch, last_seq) for the election restriction.
  uint64_t last_epoch = 0;

  // --- tracing (any type) ---
  /// Trace identity of the operation that produced this message (zero
  /// ids = untraced). The transport copies messages whole, so the
  /// context rides every drop/duplicate/reorder fault for free; the
  /// receiver adopts it and its handler spans parent under
  /// `parent_span_id`, stitching a quorum write into one trace.
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  uint64_t parent_span_id = 0;
  bool trace_sampled = true;
};

}  // namespace saga::replication

#endif  // SAGA_REPLICATION_MESSAGE_H_
