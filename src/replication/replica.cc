#include "replication/replica.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/trace.h"

namespace saga::replication {

namespace {

/// Attaches the sender's ambient trace context to an outgoing message:
/// handler spans on the receiver parent under the span that was open
/// when the message was sent.
void StampTrace(Message& m) {
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  m.trace_id_hi = ctx.trace_id_hi;
  m.trace_id_lo = ctx.trace_id_lo;
  m.parent_span_id = ctx.span_id;
  m.trace_sampled = ctx.sampled;
}

std::string_view HandlerSpanName(MessageType type) {
  switch (type) {
    case MessageType::kAppend:
      return "replication.replica.handle_append";
    case MessageType::kAppendAck:
      return "replication.replica.handle_append_ack";
    case MessageType::kVoteRequest:
      return "replication.replica.handle_vote_request";
    case MessageType::kVoteReply:
      return "replication.replica.handle_vote_reply";
  }
  return "replication.replica.handle_message";
}

}  // namespace

Replica::Replica(Options options, SimTransport* transport, ApplyFn apply)
    : options_(options),
      transport_(transport),
      apply_(std::move(apply)),
      rng_(options.seed ^ (0x9E3779B97F4A7C15ull * (options.id + 1))),
      log_(options.wal_path) {
  ArmElectionTimer(0);
}

/// (Re)arms the leader detector with a freshly drawn jittered timeout.
/// The re-roll on *every* arm (not once per replica) matters: with a
/// fixed per-replica draw, whichever node happened to hold the
/// shortest timeout fires first after every timer reset, so a lagging
/// node that can never win an election can fence the electable ones
/// forever — a deterministic livelock the chaos suite found. A fresh
/// draw each cycle guarantees the order eventually favors a node whose
/// log can actually win. Deterministic: draws come from the replica's
/// own seeded rng.
void Replica::ArmElectionTimer(double now_ms) {
  jittered_detector_ = options_.detector;
  jittered_detector_.timeout_ms *=
      1.0 + rng_.UniformDouble(0, options_.election_jitter_fraction);
  leader_detector_ = FailureDetector(jittered_detector_);
  leader_detector_.Reset(now_ms);
}

Status Replica::Open(double now_ms) {
  SAGA_RETURN_IF_ERROR(log_.Open());
  ArmElectionTimer(now_ms);
  return Status::OK();
}

void Replica::BecomeFollower(int leader_id, uint64_t epoch, double now_ms) {
  role_ = Role::kFollower;
  epoch_ = std::max(epoch_, epoch);
  leader_id_ = leader_id;
  votes_.clear();
  next_seq_.clear();
  match_seq_.clear();
  peer_detectors_.clear();
  ArmElectionTimer(now_ms);
}

void Replica::BecomeLeader(double now_ms) {
  role_ = Role::kLeader;
  leader_id_ = options_.id;
  ++elections_won_;
  SAGA_COUNTER("replication.replica.elections_won").Add();
  next_seq_.clear();
  match_seq_.clear();
  peer_detectors_.clear();
  for (int p = 0; p < options_.group_size; ++p) {
    if (p == options_.id) continue;
    next_seq_[p] = log_.last_seq() + 1;
    match_seq_[p] = 0;
    peer_detectors_.emplace(p, FailureDetector(options_.detector));
    peer_detectors_.at(p).Reset(now_ms);
  }
  // Leadership no-op: gives this epoch an entry of its own, so the
  // current-epoch commit rule can advance over inherited records.
  (void)log_.Append(LogRecord{log_.last_seq() + 1, epoch_, std::string()},
                    options_.durable_appends);
  AdvanceCommit();  // single-node groups commit instantly
  last_broadcast_ms_ = now_ms;
  ShipToAll(now_ms);
}

void Replica::StartElection(double now_ms) {
  ++epoch_;
  voted_epoch_ = epoch_;  // vote for self
  role_ = Role::kCandidate;
  leader_id_ = -1;
  votes_.clear();
  votes_.insert(options_.id);
  ArmElectionTimer(now_ms);  // fresh jitter = retry cadence for a loss
  if (static_cast<int>(votes_.size()) >= quorum()) {
    BecomeLeader(now_ms);
    return;
  }
  Message req;
  req.type = MessageType::kVoteRequest;
  req.from = options_.id;
  req.epoch = epoch_;
  req.last_seq = log_.last_seq();
  req.last_epoch = log_.last_epoch();
  StampTrace(req);
  for (int p = 0; p < options_.group_size; ++p) {
    if (p == options_.id) continue;
    req.to = p;
    transport_->Send(req, now_ms);
  }
}

void Replica::ShipTo(int peer, double now_ms) {
  Message m;
  m.type = MessageType::kAppend;
  m.from = options_.id;
  m.to = peer;
  m.epoch = epoch_;
  m.commit_seq = commit_seq_;
  const uint64_t from = next_seq_[peer];
  m.prev_seq = from - 1;
  if (m.prev_seq == 0) {
    m.prev_epoch = 0;
  } else if (const LogRecord* prev = log_.At(m.prev_seq)) {
    m.prev_epoch = prev->epoch;
  } else {
    // prev was compacted away — it was committed, so its epoch is the
    // compaction boundary's.
    m.prev_epoch = log_.compacted_upto_epoch();
  }
  m.records = log_.ReadFrom(from, options_.max_batch_records);
  StampTrace(m);
  transport_->Send(m, now_ms);
}

void Replica::ShipToAll(double now_ms) {
  for (int p = 0; p < options_.group_size; ++p) {
    if (p != options_.id) ShipTo(p, now_ms);
  }
}

void Replica::Tick(double now_ms) {
  if (!alive_) return;
  if (role_ == Role::kLeader) {
    for (auto& [peer, det] : peer_detectors_) {
      (void)peer;
      det.Tick(now_ms);  // health view only; leaders never demote peers
    }
    if (now_ms - last_broadcast_ms_ >= options_.heartbeat_interval_ms) {
      last_broadcast_ms_ = now_ms;
      ShipToAll(now_ms);
    }
    return;
  }
  // Followers and stuck candidates: a fired detector means the leader
  // (or the election) is presumed dead — run for office.
  if (leader_detector_.Tick(now_ms)) {
    StartElection(now_ms);
  }
}

Result<uint64_t> Replica::LeaderAppend(std::string payload, double now_ms) {
  obs::ScopedSpan span("replication.replica.leader_append");
  if (!alive_ || role_ != Role::kLeader) {
    obs::MarkSpanError(StatusCode::kUnavailable);
    return Status::FailedPrecondition("not the leader");
  }
  if (payload.empty()) {
    return Status::InvalidArgument("empty payloads are reserved for no-ops");
  }
  if (options_.governor != nullptr && options_.governor->degraded()) {
    // Read-only degraded: refuse before assigning a seq, with a
    // storage-origin status the retry layer will never re-attempt.
    SAGA_COUNTER("replication.replica.append_rejected_no_space").Add();
    obs::MarkSpanError(StatusCode::kResourceExhausted);
    return Status::StorageExhausted(
        "leader is disk-space degraded; appends refused");
  }
  const uint64_t seq = log_.last_seq() + 1;
  SAGA_RETURN_IF_ERROR(log_.Append(LogRecord{seq, epoch_, std::move(payload)},
                                   options_.durable_appends));
  SAGA_COUNTER("replication.replica.appends").Add();
  AdvanceCommit();  // single-node groups
  ShipToAll(now_ms);
  last_broadcast_ms_ = now_ms;
  return seq;
}

bool Replica::IsCommitted(uint64_t seq, uint64_t epoch) const {
  if (commit_seq_ < seq) return false;
  const LogRecord* rec = log_.At(seq);
  if (rec != nullptr) return rec->epoch == epoch;
  // Compacted: it was committed; the caller's epoch must match the
  // incarnation that survived, which is the one that got compacted.
  return true;
}

void Replica::AdvanceCommit() {
  if (role_ != Role::kLeader) return;
  for (uint64_t s = log_.last_seq(); s > commit_seq_; --s) {
    const LogRecord* rec = log_.At(s);
    if (rec == nullptr) break;
    if (rec->epoch != epoch_) break;  // only current-epoch entries directly
    int replicas = 1;  // self
    for (const auto& [peer, match] : match_seq_) {
      (void)peer;
      if (match >= s) ++replicas;
    }
    if (replicas >= quorum()) {
      commit_seq_ = s;
      break;  // everything below s commits transitively
    }
  }
  ApplyUpTo(commit_seq_);
}

void Replica::ApplyUpTo(uint64_t seq) {
  while (last_applied_ < seq) {
    ++last_applied_;
    const LogRecord* rec = log_.At(last_applied_);
    if (rec == nullptr || rec->is_noop()) continue;
    if (apply_) apply_(options_.id, *rec);
  }
}

void Replica::HandleMessage(const Message& m, double now_ms) {
  if (!alive_) return;
  obs::TraceContext ctx;
  ctx.trace_id_hi = m.trace_id_hi;
  ctx.trace_id_lo = m.trace_id_lo;
  ctx.span_id = m.parent_span_id;
  ctx.sampled = m.trace_sampled;
  if (obs::TracingEnabled() && ctx.valid()) {
    // Adopt the sender's context as a fresh segment: in the simulated
    // transport this handler runs on the *sender's* OS thread, and
    // without the segment boundary its spans would physically nest
    // under whatever span the sender still has open. Untraced
    // messages (heartbeats outside any request) skip this so they do
    // not each mint a trace of their own.
    obs::ScopedTraceContext scope(ctx);
    obs::ScopedSpan span(HandlerSpanName(m.type));
    DispatchMessage(m, now_ms);
    return;
  }
  DispatchMessage(m, now_ms);
}

void Replica::DispatchMessage(const Message& m, double now_ms) {
  switch (m.type) {
    case MessageType::kAppend:
      HandleAppend(m, now_ms);
      break;
    case MessageType::kAppendAck:
      HandleAppendAck(m, now_ms);
      break;
    case MessageType::kVoteRequest:
      HandleVoteRequest(m, now_ms);
      break;
    case MessageType::kVoteReply:
      HandleVoteReply(m, now_ms);
      break;
  }
}

void Replica::HandleAppend(const Message& m, double now_ms) {
  Message ack;
  ack.type = MessageType::kAppendAck;
  ack.from = options_.id;
  ack.to = m.from;

  // Fencing: a lower-epoch leader is an ex-leader. Reject and tell it
  // the epoch that fenced it, so it steps down.
  if (m.epoch < epoch_) {
    ++fenced_appends_;
    SAGA_COUNTER("replication.replica.fenced_appends").Add();
    ack.epoch = epoch_;
    ack.success = false;
    ack.last_seq = log_.last_seq();
    StampTrace(ack);
    transport_->Send(ack, now_ms);
    return;
  }
  if (m.epoch > epoch_ || role_ != Role::kFollower || leader_id_ != m.from) {
    BecomeFollower(m.from, m.epoch, now_ms);
  }
  leader_detector_.RecordContact(now_ms);
  ack.epoch = epoch_;

  // Consistency check at the splice point.
  bool consistent = true;
  if (m.prev_seq > log_.last_seq()) {
    consistent = false;  // gap: we are missing records before these
  } else if (m.prev_seq >= 1) {
    if (const LogRecord* prev = log_.At(m.prev_seq)) {
      if (prev->epoch != m.prev_epoch) {
        // Divergent history at prev itself: drop it and everything
        // after; the leader will back up and re-ship.
        (void)log_.TruncateFrom(m.prev_seq);
        consistent = false;
      }
    }
    // A compacted prev was committed — consistent by leader
    // completeness.
  }
  if (!consistent) {
    ack.success = false;
    ack.nack_reason = NackReason::kLogMismatch;
    ack.last_seq = log_.last_seq();
    StampTrace(ack);
    transport_->Send(ack, now_ms);
    return;
  }

  // `matched` is the highest seq this message *proved* we share with
  // the leader's history: the splice point plus every shipped record
  // now in our log with its shipped epoch. The ack reports that — not
  // our raw log end — because a stale follower may carry a divergent
  // uncommitted tail from a dead epoch, and a leader that counted that
  // tail toward quorum could commit (and ack to a client) a record
  // living on fewer real copies than quorum — exactly the lost-write
  // the protocol exists to prevent.
  uint64_t matched = m.prev_seq;
  bool no_space = false;
  for (const LogRecord& rec : m.records) {
    if (const LogRecord* existing = log_.At(rec.seq)) {
      if (existing->epoch == rec.epoch) {  // duplicate delivery
        matched = rec.seq;
        continue;
      }
      // Conflicting suffix from a dead epoch: truncate, then append.
      (void)log_.TruncateFrom(rec.seq);
    }
    if (rec.seq != log_.last_seq() + 1) break;  // out-of-window record
    if (options_.governor != nullptr && options_.governor->degraded()) {
      // Out of disk budget: refuse the record instead of dying on the
      // append. Everything up to `matched` is still proven-shared.
      no_space = true;
      break;
    }
    Status appended = log_.Append(rec, options_.durable_appends);
    if (!appended.ok()) {
      if (appended.IsStorageExhausted()) {
        no_space = true;
        if (options_.governor != nullptr) {
          options_.governor->NoteExhausted(appended.message());
        }
      }
      break;
    }
    matched = rec.seq;
  }

  // Commit only up to what we verifiably share with the leader; a
  // divergent tail above `matched` must never be applied.
  const uint64_t new_commit = std::min(m.commit_seq, matched);
  if (new_commit > commit_seq_) {
    commit_seq_ = new_commit;
    ApplyUpTo(commit_seq_);
  }

  if (no_space) {
    // NACK with a reason code: `last_seq = matched` is still a proven
    // shared prefix, so the leader may advance its match index — it
    // just must not back up the ship cursor and re-send records this
    // follower cannot store yet.
    SAGA_COUNTER("replication.replica.nack_no_space").Add();
    ack.success = false;
    ack.nack_reason = NackReason::kNoSpace;
    ack.last_seq = matched;
  } else {
    ack.success = true;
    ack.last_seq = matched;
  }
  StampTrace(ack);
  transport_->Send(ack, now_ms);
}

void Replica::HandleAppendAck(const Message& m, double now_ms) {
  if (m.epoch > epoch_) {
    // Fenced: someone out there is living in a later epoch.
    BecomeFollower(-1, m.epoch, now_ms);
    return;
  }
  if (role_ != Role::kLeader || m.epoch < epoch_) return;  // stale ack
  auto det = peer_detectors_.find(m.from);
  if (det != peer_detectors_.end()) det->second.RecordContact(now_ms);
  if (m.success) {
    uint64_t& match = match_seq_[m.from];
    match = std::max(match, m.last_seq);
    next_seq_[m.from] = std::max(next_seq_[m.from], match + 1);
    AdvanceCommit();
    // Pipeline catch-up: a lagging follower drains at one
    // max_batch_records batch per round trip instead of one per
    // heartbeat interval.
    if (next_seq_[m.from] <= log_.last_seq()) ShipTo(m.from, now_ms);
  } else if (m.nack_reason == NackReason::kNoSpace) {
    // The follower's log is consistent — it is out of disk budget.
    // Its last_seq is a proven shared prefix, so adopt it as match and
    // hold the ship cursor where it is: backing up (or re-shipping
    // immediately) would hammer a full follower with records it still
    // cannot store. The regular heartbeat retries once it recovers.
    SAGA_COUNTER("replication.replica.peer_no_space").Add();
    uint64_t& match = match_seq_[m.from];
    match = std::max(match, m.last_seq);
    next_seq_[m.from] = std::max(next_seq_[m.from], match + 1);
    AdvanceCommit();
  } else {
    // Back up the ship cursor toward the follower's log end (never
    // below 1); the next heartbeat re-ships from there.
    uint64_t next = next_seq_[m.from];
    next = std::min(next > 1 ? next - 1 : 1, m.last_seq + 1);
    next_seq_[m.from] = std::max<uint64_t>(next, 1);
    ShipTo(m.from, now_ms);
  }
}

void Replica::HandleVoteRequest(const Message& m, double now_ms) {
  if (m.epoch > epoch_) {
    // Adopt the higher epoch WITHOUT resetting our election timer: a
    // refused vote request must not postpone our own candidacy, or a
    // lagging node that can never win could keep every electable node
    // deferring forever. Only a granted vote (below) or real leader
    // traffic earns the timer reset.
    epoch_ = m.epoch;
    if (role_ != Role::kFollower) {
      role_ = Role::kFollower;
      leader_id_ = -1;
      votes_.clear();
      next_seq_.clear();
      match_seq_.clear();
      peer_detectors_.clear();
    }
  }
  Message reply;
  reply.type = MessageType::kVoteReply;
  reply.from = options_.id;
  reply.to = m.from;
  reply.epoch = m.epoch;
  reply.last_seq = log_.last_seq();
  // Grant iff we have not voted in this epoch and the candidate's log
  // is at least as caught up as ours — the election restriction that
  // makes "promote the most-caught-up follower" a safety property,
  // not a heuristic.
  const bool candidate_caught_up =
      std::make_pair(m.last_epoch, m.last_seq) >=
      std::make_pair(log_.last_epoch(), log_.last_seq());
  reply.success =
      m.epoch == epoch_ && voted_epoch_ < m.epoch && candidate_caught_up;
  if (reply.success) {
    voted_epoch_ = m.epoch;
    leader_detector_.RecordContact(now_ms);  // grace for the new leader
  }
  StampTrace(reply);
  transport_->Send(reply, now_ms);
}

void Replica::HandleVoteReply(const Message& m, double now_ms) {
  if (m.epoch > epoch_) {
    BecomeFollower(-1, m.epoch, now_ms);
    return;
  }
  if (role_ != Role::kCandidate || m.epoch != epoch_ || !m.success) return;
  votes_.insert(m.from);
  if (static_cast<int>(votes_.size()) >= quorum()) {
    BecomeLeader(now_ms);
  }
}

void Replica::Crash() {
  alive_ = false;
  // Volatile state dies with the process; log_, epoch_ and
  // voted_epoch_ model persisted state and survive.
  role_ = Role::kFollower;
  leader_id_ = -1;
  commit_seq_ = 0;
  last_applied_ = 0;
  votes_.clear();
  next_seq_.clear();
  match_seq_.clear();
  peer_detectors_.clear();
}

Status Replica::Restart(double now_ms) {
  if (alive_) return Status::FailedPrecondition("replica is running");
  if (log_.wal_backed()) {
    // Real restart: recover the log from disk.
    SAGA_RETURN_IF_ERROR(log_.Open());
  }
  alive_ = true;
  role_ = Role::kFollower;
  leader_id_ = -1;
  commit_seq_ = 0;
  last_applied_ = 0;
  leader_detector_.Reset(now_ms);
  return Status::OK();
}

uint64_t Replica::match_seq(int peer) const {
  auto it = match_seq_.find(peer);
  return it == match_seq_.end() ? 0 : it->second;
}

bool Replica::PeerSuspected(int peer) const {
  auto it = peer_detectors_.find(peer);
  return it != peer_detectors_.end() && it->second.Suspected();
}

}  // namespace saga::replication
