#ifndef SAGA_RESOURCE_DISK_SPACE_GOVERNOR_H_
#define SAGA_RESOURCE_DISK_SPACE_GOVERNOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/health_section.h"
#include "common/result.h"
#include "common/status.h"

namespace saga::resource {

/// Tracks a byte budget for one data directory and hands out
/// reservations to every write path (WAL append/rotation, SSTable
/// flush, compaction output, snapshot creation, embedding-shard
/// install). The paper's platform grows the graph continuously while
/// serving it, so compactions, WAL growth and snapshots are always
/// consuming disk under read traffic — the governor is what turns
/// "the disk filled up" from an undefined mid-write abort into an
/// explicit, recoverable degraded mode.
///
/// Budget model:
///  - `budget_bytes > 0`: a simulated budget (tests, chaos harness,
///    multi-tenant caps). The governor does its own accounting:
///    committed reservations consume the budget, OnBytesFreed returns
///    it.
///  - `budget_bytes == 0`: the real filesystem, via statvfs(2); free
///    space is whatever the device reports minus outstanding
///    reservations.
///
/// Emergency floor: normal (kWrite-class) reservations are refused
/// once they would dip below `emergency_floor_bytes`. Reclaim-class
/// work — compaction output, WAL rewrites — may use the floor, because
/// compaction is how space gets *reclaimed*: a governor that starves
/// compaction at 100% full can never get un-full.
///
/// Degraded-mode state machine (hysteresis both ways):
///
///     ok --(kWrite reservation denied | NoteExhausted)--> degraded
///     degraded --(free >= floor * exit_headroom_factor)--> ok
///
/// The exit check runs whenever space is returned (OnBytesFreed,
/// budget raise, RunReclaim) — never on the deny path — so the store
/// does not flap at the boundary. While degraded, owners (KvStore,
/// replication followers, the snapshot manager) fail writes fast with
/// a storage-origin kResourceExhausted and keep serving reads.
///
/// Reclaim: owners register reclaim tasks in priority order (drop
/// obsolete SSTables first, trim shipped WAL prefixes, prune stale
/// snapshots oldest-first under a retention floor last). RunReclaim()
/// walks them while degraded, stopping as soon as the exit threshold
/// is cleared — it never deletes more than recovery needs. Start()
/// runs the same loop on a background thread.
///
/// Thread-safe. Metrics: resource.governor.* gauges/counters and
/// resource.reclaim.*; BuildHealthSection() renders the same numbers
/// for `saga_cli stats --health`.
class DiskSpaceGovernor {
 public:
  struct Options {
    /// Simulated budget in bytes; 0 = ask statvfs(2) for the real
    /// free space of `data_dir`.
    uint64_t budget_bytes = 0;
    /// kWrite reservations keep at least this much headroom free.
    uint64_t emergency_floor_bytes = 4 << 20;
    /// Degraded mode exits once free space recovers above
    /// emergency_floor_bytes * this factor (hysteresis).
    double exit_headroom_factor = 2.0;
    /// Background reclaim loop cadence (Start()).
    double reclaim_interval_ms = 500;
  };

  enum class ReservationClass {
    /// Ordinary write-path space (WAL, flush, snapshot create). Must
    /// clear the emergency floor.
    kWrite,
    /// Space spent to reclaim space (compaction output, log rewrite).
    /// May use the emergency floor — refusing it would deadlock
    /// recovery.
    kReclaim,
  };

  /// RAII hold on reserved bytes. Commit(n) converts n bytes into
  /// consumed budget and releases the rest; destruction releases
  /// everything uncommitted (the write failed or wrote less than
  /// feared). Move-only; must not outlive the governor.
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& other) noexcept { *this = std::move(other); }
    Reservation& operator=(Reservation&& other) noexcept;
    ~Reservation() { Release(); }

    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;

    /// Marks `bytes_used` of the reservation as actually written
    /// (clamped to the reserved amount) and releases the remainder.
    void Commit(uint64_t bytes_used);
    /// Returns all reserved bytes without consuming budget.
    void Release();

    uint64_t bytes() const { return bytes_; }
    bool active() const { return gov_ != nullptr; }

   private:
    friend class DiskSpaceGovernor;
    Reservation(DiskSpaceGovernor* gov, uint64_t bytes)
        : gov_(gov), bytes_(bytes) {}

    DiskSpaceGovernor* gov_ = nullptr;
    uint64_t bytes_ = 0;
  };

  DiskSpaceGovernor(std::string data_dir, Options options);
  ~DiskSpaceGovernor();

  DiskSpaceGovernor(const DiskSpaceGovernor&) = delete;
  DiskSpaceGovernor& operator=(const DiskSpaceGovernor&) = delete;

  /// Reserves `bytes` ahead of a write. Denied with a storage-origin
  /// kResourceExhausted when the class's headroom would be violated; a
  /// kWrite denial trips degraded mode.
  Result<Reservation> Reserve(uint64_t bytes,
                              ReservationClass cls = ReservationClass::kWrite);

  /// Space returned to the budget (obsolete SSTable deleted, WAL
  /// truncated, snapshot pruned). Runs the degraded-exit check.
  void OnBytesFreed(uint64_t bytes);

  /// The device itself said no (real ENOSPC or an injected kNoSpace
  /// fault) even though accounting had room: trip degraded mode so
  /// writers fail fast until reclaim confirms space is back.
  void NoteExhausted(const std::string& why);

  /// Raises/lowers the simulated budget (CLI override, tests).
  /// Re-evaluates degraded mode in both directions.
  void SetBudgetBytes(uint64_t budget_bytes);

  bool degraded() const;
  /// Headroom available to new reservations right now.
  uint64_t FreeBytes() const;
  uint64_t budget_bytes() const;
  uint64_t used_bytes() const;
  uint64_t reserved_bytes() const;
  uint64_t reclaimed_bytes() const;
  uint64_t denials() const;
  uint64_t degraded_entries() const;
  const std::string& data_dir() const { return data_dir_; }

  /// Returns at least `emergency_floor_bytes * exit_headroom_factor`:
  /// the free-space level at which degraded mode exits.
  uint64_t ExitThresholdBytes() const;

  /// One reclaim lever; returns bytes freed (0 = nothing to do). The
  /// task must NOT call OnBytesFreed for the bytes it reports —
  /// RunReclaim does that accounting once per task.
  using ReclaimFn = std::function<Result<uint64_t>()>;
  /// Tasks run in registration order — register cheap/safe levers
  /// first (drop obsolete files), destructive ones last (prune
  /// snapshots).
  void RegisterReclaimTask(std::string name, ReclaimFn fn);

  /// While degraded, runs reclaim tasks in order until the exit
  /// threshold is cleared or every task came up dry; returns total
  /// bytes freed. No-op (0) when not degraded.
  uint64_t RunReclaim();

  /// Starts/stops the background reclaim thread (idempotent). The
  /// thread wakes every reclaim_interval_ms and calls RunReclaim().
  void Start();
  void Stop();

  /// Pushes the resource.governor.* gauges.
  void UpdateMetrics() const;
  obs::HealthSection BuildHealthSection() const;

 private:
  uint64_t FreeBytesLocked() const;
  void EnterDegradedLocked(const std::string& why);
  void MaybeExitDegradedLocked();
  void ReleaseBytes(uint64_t bytes);
  void CommitBytes(uint64_t reserved, uint64_t used);
  void ThreadMain();

  struct ReclaimTask {
    std::string name;
    ReclaimFn fn;
  };

  std::string data_dir_;
  Options options_;

  mutable std::mutex mu_;
  uint64_t used_ = 0;      // simulated mode only
  uint64_t reserved_ = 0;  // outstanding reservations
  uint64_t reclaimed_ = 0;
  uint64_t denials_ = 0;
  uint64_t degraded_entries_ = 0;
  bool degraded_ = false;
  std::vector<ReclaimTask> tasks_;

  std::thread thread_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace saga::resource

#endif  // SAGA_RESOURCE_DISK_SPACE_GOVERNOR_H_
