#include "resource/disk_space_governor.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/statvfs.h>
#define SAGA_HAVE_STATVFS 1
#endif

namespace saga::resource {

namespace {

/// Real-filesystem free space for `dir`, as a caller without
/// reservations would see it. On platforms without statvfs the
/// governor only works in simulated-budget mode; report "plenty" so
/// budget_bytes == 0 degenerates to an always-approve governor rather
/// than an always-deny one.
uint64_t StatvfsFreeBytes(const std::string& dir) {
#ifdef SAGA_HAVE_STATVFS
  struct statvfs vfs{};
  if (::statvfs(dir.c_str(), &vfs) != 0) return 0;
  return static_cast<uint64_t>(vfs.f_bavail) *
         static_cast<uint64_t>(vfs.f_frsize);
#else
  (void)dir;
  return ~uint64_t{0} / 2;
#endif
}

}  // namespace

DiskSpaceGovernor::Reservation& DiskSpaceGovernor::Reservation::operator=(
    Reservation&& other) noexcept {
  if (this != &other) {
    Release();
    gov_ = other.gov_;
    bytes_ = other.bytes_;
    other.gov_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void DiskSpaceGovernor::Reservation::Commit(uint64_t bytes_used) {
  if (gov_ == nullptr) return;
  gov_->CommitBytes(bytes_, std::min(bytes_used, bytes_));
  gov_ = nullptr;
  bytes_ = 0;
}

void DiskSpaceGovernor::Reservation::Release() {
  if (gov_ == nullptr) return;
  gov_->ReleaseBytes(bytes_);
  gov_ = nullptr;
  bytes_ = 0;
}

DiskSpaceGovernor::DiskSpaceGovernor(std::string data_dir, Options options)
    : data_dir_(std::move(data_dir)), options_(options) {
  UpdateMetrics();
}

DiskSpaceGovernor::~DiskSpaceGovernor() { Stop(); }

uint64_t DiskSpaceGovernor::FreeBytesLocked() const {
  uint64_t raw = options_.budget_bytes > 0 ? options_.budget_bytes
                                           : StatvfsFreeBytes(data_dir_);
  if (options_.budget_bytes > 0) {
    raw = raw > used_ ? raw - used_ : 0;
  }
  return raw > reserved_ ? raw - reserved_ : 0;
}

Result<DiskSpaceGovernor::Reservation> DiskSpaceGovernor::Reserve(
    uint64_t bytes, ReservationClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t free = FreeBytesLocked();
  const uint64_t floor =
      cls == ReservationClass::kWrite ? options_.emergency_floor_bytes : 0;
  // While degraded every kWrite reservation is refused outright, even
  // if accounting would clear the floor: exit goes through the
  // hysteresis check (reclaim / freed bytes), not through the next
  // hopeful writer.
  const bool deny = (cls == ReservationClass::kWrite && degraded_) ||
                    free < bytes || free - bytes < floor;
  if (deny) {
    ++denials_;
    SAGA_COUNTER("resource.governor.denials").Add();
    if (cls == ReservationClass::kWrite) {
      EnterDegradedLocked("reservation denied");
    }
    return Status::StorageExhausted(
        "disk budget exhausted for " + data_dir_ + ": need " +
        std::to_string(bytes) + "B + " + std::to_string(floor) +
        "B floor, free " + std::to_string(free) + "B");
  }
  reserved_ += bytes;
  SAGA_GAUGE("resource.governor.reserved_bytes")
      .Set(static_cast<double>(reserved_));
  return Reservation(this, bytes);
}

void DiskSpaceGovernor::ReleaseBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ = reserved_ > bytes ? reserved_ - bytes : 0;
  SAGA_GAUGE("resource.governor.reserved_bytes")
      .Set(static_cast<double>(reserved_));
}

void DiskSpaceGovernor::CommitBytes(uint64_t reserved, uint64_t used) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ = reserved_ > reserved ? reserved_ - reserved : 0;
  if (options_.budget_bytes > 0) used_ += used;
  SAGA_GAUGE("resource.governor.reserved_bytes")
      .Set(static_cast<double>(reserved_));
}

void DiskSpaceGovernor::OnBytesFreed(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.budget_bytes > 0) {
    used_ = used_ > bytes ? used_ - bytes : 0;
  }
  reclaimed_ += bytes;
  SAGA_COUNTER("resource.reclaim.bytes_freed")
      .Add(static_cast<int64_t>(bytes));
  MaybeExitDegradedLocked();
}

void DiskSpaceGovernor::NoteExhausted(const std::string& why) {
  std::lock_guard<std::mutex> lock(mu_);
  EnterDegradedLocked(why);
}

void DiskSpaceGovernor::SetBudgetBytes(uint64_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.budget_bytes = budget_bytes;
  SAGA_GAUGE("resource.governor.budget_bytes")
      .Set(static_cast<double>(budget_bytes));
  // A raise can recover the store; a cut can sink it below the floor.
  // Only the raise acts immediately — a cut surfaces on the next
  // reservation, same as organic fill.
  MaybeExitDegradedLocked();
}

void DiskSpaceGovernor::EnterDegradedLocked(const std::string& why) {
  (void)why;
  if (degraded_) return;
  degraded_ = true;
  ++degraded_entries_;
  SAGA_COUNTER("resource.governor.degraded_entries").Add();
  SAGA_GAUGE("resource.governor.degraded").Set(1.0);
}

void DiskSpaceGovernor::MaybeExitDegradedLocked() {
  if (!degraded_) return;
  if (FreeBytesLocked() < ExitThresholdBytes()) return;
  degraded_ = false;
  SAGA_GAUGE("resource.governor.degraded").Set(0.0);
}

bool DiskSpaceGovernor::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

uint64_t DiskSpaceGovernor::FreeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return FreeBytesLocked();
}

uint64_t DiskSpaceGovernor::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.budget_bytes;
}

uint64_t DiskSpaceGovernor::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

uint64_t DiskSpaceGovernor::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

uint64_t DiskSpaceGovernor::reclaimed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reclaimed_;
}

uint64_t DiskSpaceGovernor::denials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denials_;
}

uint64_t DiskSpaceGovernor::degraded_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_entries_;
}

uint64_t DiskSpaceGovernor::ExitThresholdBytes() const {
  const double factor = std::max(1.0, options_.exit_headroom_factor);
  return static_cast<uint64_t>(
      static_cast<double>(options_.emergency_floor_bytes) * factor);
}

void DiskSpaceGovernor::RegisterReclaimTask(std::string name, ReclaimFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.push_back(ReclaimTask{std::move(name), std::move(fn)});
}

uint64_t DiskSpaceGovernor::RunReclaim() {
  // Copy the task list so reclaim work (which calls back into
  // OnBytesFreed) runs outside the governor lock.
  std::vector<ReclaimTask> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!degraded_) return 0;
    // An injected/transient exhaustion may have left degraded set with
    // plenty of headroom — recovery check first, before deleting data.
    MaybeExitDegradedLocked();
    if (!degraded_) return 0;
    tasks = tasks_;
  }
  SAGA_COUNTER("resource.reclaim.runs").Add();
  uint64_t total = 0;
  for (const ReclaimTask& task : tasks) {
    Result<uint64_t> freed = task.fn();
    if (freed.ok() && *freed > 0) {
      total += *freed;
      OnBytesFreed(*freed);  // runs the degraded-exit check
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!degraded_) break;  // recovered — do not over-delete
  }
  UpdateMetrics();
  return total;
}

void DiskSpaceGovernor::Start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
}

void DiskSpaceGovernor::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    stop_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(run_mu_);
  running_ = false;
}

void DiskSpaceGovernor::ThreadMain() {
  std::unique_lock<std::mutex> lock(run_mu_);
  while (!stop_) {
    run_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(
                  std::max(1.0, options_.reclaim_interval_ms)),
        [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    RunReclaim();
    lock.lock();
  }
}

void DiskSpaceGovernor::UpdateMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  SAGA_GAUGE("resource.governor.budget_bytes")
      .Set(static_cast<double>(options_.budget_bytes));
  SAGA_GAUGE("resource.governor.free_bytes")
      .Set(static_cast<double>(FreeBytesLocked()));
  SAGA_GAUGE("resource.governor.reserved_bytes")
      .Set(static_cast<double>(reserved_));
  SAGA_GAUGE("resource.governor.degraded").Set(degraded_ ? 1.0 : 0.0);
}

obs::HealthSection DiskSpaceGovernor::BuildHealthSection() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::HealthSection section("resource");
  section.Row("data_dir", data_dir_)
      .Row("budget_bytes", options_.budget_bytes)
      .Row("free_bytes", FreeBytesLocked())
      .Row("used_bytes", used_)
      .Row("reserved_bytes", reserved_)
      .Row("emergency_floor_bytes", options_.emergency_floor_bytes)
      .Row("exit_threshold_bytes", ExitThresholdBytes())
      .Row("degraded", degraded_)
      .Row("degraded_entries", degraded_entries_)
      .Row("denials", denials_)
      .Row("reclaimed_bytes", reclaimed_)
      .Row("reclaim_tasks", static_cast<uint64_t>(tasks_.size()));
  if (degraded_) {
    section.Note(
        "store is read-only degraded: writes fail fast with "
        "kResourceExhausted until reclaim restores headroom");
  }
  return section;
}

}  // namespace saga::resource
