#ifndef SAGA_WEBSIM_CORPUS_GENERATOR_H_
#define SAGA_WEBSIM_CORPUS_GENERATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "kg/kg_generator.h"
#include "kg/knowledge_graph.h"
#include "websim/web_document.h"

namespace saga::websim {

/// A mutable collection of synthetic web pages.
class WebCorpus {
 public:
  DocId Add(WebDocument doc);
  const WebDocument& doc(DocId id) const { return docs_[id]; }
  WebDocument* mutable_doc(DocId id) { return &docs_[id]; }
  size_t size() const { return docs_.size(); }
  const std::vector<WebDocument>& docs() const { return docs_; }

 private:
  std::vector<WebDocument> docs_;
};

struct CorpusGeneratorConfig {
  uint64_t seed = 123;
  /// Biography-style page per person entity (popular entities get
  /// several, across domains of varying quality).
  double entity_page_rate = 1.0;
  int max_pages_per_entity = 3;
  int num_news_pages = 400;
  int num_noise_pages = 100;
  /// Probability an entity page states a wrong value for a fact. For
  /// ambiguous names the wrong value is preferentially the namesake's
  /// true value (the Fig-6 "Michelle Williams" confusion).
  double wrong_fact_rate = 0.08;
  /// Probability a page omits its infobox (text-only evidence).
  double no_infobox_rate = 0.3;
};

/// Renders a synthetic Web from the KG + ground truth: evidence for
/// every functional fact (including the ones withheld from the KG, so
/// ODKE has something to find), ambiguity, wrong facts, and gold
/// mention spans. See DESIGN.md §1 for the substitution argument.
WebCorpus GenerateCorpus(const kg::GeneratedKg& gen,
                         const CorpusGeneratorConfig& config);

/// Rewrites `fraction` of documents (appends a fresh sentence, bumps
/// version + timestamp). Returns the changed doc ids. Drives the
/// incremental-annotation experiment (§3.1 "rate of change").
std::vector<DocId> MutateCorpus(WebCorpus* corpus, double fraction,
                                Rng* rng);

/// "July 23, 1979" (long-form date used in rendered prose).
std::string RenderDateLong(kg::Date date);
/// Parses RenderDateLong output; false on mismatch.
bool ParseDateLong(std::string_view text, kg::Date* out);

}  // namespace saga::websim

#endif  // SAGA_WEBSIM_CORPUS_GENERATOR_H_
