#ifndef SAGA_WEBSIM_WEB_DOCUMENT_H_
#define SAGA_WEBSIM_WEB_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/ids.h"

namespace saga::websim {

/// Dense document id inside a WebCorpus.
using DocId = uint32_t;

/// Ground-truth entity mention rendered into a document. The annotation
/// bench scores predictions against these.
struct GoldMention {
  size_t begin = 0;
  size_t end = 0;
  kg::EntityId entity;
};

/// A synthetic web page. Carries both unstructured text and an
/// infobox-style semi-structured block (schema.org-like key/values),
/// mirroring the "variety" challenge of §3.1/§4.
struct WebDocument {
  DocId id = 0;
  std::string url;
  std::string domain;
  std::string title;
  std::string body;
  /// Source quality in [0, 1]; the ODKE corroborator uses it as an
  /// evidence feature.
  double quality = 0.5;
  /// Publication / last-update logical time; newer documents carry
  /// fresher facts.
  int64_t timestamp = 0;
  /// Semi-structured key/value facts (e.g. {"born", "1979-07-23"}).
  std::vector<std::pair<std::string, std::string>> infobox;
  /// Ground truth annotations (not visible to the annotation service).
  std::vector<GoldMention> gold_mentions;
  /// Incremented every time the page content changes.
  uint32_t version = 0;
};

}  // namespace saga::websim

#endif  // SAGA_WEBSIM_WEB_DOCUMENT_H_
