#include "websim/search_engine.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"
#include "websim/corpus_generator.h"

namespace saga::websim {

SearchEngine::SearchEngine(const WebCorpus* corpus)
    : SearchEngine(corpus, Options()) {}

SearchEngine::SearchEngine(const WebCorpus* corpus, Options options)
    : corpus_(corpus), options_(options) {
  BuildAll();
}

void SearchEngine::IndexDoc(DocId id) {
  const WebDocument& doc = corpus_->doc(id);
  std::unordered_map<std::string, double> tf;
  double length = 0.0;
  for (const text::Token& t : text::Tokenize(doc.title)) {
    tf[t.text] += options_.title_boost;
    length += options_.title_boost;
  }
  for (const text::Token& t : text::Tokenize(doc.body)) {
    tf[t.text] += 1.0;
    length += 1.0;
  }
  for (const auto& [key, value] : doc.infobox) {
    for (const text::Token& t : text::Tokenize(value)) {
      tf[t.text] += 1.0;
      length += 1.0;
    }
  }
  for (auto& [term, freq] : tf) {
    postings_[term].emplace_back(id, freq);
  }
  doc_lengths_[id] = length;
}

void SearchEngine::BuildAll() {
  postings_.clear();
  doc_lengths_.assign(corpus_->size(), 0.0);
  for (DocId id = 0; id < corpus_->size(); ++id) IndexDoc(id);
  double total = 0.0;
  for (double l : doc_lengths_) total += l;
  avg_doc_length_ =
      doc_lengths_.empty() ? 1.0 : total / static_cast<double>(
                                               doc_lengths_.size());
}

void SearchEngine::Refresh(const std::vector<DocId>& changed) {
  if (changed.empty() && corpus_->size() == doc_lengths_.size()) return;
  // Simplicity over cleverness: postings lists are rebuilt wholesale.
  // The incremental-annotation experiment measures annotation cost, not
  // index maintenance.
  BuildAll();
}

std::vector<SearchEngine::Hit> SearchEngine::Search(std::string_view query,
                                                    size_t k) const {
  const size_t n = doc_lengths_.size();
  if (n == 0) return {};
  std::unordered_map<DocId, double> scores;
  for (const text::Token& qt : text::Tokenize(query)) {
    auto it = postings_.find(qt.text);
    if (it == postings_.end()) continue;
    const double df = static_cast<double>(it->second.size());
    const double idf = std::log(
        1.0 + (static_cast<double>(n) - df + 0.5) / (df + 0.5));
    for (const auto& [doc, tf] : it->second) {
      const double denom =
          tf + options_.k1 * (1.0 - options_.b +
                              options_.b * doc_lengths_[doc] /
                                  avg_doc_length_);
      scores[doc] += idf * tf * (options_.k1 + 1.0) / denom;
    }
  }
  std::vector<Hit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) hits.push_back(Hit{doc, score});
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace saga::websim
