#ifndef SAGA_WEBSIM_SEARCH_ENGINE_H_
#define SAGA_WEBSIM_SEARCH_ENGINE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "websim/web_document.h"

namespace saga::websim {

class WebCorpus;

/// BM25 full-text search over a WebCorpus — the stand-in for the
/// production Web search engine ODKE's Query Synthesizer targets (§4).
class SearchEngine {
 public:
  struct Hit {
    DocId doc = 0;
    double score = 0.0;
  };

  struct Options {
    double k1 = 1.2;
    double b = 0.75;
    /// Title tokens are indexed with this weight multiplier.
    double title_boost = 2.0;
  };

  explicit SearchEngine(const WebCorpus* corpus);
  SearchEngine(const WebCorpus* corpus, Options options);

  /// Top-k BM25 hits for a free-text query.
  std::vector<Hit> Search(std::string_view query, size_t k) const;

  /// Re-indexes the given documents (after MutateCorpus).
  void Refresh(const std::vector<DocId>& changed);

  size_t num_documents() const { return doc_lengths_.size(); }

 private:
  void IndexDoc(DocId id);
  void BuildAll();

  const WebCorpus* corpus_;
  Options options_;
  /// term -> (doc, weighted term frequency) postings.
  std::unordered_map<std::string, std::vector<std::pair<DocId, double>>>
      postings_;
  std::vector<double> doc_lengths_;
  double avg_doc_length_ = 0.0;
};

}  // namespace saga::websim

#endif  // SAGA_WEBSIM_SEARCH_ENGINE_H_
