#include "websim/corpus_generator.h"

#include <array>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"

namespace saga::websim {

namespace {

struct DomainInfo {
  const char* name;
  double quality;
};

constexpr std::array<DomainInfo, 5> kDomains = {{
    {"wikipedia-like.example.org", 0.95},
    {"sports-almanac.example.org", 0.85},
    {"starfacts.example.com", 0.65},
    {"fanwiki.example.info", 0.5},
    {"celebgossip.example.net", 0.3},
}};

constexpr std::array<const char*, 12> kMonthNames = {
    "January",   "February", "March",    "April",
    "May",       "June",     "July",     "August",
    "September", "October",  "November", "December"};

constexpr std::array<const char*, 24> kNoiseWords = {
    "market",  "weather", "recipe",  "garden", "travel",  "finance",
    "update",  "review",  "howto",   "deal",   "coupon",  "stream",
    "forum",   "thread",  "gadget",  "mobile", "crypto",  "fitness",
    "stocks",  "lottery", "horoscope", "quiz", "rumor",   "trend"};

/// Accumulates body text while recording gold mention spans.
class DocBuilder {
 public:
  void Text(std::string_view s) { body_ += s; }

  void Mention(kg::EntityId entity, std::string_view surface) {
    GoldMention m;
    m.begin = body_.size();
    m.end = m.begin + surface.size();
    m.entity = entity;
    gold_.push_back(m);
    body_ += surface;
  }

  std::string TakeBody() { return std::move(body_); }
  std::vector<GoldMention> TakeGold() { return std::move(gold_); }

 private:
  std::string body_;
  std::vector<GoldMention> gold_;
};

uint64_t FactKey(kg::EntityId e, kg::PredicateId p) {
  return HashCombine(e.value(), p.value());
}

}  // namespace

DocId WebCorpus::Add(WebDocument doc) {
  doc.id = static_cast<DocId>(docs_.size());
  docs_.push_back(std::move(doc));
  return docs_.back().id;
}

std::string RenderDateLong(kg::Date date) {
  return std::string(kMonthNames[(date.month() - 1) % 12]) + " " +
         std::to_string(date.day()) + ", " + std::to_string(date.year());
}

bool ParseDateLong(std::string_view text, kg::Date* out) {
  // "<Month> <day>, <year>"
  const size_t space1 = text.find(' ');
  if (space1 == std::string_view::npos) return false;
  const std::string_view month_name = text.substr(0, space1);
  int month = 0;
  for (size_t i = 0; i < kMonthNames.size(); ++i) {
    if (month_name == kMonthNames[i]) {
      month = static_cast<int>(i) + 1;
      break;
    }
  }
  if (month == 0) return false;
  const size_t comma = text.find(", ", space1);
  if (comma == std::string_view::npos) return false;
  int day = 0;
  for (size_t i = space1 + 1; i < comma; ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    day = day * 10 + (text[i] - '0');
  }
  int year = 0;
  for (size_t i = comma + 2; i < text.size() && year < 100000; ++i) {
    if (text[i] < '0' || text[i] > '9') break;
    year = year * 10 + (text[i] - '0');
  }
  if (day < 1 || day > 31 || year < 1000) return false;
  *out = kg::Date::FromYmd(year, month, day);
  return true;
}

WebCorpus GenerateCorpus(const kg::GeneratedKg& gen,
                         const CorpusGeneratorConfig& config) {
  const kg::KnowledgeGraph& kg = gen.kg;
  const kg::SchemaHandles& h = gen.schema;
  const kg::EntityCatalog& cat = kg.catalog();
  Rng rng(config.seed);
  WebCorpus corpus;

  // True functional fact values (including withheld ones).
  std::unordered_map<uint64_t, kg::Value> truth;
  for (const auto& f : gen.functional_facts) {
    truth.emplace(FactKey(f.subject, f.predicate), f.object);
  }
  // Namesake map for confusable wrong evidence.
  std::unordered_map<kg::EntityId, kg::EntityId> namesake;
  for (const auto& group : gen.ambiguous_groups) {
    for (size_t i = 0; i < group.size(); ++i) {
      namesake[group[i]] = group[(i + 1) % group.size()];
    }
  }

  auto true_value = [&](kg::EntityId e,
                        kg::PredicateId p) -> const kg::Value* {
    auto it = truth.find(FactKey(e, p));
    return it == truth.end() ? nullptr : &it->second;
  };

  auto first_entity_object = [&](kg::EntityId e,
                                 kg::PredicateId p) -> kg::EntityId {
    for (const kg::Value& v : kg.ObjectsOf(e, p)) {
      if (v.is_entity()) return v.entity();
    }
    return kg::EntityId::Invalid();
  };

  // ---- Entity (biography) pages ----
  for (const auto& rec : cat.records()) {
    const bool is_person = cat.HasType(rec.id, h.person);
    if (!is_person) continue;
    if (!rng.Bernoulli(config.entity_page_rate)) continue;
    const int num_pages =
        1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(
                std::max(1.0, rec.popularity *
                                  config.max_pages_per_entity))));
    for (int page = 0; page < num_pages; ++page) {
      const DomainInfo& domain =
          page == 0 ? kDomains[rng.Uniform(2)]  // first page: high quality
                    : kDomains[rng.Uniform(kDomains.size())];
      WebDocument doc;
      doc.domain = domain.name;
      doc.quality = domain.quality;
      doc.timestamp = 100 + static_cast<int64_t>(rng.Uniform(900));
      doc.url = "https://" + doc.domain + "/wiki/" +
                kg::EntityCatalog::NormalizeSurface(rec.canonical_name) +
                "-" + std::to_string(rec.id.value()) + "-" +
                std::to_string(page);
      doc.title = rec.canonical_name + " - Profile";

      DocBuilder b;
      // Lead sentence: name + profession + birthplace (context that
      // disambiguates namesakes).
      b.Mention(rec.id, rec.canonical_name);
      const kg::EntityId occupation =
          first_entity_object(rec.id, h.occupation);
      if (occupation.valid()) {
        b.Text(" is a ");
        b.Mention(occupation, cat.name(occupation));
      }
      const kg::EntityId born_city = first_entity_object(rec.id, h.born_in);
      if (born_city.valid()) {
        b.Text(" from ");
        b.Mention(born_city, cat.name(born_city));
      }
      b.Text(". ");

      // Profession-specific relational sentences.
      const kg::EntityId team = first_entity_object(rec.id, h.plays_for);
      if (team.valid()) {
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" plays for the ");
        b.Mention(team, cat.name(team));
        b.Text(". ");
      }
      const kg::EntityId band = first_entity_object(rec.id, h.member_of);
      if (band.valid()) {
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" performs with ");
        b.Mention(band, cat.name(band));
        b.Text(". ");
      }
      const kg::EntityId university = first_entity_object(rec.id, h.works_at);
      if (university.valid()) {
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" teaches at ");
        b.Mention(university, cat.name(university));
        b.Text(". ");
      }
      int movies_mentioned = 0;
      for (const kg::Value& v : kg.ObjectsOf(rec.id, h.acted_in)) {
        if (!v.is_entity() || movies_mentioned >= 3) break;
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" starred in ");
        b.Mention(v.entity(), cat.name(v.entity()));
        b.Text(". ");
        ++movies_mentioned;
      }
      for (const kg::Value& v : kg.ObjectsOf(rec.id, h.directed)) {
        if (!v.is_entity() || movies_mentioned >= 3) break;
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" directed ");
        b.Mention(v.entity(), cat.name(v.entity()));
        b.Text(". ");
        ++movies_mentioned;
      }
      const kg::EntityId spouse = first_entity_object(rec.id, h.spouse);
      if (spouse.valid() && rng.Bernoulli(0.7)) {
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" is married to ");
        b.Mention(spouse, cat.name(spouse));
        b.Text(". ");
      }

      // Date of birth: true value, or (with wrong_fact_rate) a wrong
      // one — preferring the namesake's true DOB when one exists.
      const kg::Value* dob = true_value(rec.id, h.date_of_birth);
      if (dob != nullptr) {
        kg::Value rendered = *dob;
        if (rng.Bernoulli(config.wrong_fact_rate)) {
          auto ns = namesake.find(rec.id);
          const kg::Value* ns_dob =
              ns == namesake.end()
                  ? nullptr
                  : true_value(ns->second, h.date_of_birth);
          if (ns_dob != nullptr) {
            rendered = *ns_dob;
          } else {
            kg::Date d = dob->date_value();
            rendered = kg::Value::OfDate(
                kg::Date::FromYmd(d.year() + 1, d.month(), d.day()));
          }
        }
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" was born on " + RenderDateLong(rendered.date_value()) +
               ". ");
        if (!rng.Bernoulli(config.no_infobox_rate)) {
          doc.infobox.emplace_back("born", rendered.date_value().ToString());
        }
      }
      const kg::Value* height = true_value(rec.id, h.height_cm);
      if (height != nullptr && rng.Bernoulli(0.8)) {
        kg::Value rendered = *height;
        if (rng.Bernoulli(config.wrong_fact_rate)) {
          rendered = kg::Value::Int(height->int_value() +
                                    rng.UniformInt(2, 15));
        }
        b.Mention(rec.id, rec.canonical_name);
        b.Text(" is " + std::to_string(rendered.int_value()) +
               " cm tall. ");
        if (!rng.Bernoulli(config.no_infobox_rate)) {
          doc.infobox.emplace_back("height_cm",
                                   std::to_string(rendered.int_value()));
        }
      }
      if (!doc.infobox.empty() || !rng.Bernoulli(config.no_infobox_rate)) {
        doc.infobox.emplace_back("name", rec.canonical_name);
      }

      doc.body = b.TakeBody();
      doc.gold_mentions = b.TakeGold();
      corpus.Add(std::move(doc));
    }
  }

  // ---- News pages (co-mentions of related entities) ----
  const size_t num_entities = cat.size();
  for (int i = 0; i < config.num_news_pages && num_entities > 0; ++i) {
    // Seed on a random person and walk its neighborhood.
    kg::EntityId seed;
    for (int attempt = 0; attempt < 32; ++attempt) {
      kg::EntityId candidate(rng.Uniform(num_entities));
      if (cat.HasType(candidate, h.person)) {
        seed = candidate;
        break;
      }
    }
    if (!seed.valid()) continue;
    std::vector<kg::EntityId> others = kg.Neighbors(seed);
    DocBuilder b;
    b.Text("In recent news, ");
    b.Mention(seed, cat.name(seed));
    size_t mentioned = 0;
    for (kg::EntityId other : others) {
      if (mentioned >= 3) break;
      b.Text(mentioned == 0 ? " appeared together with " : " and ");
      b.Mention(other, cat.name(other));
      ++mentioned;
    }
    b.Text(". The event drew wide attention. ");

    WebDocument doc;
    const DomainInfo& domain = kDomains[rng.Uniform(kDomains.size())];
    doc.domain = domain.name;
    doc.quality = domain.quality;
    doc.timestamp = 100 + static_cast<int64_t>(rng.Uniform(900));
    doc.url = "https://" + doc.domain + "/news/" + std::to_string(i);
    doc.title = "News roundup " + std::to_string(i) + ": " + cat.name(seed);
    doc.body = b.TakeBody();
    doc.gold_mentions = b.TakeGold();
    corpus.Add(std::move(doc));
  }

  // ---- Noise pages (no KG entities) ----
  for (int i = 0; i < config.num_noise_pages; ++i) {
    WebDocument doc;
    const DomainInfo& domain = kDomains[rng.Uniform(kDomains.size())];
    doc.domain = domain.name;
    doc.quality = domain.quality * 0.5;
    doc.timestamp = 100 + static_cast<int64_t>(rng.Uniform(900));
    doc.url = "https://" + doc.domain + "/misc/" + std::to_string(i);
    doc.title = "Miscellaneous page " + std::to_string(i);
    std::string body;
    const int num_words = 30 + static_cast<int>(rng.Uniform(60));
    for (int w = 0; w < num_words; ++w) {
      body += kNoiseWords[rng.Uniform(kNoiseWords.size())];
      body += (w % 12 == 11) ? ". " : " ";
    }
    doc.body = std::move(body);
    corpus.Add(std::move(doc));
  }

  return corpus;
}

std::vector<DocId> MutateCorpus(WebCorpus* corpus, double fraction,
                                Rng* rng) {
  std::vector<DocId> changed;
  for (DocId id = 0; id < corpus->size(); ++id) {
    if (!rng->Bernoulli(fraction)) continue;
    WebDocument* doc = corpus->mutable_doc(id);
    doc->body += " Update " + std::to_string(doc->version + 1) +
                 ": this page was revised with additional details. ";
    ++doc->version;
    ++doc->timestamp;
    changed.push_back(id);
  }
  return changed;
}

}  // namespace saga::websim
