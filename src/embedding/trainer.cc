#include "embedding/trainer.h"

#include <cmath>

#include "common/metrics.h"
#include "common/trace.h"

namespace saga::embedding {

double Softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return 0.0;
  return std::log1p(std::exp(x));
}

double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double TrainStep(const KgeModel& model, const TrainingConfig& config,
                 EntityStore* entities, EmbeddingTable* relations,
                 const graph_engine::ViewEdge& pos,
                 const std::vector<graph_engine::ViewEdge>& negatives) {
  const int dim = config.dim;
  std::vector<float> gh(dim, 0.0f);
  std::vector<float> gr(dim, 0.0f);
  std::vector<float> gt(dim, 0.0f);

  // Positive: loss = softplus(-s) ; dloss/ds = -sigmoid(-s).
  const float* h = entities->Row(pos.src);
  const float* r = relations->Row(pos.relation);
  const float* t = entities->Row(pos.dst);
  const double s_pos = model.Score(h, r, t, dim);
  double loss = Softplus(-s_pos);
  model.AccumulateGrad(h, r, t, dim, -Sigmoid(-s_pos), gh.data(), gr.data(),
                       gt.data());
  entities->ApplyGradient(pos.src, gh.data(), config.learning_rate);
  relations->ApplyGradient(pos.relation, gr.data(), config.learning_rate);
  entities->ApplyGradient(pos.dst, gt.data(), config.learning_rate);

  // Negatives: loss = softplus(s) ; dloss/ds = sigmoid(s).
  for (const auto& neg : negatives) {
    std::fill(gh.begin(), gh.end(), 0.0f);
    std::fill(gr.begin(), gr.end(), 0.0f);
    std::fill(gt.begin(), gt.end(), 0.0f);
    const float* nh = entities->Row(neg.src);
    const float* nr = relations->Row(neg.relation);
    const float* nt = entities->Row(neg.dst);
    const double s_neg = model.Score(nh, nr, nt, dim);
    loss += Softplus(s_neg);
    model.AccumulateGrad(nh, nr, nt, dim, Sigmoid(s_neg), gh.data(),
                         gr.data(), gt.data());
    entities->ApplyGradient(neg.src, gh.data(), config.learning_rate);
    relations->ApplyGradient(neg.relation, gr.data(), config.learning_rate);
    entities->ApplyGradient(neg.dst, gt.data(), config.learning_rate);
  }

  if (model.wants_entity_renorm()) {
    entities->NormalizeRow(pos.src);
    entities->NormalizeRow(pos.dst);
  }
  return loss;
}

InMemoryTrainer::InMemoryTrainer(TrainingConfig config) : config_(config) {}

TrainedEmbeddings InMemoryTrainer::Train(
    const graph_engine::GraphView& view) const {
  return TrainEdges(view, view.edges());
}

TrainedEmbeddings InMemoryTrainer::TrainEdges(
    const graph_engine::GraphView& view,
    const std::vector<graph_engine::ViewEdge>& edges) const {
  return TrainEdgesFrom(view, edges, nullptr);
}

TrainedEmbeddings InMemoryTrainer::Retrain(
    const graph_engine::GraphView& view,
    const TrainedEmbeddings& previous) const {
  return TrainEdgesFrom(view, view.edges(), &previous);
}

TrainedEmbeddings InMemoryTrainer::TrainEdgesFrom(
    const graph_engine::GraphView& view,
    const std::vector<graph_engine::ViewEdge>& edges,
    const TrainedEmbeddings* warm_start) const {
  Rng rng(config_.seed);
  TrainedEmbeddings out;
  out.model = config_.model;
  out.dim = config_.dim;
  out.entities = EmbeddingTable(view.num_entities(), config_.dim);
  out.relations = EmbeddingTable(std::max<size_t>(1, view.num_relations()),
                                 config_.dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  out.entities.RandomInit(&rng, scale);
  out.relations.RandomInit(&rng, scale);
  if (warm_start != nullptr && warm_start->dim == config_.dim) {
    // Local ids are append-only across ApplyDelta, so row i of the
    // previous tables is still entity/relation i.
    const size_t entity_rows =
        std::min(warm_start->entities.rows(), out.entities.rows());
    for (size_t r = 0; r < entity_rows; ++r) {
      std::copy(warm_start->entities.Row(r),
                warm_start->entities.Row(r) + config_.dim,
                out.entities.Row(r));
    }
    const size_t relation_rows =
        std::min(warm_start->relations.rows(), out.relations.rows());
    for (size_t r = 0; r < relation_rows; ++r) {
      std::copy(warm_start->relations.Row(r),
                warm_start->relations.Row(r) + config_.dim,
                out.relations.Row(r));
    }
  }

  // Holdout split.
  std::vector<graph_engine::ViewEdge> train = edges;
  rng.Shuffle(&train);
  const size_t holdout =
      static_cast<size_t>(config_.holdout_fraction *
                          static_cast<double>(train.size()));
  out.holdout_edges.assign(train.end() - holdout, train.end());
  train.resize(train.size() - holdout);
  out.train_edges = train;

  const std::unique_ptr<KgeModel> model = MakeModel(config_.model);
  NegativeSampler sampler(view, config_.filtered_negatives);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("embedding.trainer.epoch");
    obs::ScopedLatency epoch_timer(SAGA_LATENCY("embedding.trainer.epoch_ns"));
    SAGA_COUNTER("embedding.trainer.epochs").Add();
    rng.Shuffle(&train);
    double epoch_loss = 0.0;
    bool corrupt_tail = true;
    std::vector<graph_engine::ViewEdge> negatives(config_.num_negatives);
    TableEntityStore store(&out.entities);
    for (const auto& pos : train) {
      for (int k = 0; k < config_.num_negatives; ++k) {
        negatives[k] = sampler.Corrupt(pos, corrupt_tail, &rng);
        corrupt_tail = !corrupt_tail;
      }
      epoch_loss +=
          TrainStep(*model, config_, &store, &out.relations, pos, negatives);
    }
    out.epoch_losses.push_back(
        train.empty() ? 0.0 : epoch_loss / static_cast<double>(train.size()));
  }
  return out;
}

}  // namespace saga::embedding
