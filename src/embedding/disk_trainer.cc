#include "embedding/disk_trainer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/file_util.h"

namespace saga::embedding {

PartitionBuffer::PartitionBuffer(
    const graph_engine::EdgePartitioner* partitioner, int dim, int capacity,
    std::string dir)
    : partitioner_(partitioner),
      dim_(dim),
      capacity_(capacity),
      dir_(std::move(dir)) {
  size_t total = 0;
  for (int p = 0; p < partitioner_->num_partitions(); ++p) {
    total += partitioner_->partition_members(p).size();
  }
  row_in_partition_.resize(total);
  for (int p = 0; p < partitioner_->num_partitions(); ++p) {
    const auto& members = partitioner_->partition_members(p);
    for (size_t i = 0; i < members.size(); ++i) {
      row_in_partition_[members[i]] = static_cast<uint32_t>(i);
    }
  }
}

std::string PartitionBuffer::PartitionPath(int p) const {
  return JoinPath(dir_, "part_" + std::to_string(p) + ".bin");
}

Status PartitionBuffer::Initialize(Rng* rng, double scale) {
  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(dir_));
  for (int p = 0; p < partitioner_->num_partitions(); ++p) {
    EmbeddingTable table(partitioner_->partition_members(p).size(), dim_);
    table.RandomInit(rng, scale);
    SAGA_RETURN_IF_ERROR(
        table.SaveRows(PartitionPath(p), 0, table.rows()));
    stats_.bytes_written += table.rows() * static_cast<size_t>(dim_) * 8;
  }
  return Status::OK();
}

Status PartitionBuffer::EnsureResident(int p) {
  if (resident_.count(p)) {
    lru_.remove(p);
    lru_.push_front(p);
    return Status::OK();
  }
  while (static_cast<int>(resident_.size()) >= capacity_) {
    const int victim = lru_.back();
    lru_.pop_back();
    SAGA_RETURN_IF_ERROR(Evict(victim));
  }
  auto table = std::make_unique<EmbeddingTable>(
      partitioner_->partition_members(p).size(), dim_);
  SAGA_RETURN_IF_ERROR(table->LoadRows(PartitionPath(p), 0, table->rows()));
  const uint64_t bytes = table->MemoryBytes();
  stats_.bytes_read += bytes;
  ++stats_.partition_loads;
  resident_bytes_ += bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, resident_bytes_);
  resident_.emplace(p, std::move(table));
  lru_.push_front(p);
  return Status::OK();
}

Status PartitionBuffer::Evict(int p) {
  auto it = resident_.find(p);
  if (it == resident_.end()) return Status::OK();
  SAGA_RETURN_IF_ERROR(
      it->second->SaveRows(PartitionPath(p), 0, it->second->rows()));
  stats_.bytes_written += it->second->MemoryBytes();
  resident_bytes_ -= it->second->MemoryBytes();
  ++stats_.partition_evictions;
  resident_.erase(it);
  return Status::OK();
}

Status PartitionBuffer::FlushAll() {
  std::vector<int> parts;
  parts.reserve(resident_.size());
  for (const auto& [p, _] : resident_) parts.push_back(p);
  for (int p : parts) {
    auto it = resident_.find(p);
    SAGA_RETURN_IF_ERROR(
        it->second->SaveRows(PartitionPath(p), 0, it->second->rows()));
    stats_.bytes_written += it->second->MemoryBytes();
  }
  return Status::OK();
}

Result<EmbeddingTable> PartitionBuffer::AssembleFullTable() {
  SAGA_RETURN_IF_ERROR(FlushAll());
  EmbeddingTable full(row_in_partition_.size(), dim_);
  for (int p = 0; p < partitioner_->num_partitions(); ++p) {
    const auto& members = partitioner_->partition_members(p);
    EmbeddingTable part(members.size(), dim_);
    SAGA_RETURN_IF_ERROR(part.LoadRows(PartitionPath(p), 0, part.rows()));
    for (size_t i = 0; i < members.size(); ++i) {
      std::copy(part.Row(i), part.Row(i) + dim_, full.Row(members[i]));
    }
  }
  return full;
}

std::pair<EmbeddingTable*, size_t> PartitionBuffer::Locate(
    uint32_t id) const {
  const int p = partitioner_->partition_of(id);
  auto it = resident_.find(p);
  assert(it != resident_.end() && "entity's partition not resident");
  return {it->second.get(), row_in_partition_[id]};
}

const float* PartitionBuffer::Row(uint32_t id) const {
  auto [table, row] = Locate(id);
  return table->Row(row);
}

void PartitionBuffer::ApplyGradient(uint32_t id, const float* grad,
                                    double lr) {
  auto [table, row] = Locate(id);
  table->ApplyGradient(row, grad, lr);
}

void PartitionBuffer::NormalizeRow(uint32_t id) {
  auto [table, row] = Locate(id);
  table->NormalizeRow(row);
}

DiskTrainer::DiskTrainer(TrainingConfig config, DiskTrainerOptions options)
    : config_(config), options_(std::move(options)) {}

Result<TrainedEmbeddings> DiskTrainer::Train(
    const graph_engine::GraphView& view) {
  if (options_.buffer_partitions < 2) {
    return Status::InvalidArgument("buffer_partitions must be >= 2");
  }
  if (options_.work_dir.empty()) {
    return Status::InvalidArgument("work_dir required");
  }
  Rng rng(config_.seed);
  graph_engine::EdgePartitioner partitioner(view, options_.num_partitions,
                                            &rng);

  // Holdout split before bucketing.
  std::vector<graph_engine::ViewEdge> all_edges = view.edges();
  rng.Shuffle(&all_edges);
  const size_t holdout = static_cast<size_t>(
      config_.holdout_fraction * static_cast<double>(all_edges.size()));
  std::vector<graph_engine::ViewEdge> holdout_edges(all_edges.end() - holdout,
                                                    all_edges.end());
  all_edges.resize(all_edges.size() - holdout);

  const std::string bucket_dir = JoinPath(options_.work_dir, "buckets");
  SAGA_RETURN_IF_ERROR(partitioner.WriteBuckets(all_edges, bucket_dir));

  PartitionBuffer buffer(&partitioner, config_.dim,
                         options_.buffer_partitions,
                         JoinPath(options_.work_dir, "params"));
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  SAGA_RETURN_IF_ERROR(buffer.Initialize(&rng, scale));

  EmbeddingTable relations(std::max<size_t>(1, view.num_relations()),
                           config_.dim);
  relations.RandomInit(&rng, scale);

  const std::unique_ptr<KgeModel> model = MakeModel(config_.model);
  NegativeSampler sampler(view, config_.filtered_negatives);
  const auto schedule =
      graph_engine::EdgePartitioner::BucketSchedule(options_.num_partitions);

  TrainedEmbeddings out;
  out.model = config_.model;
  out.dim = config_.dim;
  out.train_edges = all_edges;
  out.holdout_edges = std::move(holdout_edges);

  std::vector<graph_engine::ViewEdge> negatives(config_.num_negatives);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    double epoch_loss = 0.0;
    size_t steps = 0;
    for (const auto& [pi, pj] : schedule) {
      SAGA_ASSIGN_OR_RETURN(
          std::vector<graph_engine::ViewEdge> bucket,
          graph_engine::EdgePartitioner::LoadBucket(bucket_dir, pi, pj));
      if (bucket.empty()) continue;
      SAGA_RETURN_IF_ERROR(buffer.EnsureResident(pi));
      SAGA_RETURN_IF_ERROR(buffer.EnsureResident(pj));
      rng.Shuffle(&bucket);
      const auto& pool_head = partitioner.partition_members(pi);
      const auto& pool_tail = partitioner.partition_members(pj);
      bool corrupt_tail = true;
      for (const auto& pos : bucket) {
        for (int k = 0; k < config_.num_negatives; ++k) {
          negatives[k] = sampler.CorruptFromPool(
              pos, corrupt_tail, corrupt_tail ? pool_tail : pool_head, &rng);
          corrupt_tail = !corrupt_tail;
        }
        epoch_loss += TrainStep(*model, config_, &buffer, &relations, pos,
                                negatives);
        ++steps;
      }
    }
    out.epoch_losses.push_back(
        steps == 0 ? 0.0 : epoch_loss / static_cast<double>(steps));
  }

  SAGA_ASSIGN_OR_RETURN(out.entities, buffer.AssembleFullTable());
  out.relations = std::move(relations);
  stats_ = buffer.stats();
  return out;
}

}  // namespace saga::embedding
