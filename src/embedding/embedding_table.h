#ifndef SAGA_EMBEDDING_EMBEDDING_TABLE_H_
#define SAGA_EMBEDDING_EMBEDDING_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace saga::embedding {

/// Dense row-major embedding matrix with per-parameter Adagrad state.
/// Rows are local ids from a GraphView (entities) or relation ids.
class EmbeddingTable {
 public:
  EmbeddingTable() = default;
  EmbeddingTable(size_t rows, int dim);

  EmbeddingTable(const EmbeddingTable&) = default;
  EmbeddingTable& operator=(const EmbeddingTable&) = default;
  EmbeddingTable(EmbeddingTable&&) = default;
  EmbeddingTable& operator=(EmbeddingTable&&) = default;

  /// Uniform init in [-scale, scale] (Xavier-ish when scale ~
  /// 1/sqrt(dim)).
  void RandomInit(Rng* rng, double scale);

  size_t rows() const { return rows_; }
  int dim() const { return dim_; }

  float* Row(size_t r) { return data_.data() + r * dim_; }
  const float* Row(size_t r) const { return data_.data() + r * dim_; }

  /// Adagrad update: accum += g^2; x -= lr * g / sqrt(accum + eps).
  void ApplyGradient(size_t row, const float* grad, double lr);

  /// L2-normalizes one row in place (TransE entity renorm).
  void NormalizeRow(size_t row);

  /// Copies a row out as a vector.
  std::vector<float> RowVec(size_t r) const;

  /// Resident parameter + optimizer-state bytes.
  size_t MemoryBytes() const { return (data_.size() + accum_.size()) * 4; }

  /// Raw (de)serialization of rows [begin, end) including Adagrad state.
  /// The disk trainer uses this to page partitions.
  Status SaveRows(const std::string& path, size_t begin, size_t end) const;
  Status LoadRows(const std::string& path, size_t begin, size_t end);

  Status Save(const std::string& path) const;
  static Result<EmbeddingTable> Load(const std::string& path);

 private:
  size_t rows_ = 0;
  int dim_ = 0;
  std::vector<float> data_;
  std::vector<float> accum_;  // Adagrad accumulators
};

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_EMBEDDING_TABLE_H_
