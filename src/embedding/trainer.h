#ifndef SAGA_EMBEDDING_TRAINER_H_
#define SAGA_EMBEDDING_TRAINER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "embedding/embedding_table.h"
#include "embedding/model.h"
#include "embedding/negative_sampler.h"
#include "graph_engine/view.h"

namespace saga::embedding {

struct TrainingConfig {
  ModelKind model = ModelKind::kDistMult;
  int dim = 32;
  int epochs = 10;
  /// Adagrad base step; 0.3 with ~10 negatives is a robust setting for
  /// the synthetic workloads (swept in bench_fig3).
  double learning_rate = 0.3;
  int num_negatives = 10;
  bool filtered_negatives = true;
  uint64_t seed = 7;
  /// Fraction of edges held out for evaluation (never trained on).
  double holdout_fraction = 0.0;
};

/// Result of a training run: embedding tables in the view's local id
/// space, plus the held-out edges for evaluation.
struct TrainedEmbeddings {
  ModelKind model = ModelKind::kDistMult;
  int dim = 0;
  EmbeddingTable entities;
  EmbeddingTable relations;
  std::vector<graph_engine::ViewEdge> train_edges;
  std::vector<graph_engine::ViewEdge> holdout_edges;
  std::vector<double> epoch_losses;

  double Score(uint32_t src, uint32_t relation, uint32_t dst) const {
    return MakeModel(model)->Score(entities.Row(src), relations.Row(relation),
                                   entities.Row(dst), dim);
  }
};

/// Single-node in-memory trainer: logistic loss with uniform negative
/// sampling, Adagrad updates. This is the "sufficient main memory"
/// configuration that the disk-based trainer is benchmarked against.
class InMemoryTrainer {
 public:
  explicit InMemoryTrainer(TrainingConfig config);

  /// Trains over all edges of the view.
  TrainedEmbeddings Train(const graph_engine::GraphView& view) const;

  /// Trains on an explicit edge list in the view's id space (used for
  /// related-entity embeddings over random-walk co-occurrence pairs).
  TrainedEmbeddings TrainEdges(
      const graph_engine::GraphView& view,
      const std::vector<graph_engine::ViewEdge>& edges) const;

  /// Warm-start retraining for the continuously growing KG: rows for
  /// entities/relations already present in `previous` are initialized
  /// from it (new local ids get fresh random rows), then training
  /// proceeds as usual. Refreshing embeddings after a view delta this
  /// way converges much faster than training from scratch.
  TrainedEmbeddings Retrain(const graph_engine::GraphView& view,
                            const TrainedEmbeddings& previous) const;

 private:
  TrainedEmbeddings TrainEdgesFrom(
      const graph_engine::GraphView& view,
      const std::vector<graph_engine::ViewEdge>& edges,
      const TrainedEmbeddings* warm_start) const;

  TrainingConfig config_;
};

/// Numerically stable log(1 + exp(x)).
double Softplus(double x);
/// d/dx softplus(x) = sigmoid(x).
double Sigmoid(double x);

/// Storage abstraction for entity rows so the same SGD kernel runs over
/// a fully resident table (in-memory trainer) or a partition buffer
/// (disk trainer).
class EntityStore {
 public:
  virtual ~EntityStore() = default;
  virtual const float* Row(uint32_t id) const = 0;
  virtual void ApplyGradient(uint32_t id, const float* grad, double lr) = 0;
  virtual void NormalizeRow(uint32_t id) = 0;
};

/// EntityStore over one EmbeddingTable.
class TableEntityStore : public EntityStore {
 public:
  explicit TableEntityStore(EmbeddingTable* table) : table_(table) {}
  const float* Row(uint32_t id) const override { return table_->Row(id); }
  void ApplyGradient(uint32_t id, const float* grad, double lr) override {
    table_->ApplyGradient(id, grad, lr);
  }
  void NormalizeRow(uint32_t id) override { table_->NormalizeRow(id); }

 private:
  EmbeddingTable* table_;
};

/// One SGD step on a positive edge + its sampled negatives; returns the
/// step loss. Shared by the in-memory and disk trainers so both train
/// identically modulo negative pools.
double TrainStep(const KgeModel& model, const TrainingConfig& config,
                 EntityStore* entities, EmbeddingTable* relations,
                 const graph_engine::ViewEdge& pos,
                 const std::vector<graph_engine::ViewEdge>& negatives);

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_TRAINER_H_
