#ifndef SAGA_EMBEDDING_DISK_TRAINER_H_
#define SAGA_EMBEDDING_DISK_TRAINER_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "embedding/trainer.h"
#include "graph_engine/partitioner.h"
#include "graph_engine/view.h"

namespace saga::embedding {

/// Disk-based training configuration (§2: "for general KG embeddings we
/// use disk-based training"). Entity embeddings are sharded into
/// `num_partitions` files; at most `buffer_partitions` are resident.
struct DiskTrainerOptions {
  int num_partitions = 8;
  int buffer_partitions = 2;  // must be >= 2 (a bucket touches two)
  std::string work_dir;       // required
};

struct DiskTrainerStats {
  uint64_t partition_loads = 0;
  uint64_t partition_evictions = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Max bytes of entity embedding + optimizer state resident at once.
  uint64_t peak_resident_bytes = 0;
};

/// LRU buffer of entity-embedding partitions backed by files. Exposes
/// EntityStore over the resident set; touching a non-resident entity is
/// a programming error (the bucket schedule guarantees residency).
class PartitionBuffer : public EntityStore {
 public:
  PartitionBuffer(const graph_engine::EdgePartitioner* partitioner,
                  int dim, int capacity, std::string dir);

  /// Creates the on-disk partition files with random initialization.
  Status Initialize(Rng* rng, double scale);

  /// Ensures partition p is resident, evicting LRU partitions (written
  /// back) as needed.
  Status EnsureResident(int p);

  /// Writes every resident partition back to disk.
  Status FlushAll();

  /// Loads all partitions into one full table (for serving/eval).
  Result<EmbeddingTable> AssembleFullTable();

  // EntityStore:
  const float* Row(uint32_t id) const override;
  void ApplyGradient(uint32_t id, const float* grad, double lr) override;
  void NormalizeRow(uint32_t id) override;

  const DiskTrainerStats& stats() const { return stats_; }

 private:
  std::string PartitionPath(int p) const;
  Status Evict(int p);
  /// (resident table, row within partition) for a local entity id.
  std::pair<EmbeddingTable*, size_t> Locate(uint32_t id) const;

  const graph_engine::EdgePartitioner* partitioner_;
  int dim_;
  int capacity_;
  std::string dir_;
  /// entity local id -> row index inside its partition.
  std::vector<uint32_t> row_in_partition_;
  std::unordered_map<int, std::unique_ptr<EmbeddingTable>> resident_;
  std::list<int> lru_;  // front = most recent
  DiskTrainerStats stats_;
  uint64_t resident_bytes_ = 0;
};

/// Marius-style out-of-core trainer: iterates partition buckets in a
/// swap-minimizing order, drawing negatives from resident partitions.
class DiskTrainer {
 public:
  DiskTrainer(TrainingConfig config, DiskTrainerOptions options);

  Result<TrainedEmbeddings> Train(const graph_engine::GraphView& view);

  const DiskTrainerStats& stats() const { return stats_; }

 private:
  TrainingConfig config_;
  DiskTrainerOptions options_;
  DiskTrainerStats stats_;
};

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_DISK_TRAINER_H_
