#ifndef SAGA_EMBEDDING_MODEL_H_
#define SAGA_EMBEDDING_MODEL_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace saga::embedding {

/// Shallow KG embedding model families (§2 "shallow embedding models").
enum class ModelKind {
  kTransE,    // translational distance, L2: s = -||h + r - t||
  kDistMult,  // bilinear diagonal:      s = <h, r, t>
  kComplEx,   // complex bilinear:       s = Re(<h, r, conj(t)>)
};

std::string_view ModelKindName(ModelKind kind);
Result<ModelKind> ParseModelKind(std::string_view name);

/// Scoring function + gradient of the score w.r.t. each embedding.
/// Implementations are stateless; vectors are length `dim`.
class KgeModel {
 public:
  virtual ~KgeModel() = default;

  virtual ModelKind kind() const = 0;

  /// Plausibility score of (h, r, t); larger = more plausible.
  virtual double Score(const float* h, const float* r, const float* t,
                       int dim) const = 0;

  /// Accumulates d(score)/d{h,r,t} scaled by `dscore` into the grad
  /// buffers (which the caller zero-initializes or accumulates across
  /// negatives).
  virtual void AccumulateGrad(const float* h, const float* r, const float* t,
                              int dim, double dscore, float* gh, float* gr,
                              float* gt) const = 0;

  /// TransE benefits from renormalizing entity rows after updates.
  virtual bool wants_entity_renorm() const { return false; }
};

std::unique_ptr<KgeModel> MakeModel(ModelKind kind);

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_MODEL_H_
