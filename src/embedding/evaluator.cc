#include "embedding/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "embedding/negative_sampler.h"

namespace saga::embedding {

RankingMetrics EvaluateRanking(const TrainedEmbeddings& emb,
                               const graph_engine::GraphView& view,
                               const std::vector<graph_engine::ViewEdge>& test,
                               size_t max_candidates, Rng* rng) {
  RankingMetrics m;
  if (test.empty() || view.num_entities() == 0) return m;
  const std::unique_ptr<KgeModel> model = MakeModel(emb.model);
  NegativeSampler truth(view, /*filtered=*/true);

  double mrr_sum = 0.0;
  size_t h1 = 0;
  size_t h3 = 0;
  size_t h10 = 0;
  for (const auto& e : test) {
    const double true_score = model->Score(
        emb.entities.Row(e.src), emb.relations.Row(e.relation),
        emb.entities.Row(e.dst), emb.dim);
    size_t rank = 1;
    const size_t n = view.num_entities();
    const size_t candidates = std::min(max_candidates, n);
    for (size_t k = 0; k < candidates; ++k) {
      const uint32_t cand = candidates == n
                                ? static_cast<uint32_t>(k)
                                : static_cast<uint32_t>(rng->Uniform(n));
      if (cand == e.dst) continue;
      // Filtered protocol: skip other true tails.
      if (truth.IsTrueEdge(e.src, e.relation, cand)) continue;
      const double s = model->Score(emb.entities.Row(e.src),
                                    emb.relations.Row(e.relation),
                                    emb.entities.Row(cand), emb.dim);
      if (s > true_score) ++rank;
    }
    mrr_sum += 1.0 / static_cast<double>(rank);
    if (rank <= 1) ++h1;
    if (rank <= 3) ++h3;
    if (rank <= 10) ++h10;
  }
  m.num_queries = test.size();
  const double n = static_cast<double>(test.size());
  m.mrr = mrr_sum / n;
  m.hits_at_1 = static_cast<double>(h1) / n;
  m.hits_at_3 = static_cast<double>(h3) / n;
  m.hits_at_10 = static_cast<double>(h10) / n;
  return m;
}

double EvaluateVerificationAuc(
    const TrainedEmbeddings& emb, const graph_engine::GraphView& view,
    const std::vector<graph_engine::ViewEdge>& test, Rng* rng) {
  if (test.empty()) return 0.5;
  const std::unique_ptr<KgeModel> model = MakeModel(emb.model);
  NegativeSampler sampler(view, /*filtered=*/true);
  std::vector<std::pair<double, bool>> scored;
  scored.reserve(test.size() * 2);
  bool corrupt_tail = true;
  for (const auto& e : test) {
    scored.emplace_back(
        model->Score(emb.entities.Row(e.src), emb.relations.Row(e.relation),
                     emb.entities.Row(e.dst), emb.dim),
        true);
    const auto neg = sampler.Corrupt(e, corrupt_tail, rng);
    corrupt_tail = !corrupt_tail;
    scored.emplace_back(
        model->Score(emb.entities.Row(neg.src),
                     emb.relations.Row(neg.relation),
                     emb.entities.Row(neg.dst), emb.dim),
        false);
  }
  return Auc(scored);
}

double Auc(const std::vector<std::pair<double, bool>>& scored) {
  // Rank-sum (Mann-Whitney U) formulation with tie handling.
  std::vector<std::pair<double, bool>> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double rank_sum_pos = 0.0;
  size_t num_pos = 0;
  size_t num_neg = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j].first == sorted[i].first) ++j;
    const double avg_rank = (static_cast<double>(i) + 1.0 +
                             static_cast<double>(j)) /
                            2.0;
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].second) {
        rank_sum_pos += avg_rank;
        ++num_pos;
      } else {
        ++num_neg;
      }
    }
    i = j;
  }
  if (num_pos == 0 || num_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace saga::embedding
