#include "embedding/model.h"

#include <cmath>

#include "common/status.h"

namespace saga::embedding {

std::string_view ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTransE:
      return "TransE";
    case ModelKind::kDistMult:
      return "DistMult";
    case ModelKind::kComplEx:
      return "ComplEx";
  }
  return "?";
}

Result<ModelKind> ParseModelKind(std::string_view name) {
  if (name == "TransE" || name == "transe") return ModelKind::kTransE;
  if (name == "DistMult" || name == "distmult") return ModelKind::kDistMult;
  if (name == "ComplEx" || name == "complex") return ModelKind::kComplEx;
  return Status::InvalidArgument("unknown model: " + std::string(name));
}

namespace {

class TransEModel : public KgeModel {
 public:
  ModelKind kind() const override { return ModelKind::kTransE; }
  bool wants_entity_renorm() const override { return true; }

  double Score(const float* h, const float* r, const float* t,
               int dim) const override {
    double d2 = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double d = static_cast<double>(h[i]) + r[i] - t[i];
      d2 += d * d;
    }
    return -std::sqrt(d2 + 1e-12);
  }

  void AccumulateGrad(const float* h, const float* r, const float* t, int dim,
                      double dscore, float* gh, float* gr,
                      float* gt) const override {
    // score = -||h + r - t||_2 ; d score / d h_i = -(h+r-t)_i / ||.||
    double d2 = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double d = static_cast<double>(h[i]) + r[i] - t[i];
      d2 += d * d;
    }
    const double inv_norm = 1.0 / std::sqrt(d2 + 1e-12);
    for (int i = 0; i < dim; ++i) {
      const double d = static_cast<double>(h[i]) + r[i] - t[i];
      const double g = dscore * (-d * inv_norm);
      gh[i] += static_cast<float>(g);
      gr[i] += static_cast<float>(g);
      gt[i] -= static_cast<float>(g);
    }
  }
};

class DistMultModel : public KgeModel {
 public:
  ModelKind kind() const override { return ModelKind::kDistMult; }

  double Score(const float* h, const float* r, const float* t,
               int dim) const override {
    double s = 0.0;
    for (int i = 0; i < dim; ++i) {
      s += static_cast<double>(h[i]) * r[i] * t[i];
    }
    return s;
  }

  void AccumulateGrad(const float* h, const float* r, const float* t, int dim,
                      double dscore, float* gh, float* gr,
                      float* gt) const override {
    for (int i = 0; i < dim; ++i) {
      gh[i] += static_cast<float>(dscore * r[i] * t[i]);
      gr[i] += static_cast<float>(dscore * h[i] * t[i]);
      gt[i] += static_cast<float>(dscore * h[i] * r[i]);
    }
  }
};

/// Dim is split: first half = real parts, second half = imaginary.
class ComplExModel : public KgeModel {
 public:
  ModelKind kind() const override { return ModelKind::kComplEx; }

  double Score(const float* h, const float* r, const float* t,
               int dim) const override {
    const int half = dim / 2;
    const float* hr = h;
    const float* hi = h + half;
    const float* rr = r;
    const float* ri = r + half;
    const float* tr = t;
    const float* ti = t + half;
    double s = 0.0;
    for (int i = 0; i < half; ++i) {
      // Re(<h, r, conj(t)>)
      s += static_cast<double>(hr[i]) * rr[i] * tr[i] +
           static_cast<double>(hi[i]) * rr[i] * ti[i] +
           static_cast<double>(hr[i]) * ri[i] * ti[i] -
           static_cast<double>(hi[i]) * ri[i] * tr[i];
    }
    return s;
  }

  void AccumulateGrad(const float* h, const float* r, const float* t, int dim,
                      double dscore, float* gh, float* gr,
                      float* gt) const override {
    const int half = dim / 2;
    const float* hr = h;
    const float* hi = h + half;
    const float* rr = r;
    const float* ri = r + half;
    const float* tr = t;
    const float* ti = t + half;
    for (int i = 0; i < half; ++i) {
      gh[i] += static_cast<float>(dscore * (rr[i] * tr[i] + ri[i] * ti[i]));
      gh[i + half] +=
          static_cast<float>(dscore * (rr[i] * ti[i] - ri[i] * tr[i]));
      gr[i] += static_cast<float>(dscore * (hr[i] * tr[i] + hi[i] * ti[i]));
      gr[i + half] +=
          static_cast<float>(dscore * (hr[i] * ti[i] - hi[i] * tr[i]));
      gt[i] += static_cast<float>(dscore * (hr[i] * rr[i] - hi[i] * ri[i]));
      gt[i + half] +=
          static_cast<float>(dscore * (hi[i] * rr[i] + hr[i] * ri[i]));
    }
  }
};

}  // namespace

std::unique_ptr<KgeModel> MakeModel(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTransE:
      return std::make_unique<TransEModel>();
    case ModelKind::kDistMult:
      return std::make_unique<DistMultModel>();
    case ModelKind::kComplEx:
      return std::make_unique<ComplExModel>();
  }
  return nullptr;
}

}  // namespace saga::embedding
