#ifndef SAGA_EMBEDDING_EVALUATOR_H_
#define SAGA_EMBEDDING_EVALUATOR_H_

#include <vector>

#include "common/rng.h"
#include "embedding/trainer.h"
#include "graph_engine/view.h"

namespace saga::embedding {

/// Link-prediction ranking quality (standard KGE protocol).
struct RankingMetrics {
  double mrr = 0.0;
  double hits_at_1 = 0.0;
  double hits_at_3 = 0.0;
  double hits_at_10 = 0.0;
  size_t num_queries = 0;
};

/// Filtered tail-ranking evaluation: for each test edge (h, r, t), rank
/// t among all entities by score, filtering other true tails. Caps
/// candidate count at `max_candidates` by sampling (plus the true tail)
/// for tractability; with max_candidates >= num_entities it is exact.
RankingMetrics EvaluateRanking(const TrainedEmbeddings& emb,
                               const graph_engine::GraphView& view,
                               const std::vector<graph_engine::ViewEdge>& test,
                               size_t max_candidates, Rng* rng);

/// Fact-verification quality: AUC of score separating true test edges
/// from uniformly corrupted ones (one corruption per positive).
double EvaluateVerificationAuc(
    const TrainedEmbeddings& emb, const graph_engine::GraphView& view,
    const std::vector<graph_engine::ViewEdge>& test, Rng* rng);

/// Area under the ROC curve for (score, label) pairs.
double Auc(const std::vector<std::pair<double, bool>>& scored);

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_EVALUATOR_H_
