#ifndef SAGA_EMBEDDING_REASONING_H_
#define SAGA_EMBEDDING_REASONING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "embedding/embedding_table.h"
#include "graph_engine/view.h"

namespace saga::embedding {

/// A multi-hop path query in a view's local id space: start at `anchor`
/// and follow `relations` in order ("the cities of the teams of X's
/// spouse"). The reasoning-based counterpart of single-edge queries
/// (§2: "reasoning-based embedding models are used for more complex
/// tasks that involve multi-hop reasoning").
struct PathQuery {
  uint32_t anchor = 0;
  std::vector<uint32_t> relations;
};

struct PathQuerySample {
  PathQuery query;
  uint32_t answer = 0;
};

/// Samples path queries by walking the view's directed edges: each
/// sample's answer is genuinely reachable via its relation sequence.
/// Hop counts are uniform in [1, max_hops].
std::vector<PathQuerySample> SamplePathQueries(
    const graph_engine::GraphView& view, size_t num_samples, int max_hops,
    Rng* rng);

/// All true answers of a path query (the FollowPath ground truth in
/// local id space); used for filtered evaluation.
std::vector<uint32_t> TrueAnswers(const graph_engine::GraphView& view,
                                  const PathQuery& query);

struct BoxTrainingConfig {
  int dim = 32;
  int epochs = 10;
  double learning_rate = 0.3;
  int num_negatives = 10;
  /// Weight of the inside-the-box distance term (alpha in Query2Box):
  /// pulls answers toward box centers without collapsing the box.
  double inside_weight = 0.2;
  uint64_t seed = 7;
};

/// Query2Box-style reasoning embeddings: entities are points; each
/// relation translates the query box's center and grows its offsets;
/// plausible answers fall inside the final box. Score =
/// -(dist_outside + inside_weight * dist_inside), L1 geometry.
class BoxReasoningModel {
 public:
  BoxReasoningModel(size_t num_entities, size_t num_relations,
                    BoxTrainingConfig config);

  /// Trains with uniform negative answers + logistic loss (Adagrad).
  /// Returns mean loss per epoch.
  std::vector<double> Train(const std::vector<PathQuerySample>& samples);

  double Score(const PathQuery& query, uint32_t answer) const;

  /// Top-k candidate answers by score over all entities.
  std::vector<std::pair<uint32_t, double>> AnswerQuery(
      const PathQuery& query, size_t k) const;

  /// Filtered Hits@k over test samples: rank the true answer among all
  /// entities, filtering other true answers via `view`.
  double EvaluateHitsAtK(const std::vector<PathQuerySample>& test,
                         const graph_engine::GraphView& view,
                         size_t k) const;

 private:
  /// Materializes the query box (center, offset >= 0), both length dim.
  void ComputeBox(const PathQuery& query, std::vector<float>* center,
                  std::vector<float>* offset) const;

  double ScoreBox(const float* center, const float* offset,
                  const float* answer) const;

  /// One SGD step on (query, answer, label); returns the loss.
  double Step(const PathQuery& query, uint32_t answer, bool positive);

  BoxTrainingConfig config_;
  size_t num_entities_;
  EmbeddingTable entity_points_;
  EmbeddingTable relation_centers_;
  /// Pre-activation box growth per relation; softplus() keeps the
  /// realized offsets positive.
  EmbeddingTable relation_offsets_;
  Rng rng_;
};

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_REASONING_H_
