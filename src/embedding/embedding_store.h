#ifndef SAGA_EMBEDDING_EMBEDDING_STORE_H_
#define SAGA_EMBEDDING_EMBEDDING_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "embedding/trainer.h"
#include "graph_engine/view.h"
#include "kg/ids.h"

namespace saga::embedding {

/// Global-id keyed embedding lookup: the output artifact of the
/// training pipeline that the serving layer indexes and caches.
class EmbeddingStore {
 public:
  EmbeddingStore() = default;

  /// Re-keys trained local-id embeddings by global entity id.
  static EmbeddingStore FromTrained(const TrainedEmbeddings& trained,
                                    const graph_engine::GraphView& view);

  void Put(kg::EntityId id, std::vector<float> vec);

  /// nullptr when the entity has no embedding (e.g. filtered out of the
  /// training view).
  const std::vector<float>* Get(kg::EntityId id) const;

  size_t size() const { return vectors_.size(); }
  int dim() const { return dim_; }

  /// Entity ids with embeddings, in id order (stable iteration for
  /// index building).
  std::vector<kg::EntityId> Ids() const;

  /// Writes the v2 checksummed format (magic + payload + trailing CRC)
  /// atomically and durably.
  Status Save(const std::string& path) const;
  /// Loads v2 (CRC-verified; kDataLoss on mismatch) or legacy v1
  /// (unchecksummed) files. Fault point: `embedding.load` (kCorrupt
  /// flips a bit in the file image before verification).
  static Result<EmbeddingStore> Load(const std::string& path);
  /// Integrity check without keeping the data: CRC verification for v2
  /// files, full structural parse for legacy v1. Scrubber entry point.
  static Status Verify(const std::string& path);

 private:
  int dim_ = 0;
  std::unordered_map<kg::EntityId, std::vector<float>> vectors_;
};

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_EMBEDDING_STORE_H_
