#include "embedding/embedding_store.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/serialization.h"
#include "storage/wal.h"  // Crc32

namespace saga::embedding {

namespace {
/// v2 files open with this magic and close with a fixed32 CRC over the
/// payload between them. v1 files start directly with the dim varint
/// (dims are small, so a real v1 file can never begin with these four
/// bytes) and carry no checksum.
constexpr uint32_t kEmbMagicV2 = 0x32424D45u;  // "EMB2"

struct RawFile {
  std::string buf;
  /// Payload view [begin, end) inside buf; CRC-verified for v2.
  size_t begin = 0;
  size_t end = 0;
};

/// Reads `path`, applies the `embedding.load` read fault, and for v2
/// files verifies the trailing CRC (kDataLoss on mismatch).
Result<RawFile> ReadAndVerify(const std::string& path) {
  RawFile raw;
  SAGA_ASSIGN_OR_RETURN(raw.buf, ReadFileToString(path));
  if (Faults().armed() && !raw.buf.empty()) {
    SAGA_RETURN_IF_ERROR(
        Faults().InjectRead("embedding.load", raw.buf.data(), raw.buf.size()));
  }
  raw.begin = 0;
  raw.end = raw.buf.size();
  if (raw.buf.size() >= 8) {
    uint32_t magic = 0;
    BinaryReader m(raw.buf);
    SAGA_RETURN_IF_ERROR(m.GetFixed32(&magic));
    if (magic == kEmbMagicV2) {
      uint32_t stored = 0;
      BinaryReader c(std::string_view(raw.buf).substr(raw.buf.size() - 4));
      SAGA_RETURN_IF_ERROR(c.GetFixed32(&stored));
      raw.begin = 4;
      raw.end = raw.buf.size() - 4;
      const std::string_view payload(raw.buf.data() + raw.begin,
                                     raw.end - raw.begin);
      if (storage::Crc32(payload) != stored) {
        SAGA_COUNTER("integrity.corruption.detected").Add();
        return Status::DataLoss("embedding file crc mismatch: " + path);
      }
    }
  }
  return raw;
}

}  // namespace

EmbeddingStore EmbeddingStore::FromTrained(
    const TrainedEmbeddings& trained, const graph_engine::GraphView& view) {
  EmbeddingStore store;
  store.dim_ = trained.dim;
  for (uint32_t local = 0; local < view.num_entities(); ++local) {
    store.vectors_.emplace(view.global_entity(local),
                           trained.entities.RowVec(local));
  }
  return store;
}

void EmbeddingStore::Put(kg::EntityId id, std::vector<float> vec) {
  if (dim_ == 0) dim_ = static_cast<int>(vec.size());
  vectors_[id] = std::move(vec);
}

const std::vector<float>* EmbeddingStore::Get(kg::EntityId id) const {
  auto it = vectors_.find(id);
  return it == vectors_.end() ? nullptr : &it->second;
}

std::vector<kg::EntityId> EmbeddingStore::Ids() const {
  std::vector<kg::EntityId> ids;
  ids.reserve(vectors_.size());
  for (const auto& [id, _] : vectors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status EmbeddingStore::Save(const std::string& path) const {
  std::string buf;
  BinaryWriter w(&buf);
  w.PutFixed32(kEmbMagicV2);
  w.PutVarint64(static_cast<uint64_t>(dim_));
  w.PutVarint64(vectors_.size());
  for (kg::EntityId id : Ids()) {
    w.PutVarint64(id.value());
    w.PutFloatVector(vectors_.at(id));
  }
  w.PutFixed32(storage::Crc32(std::string_view(buf).substr(4)));
  // Durable: embedding shards are serving artifacts referenced by
  // snapshots and version swaps, so a post-crash disappearing act
  // would invalidate both.
  return WriteStringToFile(path, buf, /*durable=*/true);
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  SAGA_ASSIGN_OR_RETURN(RawFile raw, ReadAndVerify(path));
  BinaryReader r(
      std::string_view(raw.buf.data() + raw.begin, raw.end - raw.begin));
  EmbeddingStore store;
  uint64_t dim = 0;
  uint64_t n = 0;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&dim));
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  store.dim_ = static_cast<int>(dim);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    std::vector<float> vec;
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&id));
    SAGA_RETURN_IF_ERROR(r.GetFloatVector(&vec));
    store.vectors_.emplace(kg::EntityId(id), std::move(vec));
  }
  return store;
}

Status EmbeddingStore::Verify(const std::string& path) {
  SAGA_ASSIGN_OR_RETURN(RawFile raw, ReadAndVerify(path));
  if (raw.begin != 0) return Status::OK();  // v2: CRC already checked
  // Legacy v1 file: no checksum on disk, so the best available check
  // is a full structural parse.
  return EmbeddingStore::Load(path).status();
}

}  // namespace saga::embedding
