#include "embedding/embedding_store.h"

#include <algorithm>

#include "common/file_util.h"
#include "common/serialization.h"

namespace saga::embedding {

EmbeddingStore EmbeddingStore::FromTrained(
    const TrainedEmbeddings& trained, const graph_engine::GraphView& view) {
  EmbeddingStore store;
  store.dim_ = trained.dim;
  for (uint32_t local = 0; local < view.num_entities(); ++local) {
    store.vectors_.emplace(view.global_entity(local),
                           trained.entities.RowVec(local));
  }
  return store;
}

void EmbeddingStore::Put(kg::EntityId id, std::vector<float> vec) {
  if (dim_ == 0) dim_ = static_cast<int>(vec.size());
  vectors_[id] = std::move(vec);
}

const std::vector<float>* EmbeddingStore::Get(kg::EntityId id) const {
  auto it = vectors_.find(id);
  return it == vectors_.end() ? nullptr : &it->second;
}

std::vector<kg::EntityId> EmbeddingStore::Ids() const {
  std::vector<kg::EntityId> ids;
  ids.reserve(vectors_.size());
  for (const auto& [id, _] : vectors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status EmbeddingStore::Save(const std::string& path) const {
  std::string buf;
  BinaryWriter w(&buf);
  w.PutVarint64(static_cast<uint64_t>(dim_));
  w.PutVarint64(vectors_.size());
  for (kg::EntityId id : Ids()) {
    w.PutVarint64(id.value());
    w.PutFloatVector(vectors_.at(id));
  }
  return WriteStringToFile(path, buf);
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  SAGA_ASSIGN_OR_RETURN(std::string buf, ReadFileToString(path));
  BinaryReader r(buf);
  EmbeddingStore store;
  uint64_t dim = 0;
  uint64_t n = 0;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&dim));
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  store.dim_ = static_cast<int>(dim);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    std::vector<float> vec;
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&id));
    SAGA_RETURN_IF_ERROR(r.GetFloatVector(&vec));
    store.vectors_.emplace(kg::EntityId(id), std::move(vec));
  }
  return store;
}

}  // namespace saga::embedding
