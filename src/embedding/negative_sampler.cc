#include "embedding/negative_sampler.h"

namespace saga::embedding {

NegativeSampler::NegativeSampler(const graph_engine::GraphView& view,
                                 bool filtered)
    : num_entities_(view.num_entities()), filtered_(filtered) {
  if (filtered_) {
    true_edges_.reserve(view.edges().size() * 2);
    for (const auto& e : view.edges()) {
      true_edges_.insert(Key(e.src, e.relation, e.dst));
    }
  }
}

graph_engine::ViewEdge NegativeSampler::Corrupt(
    const graph_engine::ViewEdge& edge, bool corrupt_tail, Rng* rng) const {
  graph_engine::ViewEdge neg = edge;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint32_t candidate =
        static_cast<uint32_t>(rng->Uniform(num_entities_));
    if (corrupt_tail) {
      neg.dst = candidate;
    } else {
      neg.src = candidate;
    }
    if (!filtered_ || !IsTrueEdge(neg.src, neg.relation, neg.dst)) break;
  }
  return neg;
}

graph_engine::ViewEdge NegativeSampler::CorruptFromPool(
    const graph_engine::ViewEdge& edge, bool corrupt_tail,
    const std::vector<uint32_t>& pool, Rng* rng) const {
  graph_engine::ViewEdge neg = edge;
  if (pool.empty()) return neg;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint32_t candidate = pool[rng->Uniform(pool.size())];
    if (corrupt_tail) {
      neg.dst = candidate;
    } else {
      neg.src = candidate;
    }
    if (!filtered_ || !IsTrueEdge(neg.src, neg.relation, neg.dst)) break;
  }
  return neg;
}

}  // namespace saga::embedding
