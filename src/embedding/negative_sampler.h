#ifndef SAGA_EMBEDDING_NEGATIVE_SAMPLER_H_
#define SAGA_EMBEDDING_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "graph_engine/view.h"

namespace saga::embedding {

/// Uniform corruption sampler for contrastive training: replaces the
/// head or tail of a positive edge with a random entity. With
/// `filtered`, corruptions that happen to be true edges are rejected
/// (resampled) so the model is not penalized for scoring real facts
/// high.
class NegativeSampler {
 public:
  NegativeSampler(const graph_engine::GraphView& view, bool filtered);

  /// Produces a corrupted copy of `edge`. `corrupt_tail` alternates at
  /// the call site.
  graph_engine::ViewEdge Corrupt(const graph_engine::ViewEdge& edge,
                                 bool corrupt_tail, Rng* rng) const;

  /// Corruption restricted to a candidate pool (the disk trainer can
  /// only draw negatives from resident partitions).
  graph_engine::ViewEdge CorruptFromPool(
      const graph_engine::ViewEdge& edge, bool corrupt_tail,
      const std::vector<uint32_t>& pool, Rng* rng) const;

  bool IsTrueEdge(uint32_t src, uint32_t relation, uint32_t dst) const {
    return true_edges_.count(Key(src, relation, dst)) > 0;
  }

 private:
  static uint64_t Key(uint32_t s, uint32_t r, uint32_t t) {
    return HashCombine(HashCombine(s, r), t);
  }

  size_t num_entities_;
  bool filtered_;
  std::unordered_set<uint64_t> true_edges_;
};

}  // namespace saga::embedding

#endif  // SAGA_EMBEDDING_NEGATIVE_SAMPLER_H_
