#include "embedding/reasoning.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "embedding/trainer.h"  // Softplus / Sigmoid

namespace saga::embedding {

namespace {

/// relation -> (src -> dst list) directed adjacency of a view.
std::map<uint32_t, std::map<uint32_t, std::vector<uint32_t>>>
RelationAdjacency(const graph_engine::GraphView& view) {
  std::map<uint32_t, std::map<uint32_t, std::vector<uint32_t>>> adj;
  for (const auto& e : view.edges()) {
    adj[e.relation][e.src].push_back(e.dst);
  }
  return adj;
}

}  // namespace

std::vector<PathQuerySample> SamplePathQueries(
    const graph_engine::GraphView& view, size_t num_samples, int max_hops,
    Rng* rng) {
  const auto adj = RelationAdjacency(view);
  std::vector<PathQuerySample> samples;
  if (view.edges().empty()) return samples;
  size_t attempts = 0;
  while (samples.size() < num_samples && attempts < num_samples * 50) {
    ++attempts;
    // Seed at a random edge so hop 1 always succeeds.
    const auto& seed = view.edges()[rng->Uniform(view.edges().size())];
    PathQuerySample sample;
    sample.query.anchor = seed.src;
    sample.query.relations.push_back(seed.relation);
    uint32_t current = seed.dst;
    const int hops = 1 + static_cast<int>(rng->Uniform(
                             static_cast<uint64_t>(max_hops)));
    bool dead_end = false;
    for (int h = 1; h < hops; ++h) {
      // Pick a random outgoing relation from `current`.
      std::vector<std::pair<uint32_t, uint32_t>> options;  // (rel, dst)
      for (const auto& [rel, by_src] : adj) {
        auto it = by_src.find(current);
        if (it == by_src.end()) continue;
        options.emplace_back(rel,
                             it->second[rng->Uniform(it->second.size())]);
      }
      if (options.empty()) {
        dead_end = true;
        break;
      }
      const auto& [rel, dst] = options[rng->Uniform(options.size())];
      sample.query.relations.push_back(rel);
      current = dst;
    }
    if (dead_end) continue;
    sample.answer = current;
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<uint32_t> TrueAnswers(const graph_engine::GraphView& view,
                                  const PathQuery& query) {
  const auto adj = RelationAdjacency(view);
  std::set<uint32_t> frontier{query.anchor};
  for (uint32_t rel : query.relations) {
    std::set<uint32_t> next;
    auto rel_it = adj.find(rel);
    if (rel_it == adj.end()) return {};
    for (uint32_t node : frontier) {
      auto it = rel_it->second.find(node);
      if (it == rel_it->second.end()) continue;
      next.insert(it->second.begin(), it->second.end());
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return std::vector<uint32_t>(frontier.begin(), frontier.end());
}

BoxReasoningModel::BoxReasoningModel(size_t num_entities,
                                     size_t num_relations,
                                     BoxTrainingConfig config)
    : config_(config),
      num_entities_(num_entities),
      entity_points_(num_entities, config.dim),
      relation_centers_(std::max<size_t>(1, num_relations), config.dim),
      relation_offsets_(std::max<size_t>(1, num_relations), config.dim),
      rng_(config.seed) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(config.dim));
  entity_points_.RandomInit(&rng_, scale);
  relation_centers_.RandomInit(&rng_, scale);
  relation_offsets_.RandomInit(&rng_, scale);
}

void BoxReasoningModel::ComputeBox(const PathQuery& query,
                                   std::vector<float>* center,
                                   std::vector<float>* offset) const {
  const int dim = config_.dim;
  center->assign(entity_points_.Row(query.anchor),
                 entity_points_.Row(query.anchor) + dim);
  offset->assign(dim, 0.0f);
  for (uint32_t rel : query.relations) {
    const float* rc = relation_centers_.Row(rel);
    const float* ro = relation_offsets_.Row(rel);
    for (int i = 0; i < dim; ++i) {
      (*center)[i] += rc[i];
      (*offset)[i] += static_cast<float>(Softplus(ro[i]));
    }
  }
}

double BoxReasoningModel::ScoreBox(const float* center, const float* offset,
                                   const float* answer) const {
  double outside = 0.0;
  double inside = 0.0;
  for (int i = 0; i < config_.dim; ++i) {
    const double d = std::abs(static_cast<double>(answer[i]) - center[i]);
    outside += std::max(0.0, d - offset[i]);
    inside += std::min(d, static_cast<double>(offset[i]));
  }
  return -(outside + config_.inside_weight * inside);
}

double BoxReasoningModel::Score(const PathQuery& query,
                                uint32_t answer) const {
  std::vector<float> center;
  std::vector<float> offset;
  ComputeBox(query, &center, &offset);
  return ScoreBox(center.data(), offset.data(), entity_points_.Row(answer));
}

double BoxReasoningModel::Step(const PathQuery& query, uint32_t answer,
                               bool positive) {
  const int dim = config_.dim;
  std::vector<float> center;
  std::vector<float> offset;
  ComputeBox(query, &center, &offset);
  const float* a = entity_points_.Row(answer);
  const double score = ScoreBox(center.data(), offset.data(), a);

  // Logistic loss: positive softplus(-s), negative softplus(s).
  const double loss = positive ? Softplus(-score) : Softplus(score);
  const double dscore = positive ? -Sigmoid(-score) : Sigmoid(score);

  // Subgradients of score w.r.t. answer point, box center, box offset.
  std::vector<float> ganswer(dim, 0.0f);
  std::vector<float> gcenter(dim, 0.0f);
  std::vector<float> goffset(dim, 0.0f);  // w.r.t. realized offsets
  for (int i = 0; i < dim; ++i) {
    const double diff = static_cast<double>(a[i]) - center[i];
    const double d = std::abs(diff);
    const double sign = diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0);
    double dscore_dd;  // d(score)/d(d)
    if (d > offset[i]) {
      dscore_dd = -1.0;                       // outside term active
      goffset[i] = static_cast<float>(
          dscore * (1.0 - config_.inside_weight));  // growing box helps
    } else {
      dscore_dd = -config_.inside_weight;     // inside term active
      // inside = min(d, o) = d here: no offset gradient.
    }
    ganswer[i] = static_cast<float>(dscore * dscore_dd * sign);
    gcenter[i] = -ganswer[i];
  }

  entity_points_.ApplyGradient(answer, ganswer.data(),
                               config_.learning_rate);
  // Anchor point receives the center gradient.
  entity_points_.ApplyGradient(query.anchor, gcenter.data(),
                               config_.learning_rate);
  // Relations: centers share gcenter; offsets via softplus chain rule.
  for (uint32_t rel : query.relations) {
    relation_centers_.ApplyGradient(rel, gcenter.data(),
                                    config_.learning_rate);
    std::vector<float> grel_offset(dim, 0.0f);
    const float* ro = relation_offsets_.Row(rel);
    for (int i = 0; i < dim; ++i) {
      // d(score)/d(ro) = d(score)/d(offset) * sigmoid(ro).
      // goffset stores dscore/doffset scaled by dscore already; invert
      // the loss-direction convention used in ApplyGradient (descent on
      // loss): goffset is d(loss)/d(offset) because dscore included
      // d(loss)/d(score).
      grel_offset[i] =
          static_cast<float>(goffset[i] * Sigmoid(ro[i]));
    }
    relation_offsets_.ApplyGradient(rel, grel_offset.data(),
                                    config_.learning_rate);
  }
  return loss;
}

std::vector<double> BoxReasoningModel::Train(
    const std::vector<PathQuerySample>& samples) {
  std::vector<double> losses;
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t idx : order) {
      const PathQuerySample& s = samples[idx];
      epoch_loss += Step(s.query, s.answer, true);
      for (int k = 0; k < config_.num_negatives; ++k) {
        epoch_loss += Step(
            s.query, static_cast<uint32_t>(rng_.Uniform(num_entities_)),
            false);
      }
    }
    losses.push_back(samples.empty()
                         ? 0.0
                         : epoch_loss / static_cast<double>(samples.size()));
  }
  return losses;
}

std::vector<std::pair<uint32_t, double>> BoxReasoningModel::AnswerQuery(
    const PathQuery& query, size_t k) const {
  std::vector<float> center;
  std::vector<float> offset;
  ComputeBox(query, &center, &offset);
  std::vector<std::pair<uint32_t, double>> scored;
  scored.reserve(num_entities_);
  for (uint32_t e = 0; e < num_entities_; ++e) {
    scored.emplace_back(
        e, ScoreBox(center.data(), offset.data(), entity_points_.Row(e)));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

double BoxReasoningModel::EvaluateHitsAtK(
    const std::vector<PathQuerySample>& test,
    const graph_engine::GraphView& view, size_t k) const {
  if (test.empty()) return 0.0;
  size_t hits = 0;
  for (const PathQuerySample& s : test) {
    const auto truth = TrueAnswers(view, s.query);
    const std::set<uint32_t> truth_set(truth.begin(), truth.end());
    const double answer_score = Score(s.query, s.answer);
    size_t rank = 1;
    for (uint32_t e = 0; e < num_entities_; ++e) {
      if (e == s.answer || truth_set.count(e)) continue;  // filtered
      if (Score(s.query, e) > answer_score) ++rank;
      if (rank > k) break;
    }
    if (rank <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace saga::embedding
