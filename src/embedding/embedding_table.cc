#include "embedding/embedding_table.h"

#include <cmath>
#include <cstring>

#include "common/file_util.h"
#include "common/serialization.h"

namespace saga::embedding {

namespace {
constexpr double kAdagradEps = 1e-8;
constexpr uint32_t kTableMagic = 0x53454D42u;  // "SEMB"
}  // namespace

EmbeddingTable::EmbeddingTable(size_t rows, int dim)
    : rows_(rows),
      dim_(dim),
      data_(rows * static_cast<size_t>(dim), 0.0f),
      accum_(rows * static_cast<size_t>(dim), 0.0f) {}

void EmbeddingTable::RandomInit(Rng* rng, double scale) {
  for (float& v : data_) {
    v = static_cast<float>(rng->UniformDouble(-scale, scale));
  }
  std::fill(accum_.begin(), accum_.end(), 0.0f);
}

void EmbeddingTable::ApplyGradient(size_t row, const float* grad, double lr) {
  float* x = Row(row);
  float* a = accum_.data() + row * dim_;
  for (int i = 0; i < dim_; ++i) {
    const double g = grad[i];
    a[i] += static_cast<float>(g * g);
    x[i] -= static_cast<float>(lr * g / std::sqrt(a[i] + kAdagradEps));
  }
}

void EmbeddingTable::NormalizeRow(size_t row) {
  float* x = Row(row);
  double norm_sq = 0.0;
  for (int i = 0; i < dim_; ++i) norm_sq += static_cast<double>(x[i]) * x[i];
  if (norm_sq > 1.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (int i = 0; i < dim_; ++i) x[i] *= inv;
  }
}

std::vector<float> EmbeddingTable::RowVec(size_t r) const {
  return std::vector<float>(Row(r), Row(r) + dim_);
}

Status EmbeddingTable::SaveRows(const std::string& path, size_t begin,
                                size_t end) const {
  if (begin > end || end > rows_) {
    return Status::InvalidArgument("bad row range");
  }
  const size_t count = (end - begin) * static_cast<size_t>(dim_);
  std::string buf;
  buf.resize(count * 8);
  std::memcpy(buf.data(), data_.data() + begin * dim_, count * 4);
  std::memcpy(buf.data() + count * 4, accum_.data() + begin * dim_,
              count * 4);
  return WriteStringToFile(path, buf);
}

Status EmbeddingTable::LoadRows(const std::string& path, size_t begin,
                                size_t end) {
  if (begin > end || end > rows_) {
    return Status::InvalidArgument("bad row range");
  }
  SAGA_ASSIGN_OR_RETURN(std::string buf, ReadFileToString(path));
  const size_t count = (end - begin) * static_cast<size_t>(dim_);
  if (buf.size() != count * 8) {
    return Status::Corruption("partition file size mismatch: " + path);
  }
  std::memcpy(data_.data() + begin * dim_, buf.data(), count * 4);
  std::memcpy(accum_.data() + begin * dim_, buf.data() + count * 4,
              count * 4);
  return Status::OK();
}

Status EmbeddingTable::Save(const std::string& path) const {
  std::string buf;
  BinaryWriter w(&buf);
  w.PutFixed32(kTableMagic);
  w.PutVarint64(rows_);
  w.PutVarint64(static_cast<uint64_t>(dim_));
  const size_t bytes = data_.size() * 4;
  buf.reserve(buf.size() + bytes);
  buf.append(reinterpret_cast<const char*>(data_.data()), bytes);
  return WriteStringToFile(path, buf);
}

Result<EmbeddingTable> EmbeddingTable::Load(const std::string& path) {
  SAGA_ASSIGN_OR_RETURN(std::string buf, ReadFileToString(path));
  BinaryReader r(buf);
  uint32_t magic = 0;
  uint64_t rows = 0;
  uint64_t dim = 0;
  SAGA_RETURN_IF_ERROR(r.GetFixed32(&magic));
  if (magic != kTableMagic) {
    return Status::Corruption("bad embedding table magic: " + path);
  }
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&rows));
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&dim));
  EmbeddingTable table(rows, static_cast<int>(dim));
  const size_t bytes = rows * dim * 4;
  if (r.remaining() < bytes) {
    return Status::Corruption("embedding table truncated: " + path);
  }
  std::memcpy(table.data_.data(), buf.data() + r.position(), bytes);
  return table;
}

}  // namespace saga::embedding
