#ifndef SAGA_GRAPH_ENGINE_QUERY_H_
#define SAGA_GRAPH_ENGINE_QUERY_H_

#include <optional>
#include <vector>

#include "kg/knowledge_graph.h"

namespace saga::graph_engine {

/// A triple pattern with any combination of bound positions; unbound
/// positions are wildcards. ("benicio del toro", directed, ?movie).
struct TriplePattern {
  std::optional<kg::EntityId> subject;
  std::optional<kg::PredicateId> predicate;
  std::optional<kg::Value> object;
};

/// Live triples matching the pattern, using the cheapest available
/// index (SP > S > O-entity > P > full scan).
std::vector<kg::TripleIdx> Match(const kg::KnowledgeGraph& kg,
                                 const TriplePattern& pattern);

/// Entities that satisfy every (predicate, object) constraint, i.e. a
/// conjunctive star query around a subject variable.
std::vector<kg::EntityId> FindEntities(
    const kg::KnowledgeGraph& kg,
    const std::vector<std::pair<kg::PredicateId, kg::Value>>& constraints);

/// Two-hop join: subjects s such that (s, p1, m) and (m, p2, o) for some
/// m. E.g. athletes whose team is in a given city.
std::vector<kg::EntityId> JoinTwoHop(const kg::KnowledgeGraph& kg,
                                     kg::PredicateId p1, kg::PredicateId p2,
                                     const kg::Value& final_object);

/// Multi-hop path composition (§2 "multi-hop reasoning"): the sorted
/// set of entities reachable from `start` by following the predicates
/// in order over entity edges, e.g. spouse -> plays_for -> team_city =
/// "cities of the teams of X's spouse".
std::vector<kg::EntityId> FollowPath(
    const kg::KnowledgeGraph& kg, kg::EntityId start,
    const std::vector<kg::PredicateId>& path);

/// Logical set operators over sorted entity sets — the combinators of
/// reasoning queries. Inputs must be sorted and deduplicated (as all
/// query functions here return).
std::vector<kg::EntityId> IntersectSets(const std::vector<kg::EntityId>& a,
                                        const std::vector<kg::EntityId>& b);
std::vector<kg::EntityId> UnionSets(const std::vector<kg::EntityId>& a,
                                    const std::vector<kg::EntityId>& b);
std::vector<kg::EntityId> DifferenceSets(
    const std::vector<kg::EntityId>& a, const std::vector<kg::EntityId>& b);

}  // namespace saga::graph_engine

#endif  // SAGA_GRAPH_ENGINE_QUERY_H_
