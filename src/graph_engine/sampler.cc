#include "graph_engine/sampler.h"

namespace saga::graph_engine {

RandomWalkSampler::RandomWalkSampler() : RandomWalkSampler(Options()) {}

RandomWalkSampler::RandomWalkSampler(Options options) : options_(options) {}

std::vector<std::vector<uint32_t>> RandomWalkSampler::GenerateWalks(
    const GraphView& view, Rng* rng) const {
  const auto& adj = view.Adjacency();
  std::vector<std::vector<uint32_t>> walks;
  walks.reserve(view.num_entities() *
                static_cast<size_t>(options_.walks_per_node));
  for (uint32_t start = 0; start < view.num_entities(); ++start) {
    for (int w = 0; w < options_.walks_per_node; ++w) {
      std::vector<uint32_t> walk{start};
      uint32_t cur = start;
      for (int step = 1; step < options_.walk_length; ++step) {
        const auto& nbrs = adj[cur];
        if (nbrs.empty()) break;
        cur = nbrs[rng->Uniform(nbrs.size())];
        walk.push_back(cur);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::pair<uint32_t, uint32_t>>
RandomWalkSampler::CoOccurrencePairs(
    const std::vector<std::vector<uint32_t>>& walks) const {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& walk : walks) {
    for (size_t i = 0; i < walk.size(); ++i) {
      const size_t hi =
          std::min(walk.size(), i + 1 + static_cast<size_t>(options_.window));
      for (size_t j = i + 1; j < hi; ++j) {
        if (walk[i] != walk[j]) pairs.emplace_back(walk[i], walk[j]);
      }
    }
  }
  return pairs;
}

}  // namespace saga::graph_engine
