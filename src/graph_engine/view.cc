#include "graph_engine/view.h"

#include <algorithm>

namespace saga::graph_engine {

bool GraphView::TriplePasses(const kg::KnowledgeGraph& kg,
                             const kg::Triple& t) const {
  if (def_.entity_edges_only && !t.object.is_entity()) return false;
  if (t.provenance.confidence < def_.min_confidence) return false;
  const kg::PredicateMeta& meta = kg.ontology().predicate(t.predicate);
  if (def_.embedding_relevant_only && !meta.embedding_relevant) return false;
  if (!def_.include_predicates.empty() &&
      std::find(def_.include_predicates.begin(),
                def_.include_predicates.end(),
                t.predicate) == def_.include_predicates.end()) {
    return false;
  }
  if (!def_.subject_types.empty()) {
    bool subject_ok = false;
    for (kg::TypeId required : def_.subject_types) {
      for (kg::TypeId has : kg.catalog().record(t.subject).types) {
        if (kg.ontology().IsSubtypeOf(has, required)) {
          subject_ok = true;
          break;
        }
      }
      if (subject_ok) break;
    }
    if (!subject_ok) return false;
  }
  return true;
}

uint32_t GraphView::InternEntity(kg::EntityId e) {
  auto [it, inserted] =
      entity_to_local_.emplace(e, static_cast<uint32_t>(entity_to_global_.size()));
  if (inserted) entity_to_global_.push_back(e);
  return it->second;
}

uint32_t GraphView::InternRelation(kg::PredicateId p) {
  auto [it, inserted] = relation_to_local_.emplace(
      p, static_cast<uint32_t>(relation_to_global_.size()));
  if (inserted) relation_to_global_.push_back(p);
  return it->second;
}

GraphView GraphView::Build(const kg::KnowledgeGraph& kg,
                           const ViewDefinition& def) {
  GraphView view;
  view.def_ = def;

  // Pass 1: count surviving triples per predicate (for the frequency
  // filter); pass 2: materialize.
  std::vector<kg::TripleIdx> passing;
  kg.triples().ForEach([&](kg::TripleIdx idx, const kg::Triple& t) {
    if (view.TriplePasses(kg, t)) {
      passing.push_back(idx);
      ++view.predicate_counts_[t.predicate];
    }
  });
  for (kg::TripleIdx idx : passing) {
    const kg::Triple& t = kg.triples().triple(idx);
    if (view.predicate_counts_[t.predicate] < def.min_predicate_frequency) {
      continue;
    }
    ViewEdge e;
    e.src = view.InternEntity(t.subject);
    e.relation = view.InternRelation(t.predicate);
    e.dst = view.InternEntity(t.object.entity());
    view.edges_.push_back(e);
  }
  return view;
}

void GraphView::ApplyDelta(const kg::KnowledgeGraph& kg,
                           const std::vector<kg::TripleIdx>& added) {
  for (kg::TripleIdx idx : added) {
    if (!kg.triples().IsLive(idx)) continue;
    const kg::Triple& t = kg.triples().triple(idx);
    if (!TriplePasses(kg, t)) continue;
    const uint64_t count = ++predicate_counts_[t.predicate];
    if (count < def_.min_predicate_frequency) continue;
    ViewEdge e;
    e.src = InternEntity(t.subject);
    e.relation = InternRelation(t.predicate);
    e.dst = InternEntity(t.object.entity());
    edges_.push_back(e);
    adjacency_valid_ = false;
  }
}

uint32_t GraphView::local_entity(kg::EntityId e) const {
  auto it = entity_to_local_.find(e);
  return it == entity_to_local_.end() ? kNotInView : it->second;
}

uint32_t GraphView::local_relation(kg::PredicateId p) const {
  auto it = relation_to_local_.find(p);
  return it == relation_to_local_.end() ? kNotInView : it->second;
}

const std::vector<std::vector<uint32_t>>& GraphView::Adjacency() const {
  if (!adjacency_valid_) {
    adjacency_.assign(num_entities(), {});
    for (const ViewEdge& e : edges_) {
      adjacency_[e.src].push_back(e.dst);
      adjacency_[e.dst].push_back(e.src);
    }
    adjacency_valid_ = true;
  }
  return adjacency_;
}

}  // namespace saga::graph_engine
