#ifndef SAGA_GRAPH_ENGINE_VIEW_H_
#define SAGA_GRAPH_ENGINE_VIEW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kg/knowledge_graph.h"

namespace saga::graph_engine {

/// Declarative filter producing a training-ready projection of the KG
/// (§2: "the graph engine generates a view of the KG by filtering out
/// non-relevant facts and possible noise").
struct ViewDefinition {
  /// Keep only entity->entity edges (literals never embed).
  bool entity_edges_only = true;
  /// Keep only predicates flagged embedding_relevant in the ontology.
  bool embedding_relevant_only = true;
  /// Drop predicates whose live-triple count falls below this after the
  /// other filters (rare predicates train noisy representations).
  uint64_t min_predicate_frequency = 0;
  /// Drop facts whose provenance confidence is below this.
  double min_confidence = 0.0;
  /// If non-empty, keep only these predicates.
  std::vector<kg::PredicateId> include_predicates;
  /// If non-empty, keep only subjects having one of these types
  /// (subtyping respected).
  std::vector<kg::TypeId> subject_types;
};

/// One edge of a materialized view in *local* dense id space.
struct ViewEdge {
  uint32_t src = 0;       // local entity id
  uint32_t relation = 0;  // local relation id
  uint32_t dst = 0;       // local entity id
};

/// Materialized filtered projection with dense local ids for entities
/// and relations — the exact shape embedding trainers consume.
/// Supports incremental maintenance (the KG is continuously growing).
class GraphView {
 public:
  /// Filters `kg` by `def` and assigns dense local ids.
  static GraphView Build(const kg::KnowledgeGraph& kg,
                         const ViewDefinition& def);

  /// Applies triples appended since the last Build/Apply: each triple
  /// passing the filters becomes a new edge (new entities/relations get
  /// fresh local ids). min_predicate_frequency is evaluated against
  /// cumulative counts.
  void ApplyDelta(const kg::KnowledgeGraph& kg,
                  const std::vector<kg::TripleIdx>& added);

  const std::vector<ViewEdge>& edges() const { return edges_; }
  size_t num_entities() const { return entity_to_global_.size(); }
  size_t num_relations() const { return relation_to_global_.size(); }

  kg::EntityId global_entity(uint32_t local) const {
    return entity_to_global_[local];
  }
  kg::PredicateId global_relation(uint32_t local) const {
    return relation_to_global_[local];
  }
  /// Returns 0xFFFFFFFF when the entity is not in the view.
  uint32_t local_entity(kg::EntityId e) const;
  uint32_t local_relation(kg::PredicateId p) const;

  /// Undirected adjacency over view edges (built lazily, cached).
  const std::vector<std::vector<uint32_t>>& Adjacency() const;

  static constexpr uint32_t kNotInView = 0xFFFFFFFFu;

 private:
  bool TriplePasses(const kg::KnowledgeGraph& kg, const kg::Triple& t) const;
  uint32_t InternEntity(kg::EntityId e);
  uint32_t InternRelation(kg::PredicateId p);

  ViewDefinition def_;
  std::vector<ViewEdge> edges_;
  std::vector<kg::EntityId> entity_to_global_;
  std::vector<kg::PredicateId> relation_to_global_;
  std::unordered_map<kg::EntityId, uint32_t> entity_to_local_;
  std::unordered_map<kg::PredicateId, uint32_t> relation_to_local_;
  std::unordered_map<kg::PredicateId, uint64_t> predicate_counts_;
  mutable std::vector<std::vector<uint32_t>> adjacency_;
  mutable bool adjacency_valid_ = false;
};

}  // namespace saga::graph_engine

#endif  // SAGA_GRAPH_ENGINE_VIEW_H_
