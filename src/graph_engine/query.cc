#include "graph_engine/query.h"

#include <algorithm>

namespace saga::graph_engine {

std::vector<kg::TripleIdx> Match(const kg::KnowledgeGraph& kg,
                                 const TriplePattern& pattern) {
  const kg::TripleStore& store = kg.triples();
  std::vector<kg::TripleIdx> candidates;

  if (pattern.subject && pattern.predicate) {
    candidates = store.BySubjectPredicate(*pattern.subject,
                                          *pattern.predicate);
  } else if (pattern.subject) {
    candidates = store.BySubject(*pattern.subject);
  } else if (pattern.object && pattern.object->is_entity()) {
    candidates = store.ByObjectEntity(pattern.object->entity());
  } else if (pattern.predicate) {
    candidates = store.ByPredicate(*pattern.predicate);
  } else {
    store.ForEach([&candidates](kg::TripleIdx idx, const kg::Triple&) {
      candidates.push_back(idx);
    });
  }

  std::vector<kg::TripleIdx> out;
  out.reserve(candidates.size());
  for (kg::TripleIdx idx : candidates) {
    const kg::Triple& t = store.triple(idx);
    if (pattern.subject && t.subject != *pattern.subject) continue;
    if (pattern.predicate && t.predicate != *pattern.predicate) continue;
    if (pattern.object && !(t.object == *pattern.object)) continue;
    out.push_back(idx);
  }
  return out;
}

std::vector<kg::EntityId> FindEntities(
    const kg::KnowledgeGraph& kg,
    const std::vector<std::pair<kg::PredicateId, kg::Value>>& constraints) {
  if (constraints.empty()) return {};
  // Seed with subjects matching the first constraint, then filter.
  TriplePattern first;
  first.predicate = constraints[0].first;
  first.object = constraints[0].second;
  std::vector<kg::EntityId> candidates;
  for (kg::TripleIdx idx : Match(kg, first)) {
    candidates.push_back(kg.triples().triple(idx).subject);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<kg::EntityId> out;
  for (kg::EntityId e : candidates) {
    bool all = true;
    for (size_t i = 1; i < constraints.size(); ++i) {
      if (!kg.triples().Contains(e, constraints[i].first,
                                 constraints[i].second)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(e);
  }
  return out;
}

std::vector<kg::EntityId> JoinTwoHop(const kg::KnowledgeGraph& kg,
                                     kg::PredicateId p1, kg::PredicateId p2,
                                     const kg::Value& final_object) {
  TriplePattern mid_pattern;
  mid_pattern.predicate = p2;
  mid_pattern.object = final_object;
  std::vector<kg::EntityId> out;
  for (kg::TripleIdx mid_idx : Match(kg, mid_pattern)) {
    const kg::EntityId mid = kg.triples().triple(mid_idx).subject;
    TriplePattern outer;
    outer.predicate = p1;
    outer.object = kg::Value::Entity(mid);
    for (kg::TripleIdx idx : Match(kg, outer)) {
      out.push_back(kg.triples().triple(idx).subject);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<kg::EntityId> FollowPath(
    const kg::KnowledgeGraph& kg, kg::EntityId start,
    const std::vector<kg::PredicateId>& path) {
  std::vector<kg::EntityId> frontier{start};
  for (kg::PredicateId p : path) {
    std::vector<kg::EntityId> next;
    for (kg::EntityId e : frontier) {
      for (const kg::Value& v : kg.ObjectsOf(e, p)) {
        if (v.is_entity()) next.push_back(v.entity());
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  if (!path.empty() || frontier.empty()) return frontier;
  return {};  // empty path: no hop taken, by convention no results
}

std::vector<kg::EntityId> IntersectSets(const std::vector<kg::EntityId>& a,
                                        const std::vector<kg::EntityId>& b) {
  std::vector<kg::EntityId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<kg::EntityId> UnionSets(const std::vector<kg::EntityId>& a,
                                    const std::vector<kg::EntityId>& b) {
  std::vector<kg::EntityId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<kg::EntityId> DifferenceSets(
    const std::vector<kg::EntityId>& a, const std::vector<kg::EntityId>& b) {
  std::vector<kg::EntityId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace saga::graph_engine
