#include "graph_engine/ppr.h"

#include <algorithm>
#include <deque>

#include "common/fault_injection.h"

namespace saga::graph_engine {

PprEngine::PprEngine(const GraphView* view) : PprEngine(view, Options()) {}

PprEngine::PprEngine(const GraphView* view, Options options)
    : view_(view), options_(options) {}

Status PprEngine::PprImpl(uint32_t source, const RequestContext* ctx,
                          std::unordered_map<uint32_t, double>* out) const {
  const auto& adj = view_->Adjacency();
  std::unordered_map<uint32_t, double>& p = *out;
  std::unordered_map<uint32_t, double> r;
  r[source] = 1.0;
  std::deque<uint32_t> queue{source};
  std::unordered_map<uint32_t, bool> queued;
  queued[source] = true;

  size_t pushes = 0;
  size_t steps = 0;
  while (!queue.empty() && pushes < options_.max_pushes) {
    if (ctx != nullptr) {
      // Push-loop boundary: cooperative deadline check (strided — a
      // push touches at most one adjacency list) + fault consultation.
      if ((steps++ & 255) == 0) {
        SAGA_RETURN_IF_ERROR(ctx->Check("graph_engine.ppr"));
      }
      if (Faults().armed()) {
        SAGA_RETURN_IF_ERROR(Faults().InjectOp("graph.traverse"));
      }
    }
    const uint32_t u = queue.front();
    queue.pop_front();
    queued[u] = false;
    const double ru = r[u];
    const size_t deg = adj[u].size();
    if (deg == 0) {
      // Dangling node: absorb the residual.
      p[u] += ru;
      r[u] = 0.0;
      continue;
    }
    if (ru / static_cast<double>(deg) < options_.epsilon) continue;
    ++pushes;
    p[u] += options_.alpha * ru;
    const double push = (1.0 - options_.alpha) * ru /
                        static_cast<double>(deg);
    r[u] = 0.0;
    for (uint32_t v : adj[u]) {
      r[v] += push;
      if (!queued[v] &&
          r[v] / std::max<size_t>(1, adj[v].size()) >= options_.epsilon) {
        queue.push_back(v);
        queued[v] = true;
      }
    }
  }
  return Status::OK();
}

std::unordered_map<uint32_t, double> PprEngine::Ppr(uint32_t source) const {
  std::unordered_map<uint32_t, double> p;
  (void)PprImpl(source, nullptr, &p);
  return p;
}

Result<std::unordered_map<uint32_t, double>> PprEngine::Ppr(
    uint32_t source, const RequestContext& ctx) const {
  std::unordered_map<uint32_t, double> p;
  SAGA_RETURN_IF_ERROR(PprImpl(source, &ctx, &p));
  return p;
}

namespace {

std::vector<std::pair<uint32_t, double>> RankScores(
    std::unordered_map<uint32_t, double> scores, uint32_t source, size_t k) {
  scores.erase(source);
  std::vector<std::pair<uint32_t, double>> out(scores.begin(), scores.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace

std::vector<std::pair<uint32_t, double>> PprEngine::TopKRelated(
    uint32_t source, size_t k) const {
  return RankScores(Ppr(source), source, k);
}

Result<std::vector<std::pair<uint32_t, double>>> PprEngine::TopKRelated(
    uint32_t source, size_t k, const RequestContext& ctx) const {
  SAGA_ASSIGN_OR_RETURN(auto scores, Ppr(source, ctx));
  return RankScores(std::move(scores), source, k);
}

}  // namespace saga::graph_engine
