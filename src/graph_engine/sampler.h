#ifndef SAGA_GRAPH_ENGINE_SAMPLER_H_
#define SAGA_GRAPH_ENGINE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph_engine/view.h"

namespace saga::graph_engine {

/// Pre-computed graph traversals for specialized related-entity
/// embeddings (§2: "for specialized related entity embeddings we use
/// the scalable graph processing capabilities of our graph engine to
/// pre-compute graph traversals").
class RandomWalkSampler {
 public:
  struct Options {
    int walks_per_node = 4;
    int walk_length = 8;
    /// Skip-gram co-occurrence window when pairing walk nodes.
    int window = 3;
  };

  RandomWalkSampler();
  explicit RandomWalkSampler(Options options);

  /// Uniform random walks over the view's undirected adjacency; one
  /// vector per walk, entries are local entity ids. Isolated nodes
  /// yield length-1 walks.
  std::vector<std::vector<uint32_t>> GenerateWalks(const GraphView& view,
                                                   Rng* rng) const;

  /// Skip-gram style (center, context) pairs from walks. These are the
  /// positive pairs for relatedness embedding training.
  std::vector<std::pair<uint32_t, uint32_t>> CoOccurrencePairs(
      const std::vector<std::vector<uint32_t>>& walks) const;

 private:
  Options options_;
};

}  // namespace saga::graph_engine

#endif  // SAGA_GRAPH_ENGINE_SAMPLER_H_
