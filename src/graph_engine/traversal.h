#ifndef SAGA_GRAPH_ENGINE_TRAVERSAL_H_
#define SAGA_GRAPH_ENGINE_TRAVERSAL_H_

#include <unordered_map>
#include <vector>

#include "common/request_context.h"
#include "common/result.h"
#include "kg/knowledge_graph.h"

namespace saga::graph_engine {

/// Entities within `k` hops of `start` over entity edges (undirected),
/// excluding `start`, mapped to their hop distance. Traversal stops
/// after visiting `max_nodes` entities.
std::unordered_map<kg::EntityId, int> KHopNeighbors(
    const kg::KnowledgeGraph& kg, kg::EntityId start, int k,
    size_t max_nodes = 100000);

/// Deadline-aware serving variant: checks `ctx` cooperatively at BFS
/// loop boundaries and fails with DeadlineExceeded once the budget is
/// spent (instead of burning CPU finishing an answer nobody will wait
/// for). Also consults the `graph.traverse` fault point, so the chaos /
/// overload harnesses can slow traversal down or fail it outright.
Result<std::unordered_map<kg::EntityId, int>> KHopNeighbors(
    const kg::KnowledgeGraph& kg, kg::EntityId start, int k,
    const RequestContext& ctx, size_t max_nodes = 100000);

/// Undirected shortest-path length between a and b, or -1 if no path is
/// found within `max_depth` hops.
int ShortestPathLength(const kg::KnowledgeGraph& kg, kg::EntityId a,
                       kg::EntityId b, int max_depth = 6);

/// Entities adjacent to both a and b.
std::vector<kg::EntityId> CommonNeighbors(const kg::KnowledgeGraph& kg,
                                          kg::EntityId a, kg::EntityId b);

}  // namespace saga::graph_engine

#endif  // SAGA_GRAPH_ENGINE_TRAVERSAL_H_
