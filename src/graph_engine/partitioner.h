#ifndef SAGA_GRAPH_ENGINE_PARTITIONER_H_
#define SAGA_GRAPH_ENGINE_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "graph_engine/view.h"

namespace saga::graph_engine {

/// Random edge-based graph partitioning for scalable shallow-embedding
/// training (§2). Entities are randomly assigned to P partitions; each
/// edge falls into bucket (partition(src), partition(dst)). The disk
/// trainer streams buckets while keeping only two entity partitions of
/// embeddings resident (Marius-style partition buffer).
class EdgePartitioner {
 public:
  /// Randomly assigns the view's entities to `num_partitions` balanced
  /// partitions (deterministic given the rng seed).
  EdgePartitioner(const GraphView& view, int num_partitions, Rng* rng);

  int num_partitions() const { return num_partitions_; }
  int partition_of(uint32_t local_entity) const {
    return assignment_[local_entity];
  }
  const std::vector<int>& assignment() const { return assignment_; }

  /// Entities (local ids) in partition p.
  const std::vector<uint32_t>& partition_members(int p) const {
    return members_[p];
  }

  /// Edges of bucket (pi, pj): all view edges with src in pi, dst in pj.
  std::vector<ViewEdge> Bucket(const GraphView& view, int pi, int pj) const;

  /// Writes every bucket to `dir/bucket_<i>_<j>.bin`; LoadBucket reads
  /// one back. The disk trainer iterates buckets without materializing
  /// the full edge list.
  Status WriteBuckets(const GraphView& view, const std::string& dir) const;
  /// Same, but over an explicit edge list (e.g. training split only).
  Status WriteBuckets(const std::vector<ViewEdge>& edges,
                      const std::string& dir) const;
  static Result<std::vector<ViewEdge>> LoadBucket(const std::string& dir,
                                                  int pi, int pj);

  /// Bucket visit order minimizing partition swaps: consecutive buckets
  /// share at least one partition when possible (Hilbert-like zigzag).
  static std::vector<std::pair<int, int>> BucketSchedule(int num_partitions);

 private:
  int num_partitions_;
  std::vector<int> assignment_;
  std::vector<std::vector<uint32_t>> members_;
};

}  // namespace saga::graph_engine

#endif  // SAGA_GRAPH_ENGINE_PARTITIONER_H_
