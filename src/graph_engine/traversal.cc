#include "graph_engine/traversal.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace saga::graph_engine {

std::unordered_map<kg::EntityId, int> KHopNeighbors(
    const kg::KnowledgeGraph& kg, kg::EntityId start, int k,
    size_t max_nodes) {
  std::unordered_map<kg::EntityId, int> dist;
  std::deque<kg::EntityId> frontier{start};
  dist[start] = 0;
  while (!frontier.empty() && dist.size() < max_nodes) {
    const kg::EntityId cur = frontier.front();
    frontier.pop_front();
    const int d = dist[cur];
    if (d >= k) continue;
    for (kg::EntityId nb : kg.Neighbors(cur)) {
      if (dist.emplace(nb, d + 1).second) {
        frontier.push_back(nb);
        if (dist.size() >= max_nodes) break;
      }
    }
  }
  dist.erase(start);
  return dist;
}

int ShortestPathLength(const kg::KnowledgeGraph& kg, kg::EntityId a,
                       kg::EntityId b, int max_depth) {
  if (a == b) return 0;
  std::unordered_map<kg::EntityId, int> dist;
  std::deque<kg::EntityId> frontier{a};
  dist[a] = 0;
  while (!frontier.empty()) {
    const kg::EntityId cur = frontier.front();
    frontier.pop_front();
    const int d = dist[cur];
    if (d >= max_depth) continue;
    for (kg::EntityId nb : kg.Neighbors(cur)) {
      if (nb == b) return d + 1;
      if (dist.emplace(nb, d + 1).second) frontier.push_back(nb);
    }
  }
  return -1;
}

std::vector<kg::EntityId> CommonNeighbors(const kg::KnowledgeGraph& kg,
                                          kg::EntityId a, kg::EntityId b) {
  std::vector<kg::EntityId> na = kg.Neighbors(a);
  std::vector<kg::EntityId> nb = kg.Neighbors(b);
  std::vector<kg::EntityId> out;
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace saga::graph_engine
