#include "graph_engine/traversal.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/fault_injection.h"

namespace saga::graph_engine {

namespace {

/// Shared BFS core. `ctx` may be null (legacy batch callers): then no
/// deadline checks and no fault-point consultation happen and the
/// traversal cannot fail.
Status KHopImpl(const kg::KnowledgeGraph& kg, kg::EntityId start, int k,
                size_t max_nodes, const RequestContext* ctx,
                std::unordered_map<kg::EntityId, int>* dist) {
  std::deque<kg::EntityId> frontier{start};
  (*dist)[start] = 0;
  size_t steps = 0;
  while (!frontier.empty() && dist->size() < max_nodes) {
    if (ctx != nullptr) {
      // Cooperative cancellation at the loop boundary; stride keeps the
      // steady-state cost to one counter increment per popped node.
      if ((steps++ & 63) == 0) {
        SAGA_RETURN_IF_ERROR(ctx->Check("graph_engine.khop"));
      }
      if (Faults().armed()) {
        SAGA_RETURN_IF_ERROR(Faults().InjectOp("graph.traverse"));
      }
    }
    const kg::EntityId cur = frontier.front();
    frontier.pop_front();
    const int d = (*dist)[cur];
    if (d >= k) continue;
    for (kg::EntityId nb : kg.Neighbors(cur)) {
      if (dist->emplace(nb, d + 1).second) {
        frontier.push_back(nb);
        if (dist->size() >= max_nodes) break;
      }
    }
  }
  dist->erase(start);
  return Status::OK();
}

}  // namespace

std::unordered_map<kg::EntityId, int> KHopNeighbors(
    const kg::KnowledgeGraph& kg, kg::EntityId start, int k,
    size_t max_nodes) {
  std::unordered_map<kg::EntityId, int> dist;
  (void)KHopImpl(kg, start, k, max_nodes, nullptr, &dist);
  return dist;
}

Result<std::unordered_map<kg::EntityId, int>> KHopNeighbors(
    const kg::KnowledgeGraph& kg, kg::EntityId start, int k,
    const RequestContext& ctx, size_t max_nodes) {
  std::unordered_map<kg::EntityId, int> dist;
  SAGA_RETURN_IF_ERROR(KHopImpl(kg, start, k, max_nodes, &ctx, &dist));
  return dist;
}

int ShortestPathLength(const kg::KnowledgeGraph& kg, kg::EntityId a,
                       kg::EntityId b, int max_depth) {
  if (a == b) return 0;
  std::unordered_map<kg::EntityId, int> dist;
  std::deque<kg::EntityId> frontier{a};
  dist[a] = 0;
  while (!frontier.empty()) {
    const kg::EntityId cur = frontier.front();
    frontier.pop_front();
    const int d = dist[cur];
    if (d >= max_depth) continue;
    for (kg::EntityId nb : kg.Neighbors(cur)) {
      if (nb == b) return d + 1;
      if (dist.emplace(nb, d + 1).second) frontier.push_back(nb);
    }
  }
  return -1;
}

std::vector<kg::EntityId> CommonNeighbors(const kg::KnowledgeGraph& kg,
                                          kg::EntityId a, kg::EntityId b) {
  std::vector<kg::EntityId> na = kg.Neighbors(a);
  std::vector<kg::EntityId> nb = kg.Neighbors(b);
  std::vector<kg::EntityId> out;
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace saga::graph_engine
