#ifndef SAGA_GRAPH_ENGINE_PPR_H_
#define SAGA_GRAPH_ENGINE_PPR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/request_context.h"
#include "common/result.h"
#include "graph_engine/view.h"

namespace saga::graph_engine {

/// Personalized PageRank over a graph view, via the Andersen-Chung-Lang
/// forward-push approximation. Serves as the classical (non-embedding)
/// related-entities baseline and as a graph-signal feature.
class PprEngine {
 public:
  struct Options {
    double alpha = 0.15;    // teleport probability
    double epsilon = 1e-4;  // push threshold (residual/degree)
    size_t max_pushes = 1000000;
  };

  explicit PprEngine(const GraphView* view);
  PprEngine(const GraphView* view, Options options);

  /// Approximate PPR vector from `source` (local id); only nonzero
  /// entries are returned.
  std::unordered_map<uint32_t, double> Ppr(uint32_t source) const;

  /// Deadline-aware serving variant: checks `ctx` at push-loop
  /// boundaries (forward-push is the PPR hot loop) and returns
  /// DeadlineExceeded once the budget is spent. Consults the
  /// `graph.traverse` fault point for latency/failure injection.
  Result<std::unordered_map<uint32_t, double>> Ppr(
      uint32_t source, const RequestContext& ctx) const;

  /// Top-k highest-PPR entities excluding the source itself.
  std::vector<std::pair<uint32_t, double>> TopKRelated(uint32_t source,
                                                       size_t k) const;
  Result<std::vector<std::pair<uint32_t, double>>> TopKRelated(
      uint32_t source, size_t k, const RequestContext& ctx) const;

 private:
  Status PprImpl(uint32_t source, const RequestContext* ctx,
                 std::unordered_map<uint32_t, double>* p) const;

  const GraphView* view_;
  Options options_;
};

}  // namespace saga::graph_engine

#endif  // SAGA_GRAPH_ENGINE_PPR_H_
