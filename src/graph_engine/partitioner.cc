#include "graph_engine/partitioner.h"

#include "common/file_util.h"
#include "common/serialization.h"

namespace saga::graph_engine {

namespace {
std::string BucketPath(const std::string& dir, int pi, int pj) {
  return JoinPath(dir, "bucket_" + std::to_string(pi) + "_" +
                           std::to_string(pj) + ".bin");
}
}  // namespace

EdgePartitioner::EdgePartitioner(const GraphView& view, int num_partitions,
                                 Rng* rng)
    : num_partitions_(num_partitions) {
  const size_t n = view.num_entities();
  assignment_.resize(n);
  members_.assign(num_partitions, {});
  // Balanced random assignment: shuffle then round-robin.
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);
  for (size_t i = 0; i < n; ++i) {
    const int p = static_cast<int>(i % static_cast<size_t>(num_partitions));
    assignment_[order[i]] = p;
    members_[p].push_back(order[i]);
  }
}

std::vector<ViewEdge> EdgePartitioner::Bucket(const GraphView& view, int pi,
                                              int pj) const {
  std::vector<ViewEdge> out;
  for (const ViewEdge& e : view.edges()) {
    if (assignment_[e.src] == pi && assignment_[e.dst] == pj) {
      out.push_back(e);
    }
  }
  return out;
}

Status EdgePartitioner::WriteBuckets(const GraphView& view,
                                     const std::string& dir) const {
  return WriteBuckets(view.edges(), dir);
}

Status EdgePartitioner::WriteBuckets(const std::vector<ViewEdge>& edges,
                                     const std::string& dir) const {
  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  // One pass over edges, buffering per bucket.
  std::vector<std::string> buffers(
      static_cast<size_t>(num_partitions_) * num_partitions_);
  for (const ViewEdge& e : edges) {
    const size_t bucket =
        static_cast<size_t>(assignment_[e.src]) * num_partitions_ +
        assignment_[e.dst];
    BinaryWriter w(&buffers[bucket]);
    w.PutVarint64(e.src);
    w.PutVarint64(e.relation);
    w.PutVarint64(e.dst);
  }
  for (int pi = 0; pi < num_partitions_; ++pi) {
    for (int pj = 0; pj < num_partitions_; ++pj) {
      SAGA_RETURN_IF_ERROR(WriteStringToFile(
          BucketPath(dir, pi, pj),
          buffers[static_cast<size_t>(pi) * num_partitions_ + pj]));
    }
  }
  return Status::OK();
}

Result<std::vector<ViewEdge>> EdgePartitioner::LoadBucket(
    const std::string& dir, int pi, int pj) {
  SAGA_ASSIGN_OR_RETURN(std::string data,
                        ReadFileToString(BucketPath(dir, pi, pj)));
  BinaryReader r(data);
  std::vector<ViewEdge> edges;
  while (!r.AtEnd()) {
    uint64_t s = 0;
    uint64_t rel = 0;
    uint64_t d = 0;
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&s));
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&rel));
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&d));
    edges.push_back(ViewEdge{static_cast<uint32_t>(s),
                             static_cast<uint32_t>(rel),
                             static_cast<uint32_t>(d)});
  }
  return edges;
}

std::vector<std::pair<int, int>> EdgePartitioner::BucketSchedule(
    int num_partitions) {
  // Row-major zigzag: (0,0)..(0,P-1), (1,P-1)..(1,0), (2,0)... so that
  // consecutive buckets always share the row partition and usually the
  // column partition, minimizing buffer swaps in the disk trainer.
  std::vector<std::pair<int, int>> order;
  order.reserve(static_cast<size_t>(num_partitions) * num_partitions);
  for (int i = 0; i < num_partitions; ++i) {
    if (i % 2 == 0) {
      for (int j = 0; j < num_partitions; ++j) order.emplace_back(i, j);
    } else {
      for (int j = num_partitions - 1; j >= 0; --j) order.emplace_back(i, j);
    }
  }
  return order;
}

}  // namespace saga::graph_engine
