#include "ondevice/device_data_generator.h"

#include <array>

namespace saga::ondevice {

namespace {

constexpr std::array<const char*, 20> kFirstNames = {
    "Timothy", "Sarah", "Miguel",  "Anna",   "Wei",
    "Priya",   "Oliver", "Fatima", "Jonas",  "Keiko",
    "Lucas",   "Ingrid", "Ahmed",  "Claire", "Viktor",
    "Amara",   "Diego",  "Hana",   "Samuel", "Nora"};

constexpr std::array<const char*, 20> kLastNames = {
    "Chen",   "Okafor",  "Garcia", "Lindqvist", "Tanaka",
    "Patel",  "Novak",   "Haddad", "Moreau",    "Kim",
    "Silva",  "Fischer", "Ali",    "Jensen",    "Romano",
    "Ivanov", "Mendes",  "Sato",   "Berg",      "Dubois"};

constexpr std::array<const char*, 6> kShortNameOf = {
    "Tim", "Sara", "Mig", "Ann", "Wei", "Pri"};

constexpr std::array<const char*, 16> kTopics = {
    "SIGMOD draft",      "soccer practice",  "quarterly budget",
    "birthday party",    "apartment lease",  "hiking trip",
    "piano recital",     "code review",      "dentist appointment",
    "wedding planning",  "book club",        "tax documents",
    "school pickup",     "fantasy league",   "garden project",
    "conference travel"};

std::string FormatPhone(Rng* rng, const std::string& digits) {
  // Same number, three rendered formats.
  switch (rng->Uniform(3)) {
    case 0:
      return "+1 " + digits.substr(0, 3) + " " + digits.substr(3, 3) + " " +
             digits.substr(6);
    case 1:
      return "(" + digits.substr(0, 3) + ") " + digits.substr(3, 3) + "-" +
             digits.substr(6);
    default:
      return digits;
  }
}

}  // namespace

DeviceDataset GenerateDeviceData(const DeviceDataConfig& config) {
  Rng rng(config.seed);
  DeviceDataset out;
  out.num_persons = static_cast<size_t>(config.num_persons);

  struct Person {
    std::string first;
    std::string last;
    std::string phone_digits;  // canonical 10 digits
    std::string email;
    std::vector<std::string> topics;
  };
  std::vector<Person> persons;
  persons.reserve(out.num_persons);
  for (int i = 0; i < config.num_persons; ++i) {
    Person p;
    if (i > 0 && rng.Bernoulli(config.shared_first_name_rate)) {
      // Share a first name with an earlier person, different last name.
      p.first = persons[rng.Uniform(persons.size())].first;
    } else {
      p.first = kFirstNames[rng.Uniform(kFirstNames.size())];
    }
    p.last = kLastNames[i % kLastNames.size()] +
             (i >= static_cast<int>(kLastNames.size())
                  ? std::to_string(i / kLastNames.size())
                  : "");
    p.phone_digits = "555";
    for (int d = 0; d < 7; ++d) {
      p.phone_digits += static_cast<char>('0' + rng.Uniform(10));
    }
    p.email = std::string(1, static_cast<char>(
                                 std::tolower(p.first[0]))) +
              "." + p.last + "@example.com";
    for (char& c : p.email) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    // 2 distinct topics per person; namesakes get disjoint topics with
    // high probability because topics are drawn independently.
    const size_t t1 = rng.Uniform(kTopics.size());
    size_t t2 = rng.Uniform(kTopics.size());
    if (t2 == t1) t2 = (t1 + 7) % kTopics.size();
    p.topics = {kTopics[t1], kTopics[t2]};
    out.person_topics.push_back(p.topics);
    out.person_names.push_back(p.first + " " + p.last);
    persons.push_back(std::move(p));
  }

  int next_id = 0;
  auto add_record = [&](SourceKind source, uint32_t person_idx,
                        bool variant_name) {
    const Person& p = persons[person_idx];
    SourceRecord rec;
    rec.source = source;
    rec.native_id = std::string(SourceKindName(source)) + ":" +
                    std::to_string(next_id++);
    rec.timestamp = 1 + static_cast<int64_t>(rng.Uniform(1000));
    // Names: contacts carry full names; messages/calendar may carry
    // short variants.
    if (variant_name) {
      // Short first-name-only form when available ("Tim").
      std::string short_name = p.first.substr(0, 3);
      for (size_t i = 0; i < kFirstNames.size(); ++i) {
        if (p.first == kFirstNames[i] && i < kShortNameOf.size()) {
          short_name = kShortNameOf[i];
          break;
        }
      }
      rec.name = rng.Bernoulli(0.5) ? short_name : p.first;
    } else {
      rec.name = p.first + " " + p.last;
    }
    // Field availability differs by source: contacts know phone+email,
    // messages know phone, calendar knows email (the Fig-7 setup).
    switch (source) {
      case SourceKind::kContacts:
        rec.phone = FormatPhone(&rng, p.phone_digits);
        if (rng.Bernoulli(0.8)) rec.email = p.email;
        break;
      case SourceKind::kMessages:
        rec.phone = FormatPhone(&rng, p.phone_digits);
        for (const std::string& topic : p.topics) {
          if (rng.Bernoulli(0.8)) {
            rec.interactions.push_back("About the " + topic +
                                       ", let's sync tomorrow.");
          }
        }
        break;
      case SourceKind::kCalendar:
        rec.email = p.email;
        rec.interactions.push_back("Meeting: " + p.topics[0]);
        break;
    }
    out.records.push_back(std::move(rec));
    out.truth.push_back(person_idx);
  };

  for (uint32_t i = 0; i < out.num_persons; ++i) {
    if (rng.Bernoulli(config.contacts_rate)) {
      add_record(SourceKind::kContacts, i, false);
      if (rng.Bernoulli(config.duplicate_rate)) {
        add_record(SourceKind::kContacts, i,
                   rng.Bernoulli(config.name_variant_rate));
      }
    }
    if (rng.Bernoulli(config.messages_rate)) {
      add_record(SourceKind::kMessages, i,
                 rng.Bernoulli(config.name_variant_rate));
      if (rng.Bernoulli(config.duplicate_rate)) {
        add_record(SourceKind::kMessages, i,
                   rng.Bernoulli(config.name_variant_rate));
      }
    }
    if (rng.Bernoulli(config.calendar_rate)) {
      add_record(SourceKind::kCalendar, i,
                 rng.Bernoulli(config.name_variant_rate));
    }
  }
  return out;
}

}  // namespace saga::ondevice
