#ifndef SAGA_ONDEVICE_DEVICE_DATA_GENERATOR_H_
#define SAGA_ONDEVICE_DEVICE_DATA_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "ondevice/source_record.h"

namespace saga::ondevice {

struct DeviceDataConfig {
  uint64_t seed = 99;
  int num_persons = 120;
  /// Probability a person appears in each source.
  double contacts_rate = 0.9;
  double messages_rate = 0.7;
  double calendar_rate = 0.5;
  /// Extra duplicate records per person per source (format variants).
  double duplicate_rate = 0.25;
  /// Probability a non-contact record uses a short/variant name
  /// ("Tim" instead of "Timothy Chen").
  double name_variant_rate = 0.5;
  /// Fraction of persons deliberately sharing a first name with
  /// someone else but distinct topics (the two-Tims scenario).
  double shared_first_name_rate = 0.1;
};

/// The synthetic "user data ecosystem": raw records from all sources
/// plus, for evaluation only, the true person behind each record.
struct DeviceDataset {
  std::vector<SourceRecord> records;
  /// truth[i] = ground-truth person index of records[i].
  std::vector<uint32_t> truth;
  size_t num_persons = 0;
  /// Per person: the conversation topics their interactions mention
  /// (context for the "message Tim about SIGMOD" resolution test).
  std::vector<std::vector<std::string>> person_topics;
  /// Per person: full ground-truth name.
  std::vector<std::string> person_names;
};

/// Generates overlapping multi-source person records with format
/// variation, duplicates, and name ambiguity (§5 "Personal KG
/// Construction" motivating example).
DeviceDataset GenerateDeviceData(const DeviceDataConfig& config);

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_DEVICE_DATA_GENERATOR_H_
