#ifndef SAGA_ONDEVICE_PERSONAL_KG_H_
#define SAGA_ONDEVICE_PERSONAL_KG_H_

#include <string>
#include <string_view>
#include <vector>

#include "ondevice/fusion.h"
#include "text/hashing_vectorizer.h"

namespace saga::ondevice {

/// The on-device personal knowledge graph: fused Person entities plus
/// contextual reference resolution ("message Tim that I've added
/// comments to the SIGMOD draft" — rank the coworker Tim above other
/// Tims, §5 Semantic Annotation).
class PersonalKg {
 public:
  struct ResolvedReference {
    uint32_t person = 0;  // index into persons()
    double score = 0.0;
    double name_score = 0.0;
    double context_score = 0.0;
  };

  explicit PersonalKg(std::vector<FusedPerson> persons);

  const std::vector<FusedPerson>& persons() const { return persons_; }

  /// Persons matching the name reference, ranked by name similarity
  /// blended with context similarity against each person's interaction
  /// history. `context` may be empty (name-only ranking).
  std::vector<ResolvedReference> ResolveReference(
      std::string_view name, std::string_view context,
      size_t k = 5) const;

 private:
  std::vector<FusedPerson> persons_;
  text::HashingVectorizer vectorizer_;
  std::vector<std::vector<float>> interaction_vecs_;
};

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_PERSONAL_KG_H_
