#include "ondevice/blocking.h"

#include <algorithm>
#include <set>

#include "storage/external_sorter.h"
#include "text/tokenizer.h"

namespace saga::ondevice {

Blocker::Blocker(Options options) : options_(std::move(options)) {}

std::vector<std::string> Blocker::KeysFor(const SourceRecord& record) {
  std::set<std::string> keys;
  const std::string phone = NormalizePhone(record.phone);
  if (!phone.empty()) keys.insert("p:" + phone);
  if (!record.email.empty()) {
    std::string email = record.email;
    for (char& c : email) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    keys.insert("e:" + email);
  }
  // Name-token prefixes catch "Tim" vs "Timothy".
  for (const text::Token& t : text::Tokenize(record.name)) {
    if (t.text.size() >= 3) {
      keys.insert("n:" + t.text.substr(0, 3));
    }
  }
  return std::vector<std::string>(keys.begin(), keys.end());
}

Result<std::vector<CandidatePair>> Blocker::CandidatePairs(
    const std::vector<SourceRecord>& records) {
  storage::ExternalSorter::Options sorter_opts;
  sorter_opts.memory_budget_bytes = options_.memory_budget_bytes;
  sorter_opts.spill_dir = options_.spill_dir;
  storage::ExternalSorter sorter(sorter_opts);

  for (uint32_t i = 0; i < records.size(); ++i) {
    for (const std::string& key : KeysFor(records[i])) {
      char value[4];
      value[0] = static_cast<char>(i & 0xFF);
      value[1] = static_cast<char>((i >> 8) & 0xFF);
      value[2] = static_cast<char>((i >> 16) & 0xFF);
      value[3] = static_cast<char>((i >> 24) & 0xFF);
      SAGA_RETURN_IF_ERROR(sorter.Add(key, std::string_view(value, 4)));
      ++stats_.keys_emitted;
    }
  }

  SAGA_ASSIGN_OR_RETURN(auto it, sorter.Sort());
  std::set<CandidatePair> pairs;
  std::string current_key;
  std::vector<uint32_t> block;
  auto flush_block = [&]() {
    if (block.empty()) return;
    ++stats_.blocks;
    if (block.size() > options_.max_block_size) {
      ++stats_.oversize_blocks_skipped;
      block.clear();
      return;
    }
    std::sort(block.begin(), block.end());
    for (size_t a = 0; a < block.size(); ++a) {
      for (size_t b = a + 1; b < block.size(); ++b) {
        if (block[a] != block[b]) pairs.emplace(block[a], block[b]);
      }
    }
    block.clear();
  };
  while (it->Valid()) {
    const auto& rec = it->Current();
    if (rec.key != current_key) {
      flush_block();
      current_key = rec.key;
    }
    const unsigned char* v =
        reinterpret_cast<const unsigned char*>(rec.value.data());
    block.push_back(static_cast<uint32_t>(v[0]) |
                    (static_cast<uint32_t>(v[1]) << 8) |
                    (static_cast<uint32_t>(v[2]) << 16) |
                    (static_cast<uint32_t>(v[3]) << 24));
    SAGA_RETURN_IF_ERROR(it->Next());
  }
  flush_block();

  stats_.runs_spilled = sorter.runs_spilled();
  stats_.bytes_spilled = sorter.bytes_spilled();
  stats_.peak_buffer_bytes = sorter.peak_buffer_bytes();
  stats_.pairs = pairs.size();
  return std::vector<CandidatePair>(pairs.begin(), pairs.end());
}

}  // namespace saga::ondevice
