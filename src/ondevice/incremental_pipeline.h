#ifndef SAGA_ONDEVICE_INCREMENTAL_PIPELINE_H_
#define SAGA_ONDEVICE_INCREMENTAL_PIPELINE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "ondevice/fusion.h"
#include "ondevice/matcher.h"
#include "ondevice/source_record.h"

namespace saga::ondevice {

/// Incremental continuous construction pipeline (§5 Privacy: "can be
/// paused and resumed at any point without losing state, allowing
/// deferral ... in favor of any higher priority task").
///
/// Work proceeds in fine-grained units — ingest one record, expand one
/// block, score one candidate pair — so RunSteps(n) bounds how long the
/// pipeline holds the CPU. Checkpoint() serializes the full
/// intermediate state; Restore() resumes an identical pipeline, even in
/// a new process.
class IncrementalPipeline {
 public:
  enum class Stage : uint8_t {
    kIngest = 0,
    kBlock = 1,
    kMatch = 2,
    kFuse = 3,
    kDone = 4,
  };

  struct Options {
    EntityMatcher::Options matcher;
    /// Oversize-block guard, as in Blocker.
    size_t max_block_size = 64;
  };

  IncrementalPipeline(const std::vector<SourceRecord>* records,
                      Options options);

  /// Executes up to `max_steps` work units; returns how many ran
  /// (0 once done). Never loses progress between calls.
  size_t RunSteps(size_t max_steps);

  bool done() const { return stage_ == Stage::kDone; }
  Stage stage() const { return stage_; }
  size_t steps_executed() const { return steps_executed_; }

  /// Approximate bytes of intermediate state currently held.
  size_t ApproxStateBytes() const;
  size_t peak_state_bytes() const { return peak_state_bytes_; }

  /// Valid once done().
  const std::vector<uint32_t>& clusters() const { return clusters_; }
  std::vector<FusedPerson> FusedPersons() const;

  /// Serializes all intermediate state (not the input records, which
  /// the caller re-supplies on Restore).
  std::string Checkpoint() const;
  static Result<IncrementalPipeline> Restore(
      const std::vector<SourceRecord>* records, Options options,
      std::string_view checkpoint);

 private:
  void StepIngest();
  void StepBlock();
  void StepMatch();
  void StepFuse();
  void TrackPeak();

  const std::vector<SourceRecord>* records_;
  Options options_;
  Stage stage_ = Stage::kIngest;
  size_t steps_executed_ = 0;
  size_t peak_state_bytes_ = 0;

  // kIngest state.
  uint32_t ingest_pos_ = 0;
  std::map<std::string, std::vector<uint32_t>> postings_;

  // kBlock state.
  std::vector<std::string> block_keys_;
  size_t block_pos_ = 0;
  std::set<CandidatePair> candidate_pairs_;

  // kMatch state.
  std::vector<CandidatePair> pair_list_;
  size_t pair_pos_ = 0;
  std::vector<CandidatePair> matches_;

  // kFuse state.
  std::vector<uint32_t> clusters_;
};

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_INCREMENTAL_PIPELINE_H_
