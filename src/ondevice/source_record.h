#ifndef SAGA_ONDEVICE_SOURCE_RECORD_H_
#define SAGA_ONDEVICE_SOURCE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/serialization.h"
#include "common/status.h"

namespace saga::ondevice {

/// On-device data sources providing overlapping Person information
/// (§5, Fig 7: contact lists, message senders, calendar invitees).
enum class SourceKind : uint8_t {
  kContacts = 0,
  kMessages = 1,
  kCalendar = 2,
};

constexpr int kNumSourceKinds = 3;

std::string_view SourceKindName(SourceKind kind);

/// One raw record from one source, in that source's native format and
/// namespace. Different sources describe the same person differently.
struct SourceRecord {
  SourceKind source = SourceKind::kContacts;
  /// Unique within (source): e.g. "contacts:17".
  std::string native_id;
  std::string name;   // display name as the source renders it
  std::string phone;  // possibly formatted, possibly empty
  std::string email;  // possibly empty
  /// Associated free text (message bodies, event titles) — the context
  /// signal for on-device semantic annotation ("the Tim who talks
  /// about SIGMOD").
  std::vector<std::string> interactions;
  int64_t timestamp = 0;

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, SourceRecord* out);
};

/// Canonical digits-only phone form ("(555) 010-0199" -> "5550100199").
std::string NormalizePhone(std::string_view phone);

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_SOURCE_RECORD_H_
