#include "ondevice/enrichment.h"

#include <algorithm>
#include <cmath>

namespace saga::ondevice {

StaticKnowledgeAsset StaticKnowledgeAsset::Build(
    const kg::KnowledgeGraph& kg, Options options) {
  StaticKnowledgeAsset asset;
  asset.options_ = options;
  asset.Refresh(kg);
  return asset;
}

void StaticKnowledgeAsset::Refresh(const kg::KnowledgeGraph& kg) {
  facts_.clear();
  num_facts_ = 0;
  ++version_;

  // Top-k entities by popularity.
  std::vector<std::pair<double, kg::EntityId>> ranked;
  ranked.reserve(kg.catalog().size());
  for (const auto& rec : kg.catalog().records()) {
    ranked.emplace_back(rec.popularity, rec.id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const size_t k = std::min(options_.top_k_entities, ranked.size());
  for (size_t i = 0; i < k; ++i) {
    const kg::EntityId id = ranked[i].second;
    std::vector<kg::Triple>& facts = facts_[id];
    for (kg::TripleIdx idx : kg.triples().BySubject(id)) {
      if (facts.size() >= options_.max_facts_per_entity) break;
      facts.push_back(kg.triples().triple(idx));
    }
    num_facts_ += facts.size();
  }
}

void StaticKnowledgeAsset::ApplyDelta(
    const kg::KnowledgeGraph& kg, const std::vector<kg::TripleIdx>& added) {
  bool changed = false;
  for (kg::TripleIdx idx : added) {
    if (!kg.triples().IsLive(idx)) continue;
    const kg::Triple& t = kg.triples().triple(idx);
    auto it = facts_.find(t.subject);
    if (it == facts_.end()) continue;  // not a member
    if (it->second.size() >= options_.max_facts_per_entity) continue;
    it->second.push_back(t);
    ++num_facts_;
    changed = true;
  }
  if (changed) ++version_;
}

const std::vector<kg::Triple>& StaticKnowledgeAsset::FactsFor(
    kg::EntityId id) const {
  auto it = facts_.find(id);
  return it == facts_.end() ? empty_ : it->second;
}

size_t StaticKnowledgeAsset::EstimatedBytes() const {
  // ~24 bytes of ids + value payload estimate per fact.
  return num_facts_ * 48 + facts_.size() * 16;
}

std::vector<kg::Triple> PiggybackEnrich(const kg::KnowledgeGraph& kg,
                                        kg::EntityId entity,
                                        size_t max_facts) {
  std::vector<kg::Triple> out;
  for (kg::TripleIdx idx : kg.triples().BySubject(entity)) {
    if (out.size() >= max_facts) break;
    out.push_back(kg.triples().triple(idx));
  }
  return out;
}

DpCounter::DpCounter(double epsilon_per_query, double epsilon_budget,
                     uint64_t seed)
    : epsilon_(epsilon_per_query), budget_(epsilon_budget), rng_(seed) {}

double DpCounter::NoisyCount(double true_count) {
  if (budget_exhausted()) return -1.0;
  spent_ += epsilon_;
  // Laplace(scale = 1/epsilon) via inverse CDF.
  const double u = rng_.NextDouble() - 0.5;
  const double scale = 1.0 / epsilon_;
  const double noise = (u < 0 ? 1.0 : -1.0) * scale *
                       std::log(1.0 - 2.0 * std::abs(u));
  return true_count + noise;
}

PirServer::PirServer(const kg::KnowledgeGraph* kg) : kg_(kg) {}

PirServer::FetchResult PirServer::Fetch(kg::EntityId id) const {
  FetchResult result;
  // Information-theoretic PIR lower bound: the server reads every cell
  // so access patterns reveal nothing.
  result.cells_scanned = kg_->num_entities();
  for (kg::TripleIdx idx : kg_->triples().BySubject(id)) {
    result.facts.push_back(kg_->triples().triple(idx));
  }
  result.bytes_transferred =
      result.facts.size() * 48 +
      static_cast<uint64_t>(
          std::ceil(std::sqrt(static_cast<double>(result.cells_scanned)))) *
          32;  // sqrt(N) communication, as in basic 2-server schemes
  return result;
}

PirServer::FetchResult PirServer::DirectFetch(kg::EntityId id) const {
  FetchResult result;
  result.cells_scanned = 1;
  for (kg::TripleIdx idx : kg_->triples().BySubject(id)) {
    result.facts.push_back(kg_->triples().triple(idx));
  }
  result.bytes_transferred = result.facts.size() * 48;
  return result;
}

}  // namespace saga::ondevice
