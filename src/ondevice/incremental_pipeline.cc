#include "ondevice/incremental_pipeline.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/serialization.h"
#include "common/trace.h"
#include "ondevice/blocking.h"

namespace saga::ondevice {

IncrementalPipeline::IncrementalPipeline(
    const std::vector<SourceRecord>* records, Options options)
    : records_(records), options_(options) {
  if (records_->empty()) stage_ = Stage::kDone;
}

void IncrementalPipeline::TrackPeak() {
  peak_state_bytes_ = std::max(peak_state_bytes_, ApproxStateBytes());
}

size_t IncrementalPipeline::ApproxStateBytes() const {
  size_t bytes = 0;
  for (const auto& [key, posting] : postings_) {
    bytes += key.size() + posting.size() * 4 + 48;
  }
  bytes += candidate_pairs_.size() * 40;
  bytes += pair_list_.size() * 8;
  bytes += matches_.size() * 8;
  bytes += clusters_.size() * 4;
  return bytes;
}

namespace {
const char* StageSpanName(IncrementalPipeline::Stage stage) {
  switch (stage) {
    case IncrementalPipeline::Stage::kIngest:
      return "ondevice.pipeline.ingest";
    case IncrementalPipeline::Stage::kBlock:
      return "ondevice.pipeline.block";
    case IncrementalPipeline::Stage::kMatch:
      return "ondevice.pipeline.match";
    case IncrementalPipeline::Stage::kFuse:
      return "ondevice.pipeline.fuse";
    case IncrementalPipeline::Stage::kDone:
      break;
  }
  return "ondevice.pipeline.done";
}
}  // namespace

size_t IncrementalPipeline::RunSteps(size_t max_steps) {
  obs::ScopedSpan call_span("ondevice.pipeline.run_steps");
  size_t executed = 0;
  // Work units are fine-grained (one record / one pair), so spans wrap
  // each contiguous run of a stage within this call, not each step.
  while (executed < max_steps && stage_ != Stage::kDone) {
    const Stage current = stage_;
    obs::ScopedSpan stage_span(StageSpanName(current));
    while (executed < max_steps && stage_ == current) {
      switch (stage_) {
        case Stage::kIngest:
          StepIngest();
          break;
        case Stage::kBlock:
          StepBlock();
          break;
        case Stage::kMatch:
          StepMatch();
          break;
        case Stage::kFuse:
          StepFuse();
          break;
        case Stage::kDone:
          break;
      }
      ++executed;
      ++steps_executed_;
      TrackPeak();
    }
  }
  SAGA_COUNTER("ondevice.pipeline.steps").Add(static_cast<int64_t>(executed));
  SAGA_GAUGE("ondevice.pipeline.state_bytes")
      .Set(static_cast<double>(ApproxStateBytes()));
  return executed;
}

void IncrementalPipeline::StepIngest() {
  const SourceRecord& rec = (*records_)[ingest_pos_];
  for (const std::string& key : Blocker::KeysFor(rec)) {
    postings_[key].push_back(ingest_pos_);
  }
  ++ingest_pos_;
  if (ingest_pos_ >= records_->size()) {
    block_keys_.reserve(postings_.size());
    for (const auto& [key, _] : postings_) block_keys_.push_back(key);
    stage_ = Stage::kBlock;
  }
}

void IncrementalPipeline::StepBlock() {
  if (block_pos_ < block_keys_.size()) {
    const std::vector<uint32_t>& block = postings_[block_keys_[block_pos_]];
    if (block.size() <= options_.max_block_size) {
      for (size_t a = 0; a < block.size(); ++a) {
        for (size_t b = a + 1; b < block.size(); ++b) {
          candidate_pairs_.emplace(std::min(block[a], block[b]),
                                   std::max(block[a], block[b]));
        }
      }
    }
    ++block_pos_;
  }
  if (block_pos_ >= block_keys_.size()) {
    pair_list_.assign(candidate_pairs_.begin(), candidate_pairs_.end());
    candidate_pairs_.clear();
    postings_.clear();  // bounded memory: drop stage inputs when done
    stage_ = Stage::kMatch;
  }
}

void IncrementalPipeline::StepMatch() {
  if (pair_pos_ < pair_list_.size()) {
    const auto& [i, j] = pair_list_[pair_pos_];
    EntityMatcher matcher(options_.matcher);
    if (matcher.Matches((*records_)[i], (*records_)[j])) {
      matches_.emplace_back(i, j);
    }
    ++pair_pos_;
  }
  if (pair_pos_ >= pair_list_.size()) {
    stage_ = Stage::kFuse;
  }
}

void IncrementalPipeline::StepFuse() {
  clusters_ = ClusterMatches(records_->size(), matches_);
  stage_ = Stage::kDone;
}

std::vector<FusedPerson> IncrementalPipeline::FusedPersons() const {
  return FuseClusters(*records_, clusters_);
}

std::string IncrementalPipeline::Checkpoint() const {
  std::string out;
  BinaryWriter w(&out);
  w.PutU8(static_cast<uint8_t>(stage_));
  w.PutVarint64(steps_executed_);
  w.PutVarint64(peak_state_bytes_);
  w.PutVarint64(ingest_pos_);
  w.PutVarint64(postings_.size());
  for (const auto& [key, posting] : postings_) {
    w.PutString(key);
    w.PutVarint64(posting.size());
    for (uint32_t idx : posting) w.PutVarint64(idx);
  }
  w.PutVarint64(block_keys_.size());
  for (const auto& key : block_keys_) w.PutString(key);
  w.PutVarint64(block_pos_);
  w.PutVarint64(candidate_pairs_.size());
  for (const auto& [i, j] : candidate_pairs_) {
    w.PutVarint64(i);
    w.PutVarint64(j);
  }
  w.PutVarint64(pair_list_.size());
  for (const auto& [i, j] : pair_list_) {
    w.PutVarint64(i);
    w.PutVarint64(j);
  }
  w.PutVarint64(pair_pos_);
  w.PutVarint64(matches_.size());
  for (const auto& [i, j] : matches_) {
    w.PutVarint64(i);
    w.PutVarint64(j);
  }
  w.PutVarint64(clusters_.size());
  for (uint32_t c : clusters_) w.PutVarint64(c);
  return out;
}

Result<IncrementalPipeline> IncrementalPipeline::Restore(
    const std::vector<SourceRecord>* records, Options options,
    std::string_view checkpoint) {
  IncrementalPipeline p(records, options);
  BinaryReader r(checkpoint);
  uint8_t stage = 0;
  SAGA_RETURN_IF_ERROR(r.GetU8(&stage));
  if (stage > static_cast<uint8_t>(Stage::kDone)) {
    return Status::Corruption("bad pipeline stage");
  }
  p.stage_ = static_cast<Stage>(stage);
  uint64_t v = 0;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&v));
  p.steps_executed_ = v;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&v));
  p.peak_state_bytes_ = v;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&v));
  p.ingest_pos_ = static_cast<uint32_t>(v);

  uint64_t n = 0;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    SAGA_RETURN_IF_ERROR(r.GetString(&key));
    uint64_t m = 0;
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&m));
    std::vector<uint32_t>& posting = p.postings_[key];
    posting.resize(m);
    for (uint64_t j = 0; j < m; ++j) {
      SAGA_RETURN_IF_ERROR(r.GetVarint64(&v));
      posting[j] = static_cast<uint32_t>(v);
    }
  }
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  p.block_keys_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    SAGA_RETURN_IF_ERROR(r.GetString(&p.block_keys_[i]));
  }
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&v));
  p.block_pos_ = v;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t a = 0;
    uint64_t b = 0;
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&a));
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&b));
    p.candidate_pairs_.emplace(static_cast<uint32_t>(a),
                               static_cast<uint32_t>(b));
  }
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  p.pair_list_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t a = 0;
    uint64_t b = 0;
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&a));
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&b));
    p.pair_list_[i] = {static_cast<uint32_t>(a), static_cast<uint32_t>(b)};
  }
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&v));
  p.pair_pos_ = v;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  p.matches_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t a = 0;
    uint64_t b = 0;
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&a));
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&b));
    p.matches_[i] = {static_cast<uint32_t>(a), static_cast<uint32_t>(b)};
  }
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&n));
  p.clusters_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    SAGA_RETURN_IF_ERROR(r.GetVarint64(&v));
    p.clusters_[i] = static_cast<uint32_t>(v);
  }
  return p;
}

}  // namespace saga::ondevice
