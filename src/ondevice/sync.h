#ifndef SAGA_ONDEVICE_SYNC_H_
#define SAGA_ONDEVICE_SYNC_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "ondevice/fusion.h"
#include "ondevice/source_record.h"

namespace saga::ondevice {

/// Per-device configuration: which sources it hosts, which it syncs,
/// and how much compute it has (laptop vs watch; §5 Sync).
struct DeviceConfig {
  std::string id;
  double compute_power = 1.0;
  /// Sources whose records originate on this device.
  std::array<bool, kNumSourceKinds> has_source{};
  /// Per-source sync preference: share + accept records of this source.
  std::array<bool, kNumSourceKinds> sync_enabled{};
};

/// Deletion marker replicated alongside records so removals win over
/// stale re-introductions (LWW with tombstones).
struct Tombstone {
  SourceKind source = SourceKind::kContacts;
  int64_t timestamp = 0;
};

/// One device's replica: locally hosted records plus records replicated
/// from peers, merged last-writer-wins by (native_id, timestamp).
class Device {
 public:
  explicit Device(DeviceConfig config) : config_(std::move(config)) {}

  const DeviceConfig& config() const { return config_; }

  void AddLocalRecord(SourceRecord rec);

  /// Deletes a record (locally or by a later sync) at `timestamp`;
  /// the tombstone replicates to peers that sync the source.
  void DeleteRecord(const std::string& native_id, SourceKind source,
                    int64_t timestamp);

  /// LWW merge of a replicated record; returns true if state changed.
  /// Records older than a matching tombstone are suppressed.
  bool ApplyRemote(const SourceRecord& rec);

  /// Merges a replicated tombstone; returns true if state changed.
  bool ApplyRemoteTombstone(const std::string& native_id,
                            const Tombstone& tombstone);

  const std::map<std::string, Tombstone>& tombstones() const {
    return tombstones_;
  }

  /// All records visible on this device, in native_id order.
  std::vector<SourceRecord> VisibleRecords() const;

  /// Records of one source, in native_id order (for consistency
  /// checks).
  std::vector<SourceRecord> RecordsOfSource(SourceKind source) const;

  /// Fused persons, locally computed or adopted from an offload.
  const std::vector<FusedPerson>& fused() const { return fused_; }
  void SetFused(std::vector<FusedPerson> fused) { fused_ = std::move(fused); }

 private:
  DeviceConfig config_;
  std::map<std::string, SourceRecord> records_;  // by native_id
  std::map<std::string, Tombstone> tombstones_;  // by native_id
  std::vector<FusedPerson> fused_;
};

struct SyncStats {
  size_t records_sent = 0;
  uint64_t bytes_sent = 0;
  int rounds = 0;
};

/// Pairwise anti-entropy sync: each round, every device sends records
/// of its sync-enabled sources to every peer that also syncs that
/// source; repeats until no state changes. Unsynced sources never
/// leave their device.
class SyncService {
 public:
  SyncStats SyncAll(std::vector<Device>* devices) const;

  /// True when every pair of devices that both sync `source` holds the
  /// same record set for it.
  static bool SourcesConsistent(const std::vector<Device>& devices,
                                SourceKind source);
};

struct OffloadStats {
  std::string compute_device;
  uint64_t bytes_shipped = 0;
  size_t persons_shipped = 0;
};

/// Computation offload (§5): the most powerful device runs entity
/// matching + fusion over its visible records and ships the fused
/// result to every other device, which adopts it instead of running
/// the expensive pipeline locally.
OffloadStats OffloadFusion(std::vector<Device>* devices,
                           const std::string& spill_dir);

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_SYNC_H_
