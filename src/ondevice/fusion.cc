#include "ondevice/fusion.h"

#include <algorithm>
#include <map>

namespace saga::ondevice {

std::vector<FusedPerson> FuseClusters(
    const std::vector<SourceRecord>& records,
    const std::vector<uint32_t>& cluster_of) {
  std::map<uint32_t, FusedPerson> by_cluster;
  for (size_t i = 0; i < records.size(); ++i) {
    const SourceRecord& rec = records[i];
    FusedPerson& person = by_cluster[cluster_of[i]];
    person.cluster = cluster_of[i];
    if (!rec.name.empty()) {
      person.names.insert(rec.name);
      if (rec.name.size() > person.display_name.size()) {
        person.display_name = rec.name;
      }
    }
    const std::string phone = NormalizePhone(rec.phone);
    if (!phone.empty()) person.phones.insert(phone);
    if (!rec.email.empty()) person.emails.insert(rec.email);
    person.interactions.insert(person.interactions.end(),
                               rec.interactions.begin(),
                               rec.interactions.end());
    person.provenance.push_back(rec.native_id);
  }
  std::vector<FusedPerson> out;
  out.reserve(by_cluster.size());
  for (auto& [cluster, person] : by_cluster) {
    out.push_back(std::move(person));
  }
  return out;
}

}  // namespace saga::ondevice
