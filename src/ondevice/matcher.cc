#include "ondevice/matcher.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace saga::ondevice {

EntityMatcher::EntityMatcher() : EntityMatcher(Options()) {}

EntityMatcher::EntityMatcher(Options options) : options_(options) {}

namespace {

/// Name similarity robust to "Tim" vs "Timothy Chen": max over
/// Jaro-Winkler of full strings and best token-prefix containment.
double NameSimilarity(const std::string& a, const std::string& b) {
  const std::string la = text::NormalizedTokenString(a);
  const std::string lb = text::NormalizedTokenString(b);
  if (la.empty() || lb.empty()) return 0.0;
  double best = text::JaroWinkler(la, lb);
  const auto ta = text::Tokenize(la);
  const auto tb = text::Tokenize(lb);
  for (const auto& x : ta) {
    for (const auto& y : tb) {
      const auto& shorter = x.text.size() <= y.text.size() ? x.text : y.text;
      const auto& longer = x.text.size() <= y.text.size() ? y.text : x.text;
      if (shorter.size() >= 3 && longer.rfind(shorter, 0) == 0) {
        // Prefix containment ("tim" ⊑ "timothy"), discounted by how
        // much of the longer token is covered.
        const double coverage = static_cast<double>(shorter.size()) /
                                static_cast<double>(longer.size());
        best = std::max(best, 0.75 + 0.25 * coverage);
      }
      best = std::max(best, text::JaroWinkler(x.text, y.text) * 0.9);
    }
  }
  return best;
}

}  // namespace

double EntityMatcher::Score(const SourceRecord& a,
                            const SourceRecord& b) const {
  double score = 0.0;
  const std::string pa = NormalizePhone(a.phone);
  const std::string pb = NormalizePhone(b.phone);
  if (!pa.empty() && pa == pb) score += options_.phone_weight;
  if (!a.email.empty() &&
      text::NormalizedTokenString(a.email) ==
          text::NormalizedTokenString(b.email)) {
    score += options_.email_weight;
  }
  const double name_sim = NameSimilarity(a.name, b.name);
  // Names alone are weak evidence; they mostly boost records already
  // sharing an identifier. A strong identifier + plausible name passes
  // the threshold; name-only pairs need near-identical names.
  if (name_sim > 0.6) {
    score += options_.name_weight * (name_sim - 0.6) / 0.4;
  } else if (score > 0.0 && name_sim < 0.3) {
    // Identifier collision with clearly different names: dampen.
    score *= 0.8;
  }
  return score;
}

std::vector<CandidatePair> EntityMatcher::MatchPairs(
    const std::vector<SourceRecord>& records,
    const std::vector<CandidatePair>& candidates) const {
  std::vector<CandidatePair> matches;
  for (const auto& [i, j] : candidates) {
    if (Matches(records[i], records[j])) matches.emplace_back(i, j);
  }
  return matches;
}

std::vector<uint32_t> ClusterMatches(
    size_t num_records, const std::vector<CandidatePair>& matches) {
  std::vector<uint32_t> parent(num_records);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [i, j] : matches) {
    const uint32_t ri = find(i);
    const uint32_t rj = find(j);
    if (ri != rj) parent[std::max(ri, rj)] = std::min(ri, rj);
  }
  // Densify cluster ids.
  std::map<uint32_t, uint32_t> dense;
  std::vector<uint32_t> out(num_records);
  for (uint32_t i = 0; i < num_records; ++i) {
    const uint32_t root = find(i);
    auto [it, inserted] =
        dense.emplace(root, static_cast<uint32_t>(dense.size()));
    out[i] = it->second;
  }
  return out;
}

ClusterQuality EvaluateClustering(const std::vector<uint32_t>& predicted,
                                  const std::vector<uint32_t>& truth) {
  ClusterQuality q;
  const size_t n = std::min(predicted.size(), truth.size());
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t fn = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool same_pred = predicted[i] == predicted[j];
      const bool same_true = truth[i] == truth[j];
      if (same_pred && same_true) ++tp;
      else if (same_pred && !same_true) ++fp;
      else if (!same_pred && same_true) ++fn;
    }
  }
  q.precision = tp + fp == 0 ? 1.0
                             : static_cast<double>(tp) /
                                   static_cast<double>(tp + fp);
  q.recall = tp + fn == 0 ? 1.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fn);
  q.f1 = (q.precision + q.recall) == 0.0
             ? 0.0
             : 2.0 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

}  // namespace saga::ondevice
