#include "ondevice/personal_kg.h"

#include <algorithm>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace saga::ondevice {

PersonalKg::PersonalKg(std::vector<FusedPerson> persons)
    : persons_(std::move(persons)) {
  interaction_vecs_.reserve(persons_.size());
  for (const FusedPerson& p : persons_) {
    std::string all;
    for (const std::string& s : p.interactions) {
      all += s;
      all += " ";
    }
    interaction_vecs_.push_back(vectorizer_.Embed(all));
  }
}

std::vector<PersonalKg::ResolvedReference> PersonalKg::ResolveReference(
    std::string_view name, std::string_view context, size_t k) const {
  const std::string query_name =
      text::NormalizedTokenString(std::string(name));
  const std::vector<float> context_vec =
      context.empty() ? std::vector<float>()
                      : vectorizer_.Embed(context);

  std::vector<ResolvedReference> out;
  for (uint32_t i = 0; i < persons_.size(); ++i) {
    double name_score = 0.0;
    for (const std::string& pname : persons_[i].names) {
      const std::string norm = text::NormalizedTokenString(pname);
      name_score = std::max(name_score, text::JaroWinkler(query_name, norm));
      // Prefix containment: "tim" refers to "timothy chen".
      for (const text::Token& t : text::Tokenize(norm)) {
        if (query_name.size() >= 3 && t.text.rfind(query_name, 0) == 0) {
          name_score = std::max(name_score, 0.9);
        }
      }
    }
    if (name_score < 0.6) continue;
    ResolvedReference ref;
    ref.person = i;
    ref.name_score = name_score;
    if (!context_vec.empty()) {
      ref.context_score = text::HashingVectorizer::Cosine(
          context_vec, interaction_vecs_[i]);
    }
    ref.score = name_score + 1.5 * ref.context_score;
    out.push_back(ref);
  }
  std::sort(out.begin(), out.end(),
            [](const ResolvedReference& a, const ResolvedReference& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.person < b.person;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace saga::ondevice
