#ifndef SAGA_ONDEVICE_BLOCKING_H_
#define SAGA_ONDEVICE_BLOCKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ondevice/source_record.h"

namespace saga::ondevice {

/// Candidate pair of record indexes (i < j).
using CandidatePair = std::pair<uint32_t, uint32_t>;

/// Key-based blocking for entity matching: records sharing a normalized
/// phone, an email, or a name-token key become candidate pairs, so the
/// matcher scores O(candidates) instead of O(n^2) (§5 resource
/// constraints; "pairwise blocking ... spills to disk as necessary").
class Blocker {
 public:
  struct Options {
    /// Memory budget for the key-sort; small budgets spill runs to
    /// disk via ExternalSorter.
    size_t memory_budget_bytes = 1 << 20;
    std::string spill_dir;  // required when spilling possible
    /// Skip blocks larger than this (stop-word names like "Tim" alone
    /// would otherwise explode quadratically).
    size_t max_block_size = 64;
  };

  struct Stats {
    size_t keys_emitted = 0;
    size_t blocks = 0;
    size_t oversize_blocks_skipped = 0;
    size_t pairs = 0;
    size_t runs_spilled = 0;
    uint64_t bytes_spilled = 0;
    /// Largest in-memory sort buffer actually held (<= budget + one
    /// record of slack).
    size_t peak_buffer_bytes = 0;
  };

  explicit Blocker(Options options);

  /// Blocking keys of one record (deduplicated).
  static std::vector<std::string> KeysFor(const SourceRecord& record);

  /// All candidate pairs across the records, deduplicated, via a
  /// bounded-memory sort-merge over (key, record) pairs.
  Result<std::vector<CandidatePair>> CandidatePairs(
      const std::vector<SourceRecord>& records);

  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  Stats stats_;
};

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_BLOCKING_H_
