#ifndef SAGA_ONDEVICE_FUSION_H_
#define SAGA_ONDEVICE_FUSION_H_

#include <set>
#include <string>
#include <vector>

#include "ondevice/source_record.h"

namespace saga::ondevice {

/// A consolidated Person entity fused from one record cluster: the
/// unified representation Fig 7 shows, with attributes merged across
/// sources and provenance back to each native record.
struct FusedPerson {
  uint32_t cluster = 0;
  std::string display_name;
  std::set<std::string> names;
  std::set<std::string> phones;  // normalized
  std::set<std::string> emails;
  std::vector<std::string> interactions;
  /// Native ids of all merged records (provenance).
  std::vector<std::string> provenance;
};

/// Merges record clusters into fused persons. Display name = the
/// longest name seen (most complete form).
std::vector<FusedPerson> FuseClusters(
    const std::vector<SourceRecord>& records,
    const std::vector<uint32_t>& cluster_of);

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_FUSION_H_
