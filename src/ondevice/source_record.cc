#include "ondevice/source_record.h"

#include <cctype>

namespace saga::ondevice {

std::string_view SourceKindName(SourceKind kind) {
  switch (kind) {
    case SourceKind::kContacts:
      return "contacts";
    case SourceKind::kMessages:
      return "messages";
    case SourceKind::kCalendar:
      return "calendar";
  }
  return "?";
}

std::string NormalizePhone(std::string_view phone) {
  std::string digits;
  for (char c : phone) {
    if (std::isdigit(static_cast<unsigned char>(c))) digits.push_back(c);
  }
  // Strip a leading country code "1" from 11-digit numbers so "+1 555
  // 010 0199" and "(555) 010-0199" normalize identically.
  if (digits.size() == 11 && digits[0] == '1') digits.erase(0, 1);
  return digits;
}

void SourceRecord::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(source));
  w->PutString(native_id);
  w->PutString(name);
  w->PutString(phone);
  w->PutString(email);
  w->PutVarint64(interactions.size());
  for (const auto& s : interactions) w->PutString(s);
  w->PutVarint64Signed(timestamp);
}

Status SourceRecord::Deserialize(BinaryReader* r, SourceRecord* out) {
  uint8_t kind = 0;
  SAGA_RETURN_IF_ERROR(r->GetU8(&kind));
  if (kind >= kNumSourceKinds) {
    return Status::Corruption("bad source kind");
  }
  out->source = static_cast<SourceKind>(kind);
  SAGA_RETURN_IF_ERROR(r->GetString(&out->native_id));
  SAGA_RETURN_IF_ERROR(r->GetString(&out->name));
  SAGA_RETURN_IF_ERROR(r->GetString(&out->phone));
  SAGA_RETURN_IF_ERROR(r->GetString(&out->email));
  uint64_t n = 0;
  SAGA_RETURN_IF_ERROR(r->GetVarint64(&n));
  out->interactions.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    SAGA_RETURN_IF_ERROR(r->GetString(&out->interactions[i]));
  }
  SAGA_RETURN_IF_ERROR(r->GetVarint64Signed(&out->timestamp));
  return Status::OK();
}

}  // namespace saga::ondevice
