#ifndef SAGA_ONDEVICE_ENRICHMENT_H_
#define SAGA_ONDEVICE_ENRICHMENT_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "kg/knowledge_graph.h"

namespace saga::ondevice {

/// Global-knowledge enrichment path 1 (§5): a static asset of popular
/// entities and their facts, shipped to every device with no
/// client-side request (so it leaks nothing). Implemented as a
/// maintainable view over the global KG.
class StaticKnowledgeAsset {
 public:
  struct Options {
    size_t top_k_entities = 200;
    size_t max_facts_per_entity = 16;
  };

  static StaticKnowledgeAsset Build(const kg::KnowledgeGraph& kg,
                                    Options options);

  bool Contains(kg::EntityId id) const { return facts_.count(id) > 0; }
  const std::vector<kg::Triple>& FactsFor(kg::EntityId id) const;
  size_t num_entities() const { return facts_.size(); }
  size_t num_facts() const { return num_facts_; }
  /// Approximate shipped size.
  size_t EstimatedBytes() const;
  uint64_t version() const { return version_; }

  /// View maintenance: recomputes membership + facts as the global KG
  /// evolves; bumps the version so devices know to refetch.
  void Refresh(const kg::KnowledgeGraph& kg);

  /// Incremental maintenance for appended facts: new triples about
  /// member entities are folded in (respecting the per-entity cap)
  /// without recomputing membership. Bumps the version only when the
  /// asset actually changed. Membership changes (popularity shifts)
  /// still require Refresh().
  void ApplyDelta(const kg::KnowledgeGraph& kg,
                  const std::vector<kg::TripleIdx>& added);

 private:
  Options options_;
  std::unordered_map<kg::EntityId, std::vector<kg::Triple>> facts_;
  size_t num_facts_ = 0;
  uint64_t version_ = 0;
  std::vector<kg::Triple> empty_;
};

/// Path 2: piggy-back enrichment. A server interaction about `entity`
/// ("what's the score in the Blue Jays game?") carries back up to
/// `max_facts` general facts about it for free.
std::vector<kg::Triple> PiggybackEnrich(const kg::KnowledgeGraph& kg,
                                        kg::EntityId entity,
                                        size_t max_facts);

/// Path 3a: differentially private counting queries against server
/// knowledge (Laplace mechanism with an epsilon budget).
class DpCounter {
 public:
  DpCounter(double epsilon_per_query, double epsilon_budget, uint64_t seed);

  /// Laplace-noised count; fails closed (returns -1) once the privacy
  /// budget is exhausted.
  double NoisyCount(double true_count);

  double epsilon_spent() const { return spent_; }
  bool budget_exhausted() const { return spent_ >= budget_; }

 private:
  double epsilon_;
  double budget_;
  double spent_ = 0.0;
  Rng rng_;
};

/// Path 3b: private information retrieval cost simulator. A PIR fetch
/// returns the requested entity's facts but the server must touch
/// every database cell (that is what makes it private) — the cost the
/// paper calls "expensive ... for high-value use cases".
class PirServer {
 public:
  explicit PirServer(const kg::KnowledgeGraph* kg);

  struct FetchResult {
    std::vector<kg::Triple> facts;
    size_t cells_scanned = 0;      // = database size
    uint64_t bytes_transferred = 0;
  };

  FetchResult Fetch(kg::EntityId id) const;

  /// Non-private baseline for cost comparison: touches one cell.
  FetchResult DirectFetch(kg::EntityId id) const;

  size_t database_cells() const { return kg_->num_entities(); }

 private:
  const kg::KnowledgeGraph* kg_;
};

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_ENRICHMENT_H_
