#ifndef SAGA_ONDEVICE_MATCHER_H_
#define SAGA_ONDEVICE_MATCHER_H_

#include <vector>

#include "ondevice/blocking.h"
#include "ondevice/source_record.h"

namespace saga::ondevice {

/// Pairwise entity matching over candidate pairs: weighted feature
/// score (phone / email exact match, name similarity) with a decision
/// threshold, as in the "same phone number / same email / similar
/// names" linking example of §5.
class EntityMatcher {
 public:
  struct Options {
    double phone_weight = 0.55;
    double email_weight = 0.55;
    double name_weight = 0.45;
    double threshold = 0.5;
  };

  EntityMatcher();
  explicit EntityMatcher(Options options);

  /// Match score in [0, ~1.5]; >= threshold means "same person".
  double Score(const SourceRecord& a, const SourceRecord& b) const;

  bool Matches(const SourceRecord& a, const SourceRecord& b) const {
    return Score(a, b) >= options_.threshold;
  }

  /// Scores every candidate pair and keeps the matches.
  std::vector<CandidatePair> MatchPairs(
      const std::vector<SourceRecord>& records,
      const std::vector<CandidatePair>& candidates) const;

 private:
  Options options_;
};

/// Union-find clustering of matched pairs into person clusters.
/// Returns cluster id per record (cluster ids are dense from 0).
std::vector<uint32_t> ClusterMatches(size_t num_records,
                                     const std::vector<CandidatePair>& matches);

/// Pairwise precision/recall/F1 of predicted clusters vs truth labels.
struct ClusterQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
ClusterQuality EvaluateClustering(const std::vector<uint32_t>& predicted,
                                  const std::vector<uint32_t>& truth);

}  // namespace saga::ondevice

#endif  // SAGA_ONDEVICE_MATCHER_H_
