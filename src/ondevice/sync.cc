#include "ondevice/sync.h"

#include <algorithm>

#include "common/serialization.h"
#include "ondevice/blocking.h"
#include "ondevice/incremental_pipeline.h"

namespace saga::ondevice {

void Device::AddLocalRecord(SourceRecord rec) {
  records_[rec.native_id] = std::move(rec);
}

void Device::DeleteRecord(const std::string& native_id, SourceKind source,
                          int64_t timestamp) {
  auto existing = tombstones_.find(native_id);
  if (existing == tombstones_.end() ||
      existing->second.timestamp < timestamp) {
    tombstones_[native_id] = Tombstone{source, timestamp};
  }
  auto rec = records_.find(native_id);
  if (rec != records_.end() && rec->second.timestamp <= timestamp) {
    records_.erase(rec);
  }
}

bool Device::ApplyRemote(const SourceRecord& rec) {
  auto tomb = tombstones_.find(rec.native_id);
  if (tomb != tombstones_.end() &&
      tomb->second.timestamp >= rec.timestamp) {
    return false;  // deleted after this version was written
  }
  auto it = records_.find(rec.native_id);
  if (it == records_.end()) {
    records_.emplace(rec.native_id, rec);
    return true;
  }
  if (rec.timestamp > it->second.timestamp) {
    it->second = rec;
    return true;
  }
  return false;
}

bool Device::ApplyRemoteTombstone(const std::string& native_id,
                                  const Tombstone& tombstone) {
  auto existing = tombstones_.find(native_id);
  const bool tombstone_new =
      existing == tombstones_.end() ||
      existing->second.timestamp < tombstone.timestamp;
  if (tombstone_new) tombstones_[native_id] = tombstone;
  auto rec = records_.find(native_id);
  if (rec != records_.end() &&
      rec->second.timestamp <= tombstone.timestamp) {
    records_.erase(rec);
    return true;
  }
  return tombstone_new;
}

std::vector<SourceRecord> Device::VisibleRecords() const {
  std::vector<SourceRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  return out;
}

std::vector<SourceRecord> Device::RecordsOfSource(SourceKind source) const {
  std::vector<SourceRecord> out;
  for (const auto& [id, rec] : records_) {
    if (rec.source == source) out.push_back(rec);
  }
  return out;
}

namespace {
uint64_t RecordBytes(const SourceRecord& rec) {
  std::string buf;
  BinaryWriter w(&buf);
  rec.Serialize(&w);
  return buf.size();
}
}  // namespace

SyncStats SyncService::SyncAll(std::vector<Device>* devices) const {
  SyncStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.rounds;
    for (size_t a = 0; a < devices->size(); ++a) {
      for (size_t b = 0; b < devices->size(); ++b) {
        if (a == b) continue;
        Device& sender = (*devices)[a];
        Device& receiver = (*devices)[b];
        for (int s = 0; s < kNumSourceKinds; ++s) {
          const SourceKind source = static_cast<SourceKind>(s);
          // A source flows only when both sides opted into syncing it.
          if (!sender.config().sync_enabled[s] ||
              !receiver.config().sync_enabled[s]) {
            continue;
          }
          for (const SourceRecord& rec : sender.RecordsOfSource(source)) {
            if (receiver.ApplyRemote(rec)) {
              ++stats.records_sent;
              stats.bytes_sent += RecordBytes(rec);
              changed = true;
            }
          }
          for (const auto& [native_id, tombstone] : sender.tombstones()) {
            if (tombstone.source != source) continue;
            if (receiver.ApplyRemoteTombstone(native_id, tombstone)) {
              ++stats.records_sent;
              stats.bytes_sent += native_id.size() + 16;
              changed = true;
            }
          }
        }
      }
    }
    if (stats.rounds > 16) break;  // safety against livelock
  }
  return stats;
}

bool SyncService::SourcesConsistent(const std::vector<Device>& devices,
                                    SourceKind source) {
  const int s = static_cast<int>(source);
  const Device* reference = nullptr;
  for (const Device& d : devices) {
    if (!d.config().sync_enabled[s]) continue;
    if (reference == nullptr) {
      reference = &d;
      continue;
    }
    const auto a = reference->RecordsOfSource(source);
    const auto b = d.RecordsOfSource(source);
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].native_id != b[i].native_id ||
          a[i].timestamp != b[i].timestamp || a[i].name != b[i].name) {
        return false;
      }
    }
  }
  return true;
}

OffloadStats OffloadFusion(std::vector<Device>* devices,
                           const std::string& spill_dir) {
  OffloadStats stats;
  if (devices->empty()) return stats;
  // Pick the beefiest device.
  size_t best = 0;
  for (size_t i = 1; i < devices->size(); ++i) {
    if ((*devices)[i].config().compute_power >
        (*devices)[best].config().compute_power) {
      best = i;
    }
  }
  Device& compute = (*devices)[best];
  stats.compute_device = compute.config().id;

  const std::vector<SourceRecord> records = compute.VisibleRecords();
  IncrementalPipeline::Options opts;
  IncrementalPipeline pipeline(&records, opts);
  while (!pipeline.done()) pipeline.RunSteps(4096);
  std::vector<FusedPerson> fused = pipeline.FusedPersons();
  (void)spill_dir;

  // Ship the fused view to every other device.
  for (const FusedPerson& p : fused) {
    stats.bytes_shipped += p.display_name.size() + p.provenance.size() * 16;
    for (const auto& s : p.interactions) stats.bytes_shipped += s.size();
  }
  stats.persons_shipped = fused.size();
  for (size_t i = 0; i < devices->size(); ++i) {
    (*devices)[i].SetFused(fused);
  }
  return stats;
}

}  // namespace saga::ondevice
