#ifndef SAGA_KG_ENTITY_CATALOG_H_
#define SAGA_KG_ENTITY_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/serialization.h"
#include "common/status.h"
#include "kg/ids.h"

namespace saga::kg {

/// Textual / lexical features of an entity, used by entity linking and
/// the contextual reranker (name, description, popularity; §3).
struct EntityRecord {
  EntityId id;
  std::string canonical_name;
  std::vector<std::string> aliases;
  std::string description;
  std::vector<TypeId> types;
  /// Aggregated popularity signal in [0, 1]; open-domain KGs derive this
  /// from page views / query logs. Drives fact ranking priors and
  /// linking disambiguation.
  double popularity = 0.0;
};

/// Dense registry of entities plus an alias lookup table (normalized
/// alias -> candidate entities). This is the candidate-generation
/// substrate for semantic annotation.
class EntityCatalog {
 public:
  EntityCatalog() = default;

  /// Creates a new entity with a dense id. Canonical name is
  /// automatically registered as an alias.
  EntityId AddEntity(std::string_view canonical_name,
                     std::vector<TypeId> types, double popularity = 0.0,
                     std::string_view description = "");

  /// Registers an extra surface form for the entity.
  void AddAlias(EntityId id, std::string_view alias);

  void SetDescription(EntityId id, std::string_view description);
  void SetPopularity(EntityId id, double popularity);
  void AddType(EntityId id, TypeId type);

  const EntityRecord& record(EntityId id) const {
    return records_[id.value()];
  }
  const std::string& name(EntityId id) const {
    return record(id).canonical_name;
  }
  double popularity(EntityId id) const { return record(id).popularity; }
  bool HasType(EntityId id, TypeId type) const;

  size_t size() const { return records_.size(); }
  const std::vector<EntityRecord>& records() const { return records_; }

  /// Entities whose alias set contains the normalized form of `surface`.
  /// Empty vector when unknown. This is the "alias table" of the
  /// candidate generator.
  const std::vector<EntityId>& LookupAlias(std::string_view surface) const;

  /// Exact-canonical-name lookup (normalized).
  Result<EntityId> FindByName(std::string_view name) const;

  /// All alias surface strings, for gazetteer construction.
  std::vector<std::string> AllAliases() const;

  /// Lowercased, whitespace-collapsed key used for the alias table.
  static std::string NormalizeSurface(std::string_view s);

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, EntityCatalog* out);

 private:
  std::vector<EntityRecord> records_;
  std::unordered_map<std::string, std::vector<EntityId>> alias_table_;
  std::unordered_map<std::string, EntityId> by_canonical_name_;
  std::vector<EntityId> empty_;
};

}  // namespace saga::kg

#endif  // SAGA_KG_ENTITY_CATALOG_H_
