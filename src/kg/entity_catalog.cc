#include "kg/entity_catalog.h"

#include <algorithm>
#include <cassert>
#include <cctype>

namespace saga::kg {

std::string EntityCatalog::NormalizeSurface(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_space = true;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_space) {
        out.push_back(' ');
        last_space = true;
      }
    } else {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      last_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

EntityId EntityCatalog::AddEntity(std::string_view canonical_name,
                                  std::vector<TypeId> types,
                                  double popularity,
                                  std::string_view description) {
  EntityId id(records_.size());
  EntityRecord rec;
  rec.id = id;
  rec.canonical_name = std::string(canonical_name);
  rec.types = std::move(types);
  rec.popularity = popularity;
  rec.description = std::string(description);
  records_.push_back(std::move(rec));
  const std::string norm = NormalizeSurface(canonical_name);
  // First registrant wins canonical-name lookup; ambiguous names
  // (two "Michael Jordan"s) still both appear in the alias table.
  by_canonical_name_.emplace(norm, id);
  AddAlias(id, canonical_name);
  return id;
}

void EntityCatalog::AddAlias(EntityId id, std::string_view alias) {
  assert(id.value() < records_.size());
  EntityRecord& rec = records_[id.value()];
  std::string alias_str(alias);
  if (std::find(rec.aliases.begin(), rec.aliases.end(), alias_str) ==
      rec.aliases.end()) {
    rec.aliases.push_back(alias_str);
  }
  std::vector<EntityId>& bucket = alias_table_[NormalizeSurface(alias)];
  if (std::find(bucket.begin(), bucket.end(), id) == bucket.end()) {
    bucket.push_back(id);
  }
}

void EntityCatalog::SetDescription(EntityId id, std::string_view description) {
  records_[id.value()].description = std::string(description);
}

void EntityCatalog::SetPopularity(EntityId id, double popularity) {
  records_[id.value()].popularity = popularity;
}

void EntityCatalog::AddType(EntityId id, TypeId type) {
  auto& types = records_[id.value()].types;
  if (std::find(types.begin(), types.end(), type) == types.end()) {
    types.push_back(type);
  }
}

bool EntityCatalog::HasType(EntityId id, TypeId type) const {
  const auto& types = record(id).types;
  return std::find(types.begin(), types.end(), type) != types.end();
}

const std::vector<EntityId>& EntityCatalog::LookupAlias(
    std::string_view surface) const {
  auto it = alias_table_.find(NormalizeSurface(surface));
  if (it == alias_table_.end()) return empty_;
  return it->second;
}

Result<EntityId> EntityCatalog::FindByName(std::string_view name) const {
  auto it = by_canonical_name_.find(NormalizeSurface(name));
  if (it == by_canonical_name_.end()) {
    return Status::NotFound("entity: " + std::string(name));
  }
  return it->second;
}

std::vector<std::string> EntityCatalog::AllAliases() const {
  std::vector<std::string> out;
  out.reserve(alias_table_.size());
  for (const auto& [alias, ids] : alias_table_) out.push_back(alias);
  std::sort(out.begin(), out.end());
  return out;
}

void EntityCatalog::Serialize(BinaryWriter* w) const {
  w->PutVarint64(records_.size());
  for (const auto& rec : records_) {
    w->PutString(rec.canonical_name);
    w->PutString(rec.description);
    w->PutDouble(rec.popularity);
    w->PutVarint64(rec.types.size());
    for (TypeId t : rec.types) w->PutVarint64(t.value());
    w->PutVarint64(rec.aliases.size());
    for (const auto& a : rec.aliases) w->PutString(a);
  }
}

Status EntityCatalog::Deserialize(BinaryReader* r, EntityCatalog* out) {
  *out = EntityCatalog();
  uint64_t n = 0;
  SAGA_RETURN_IF_ERROR(r->GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::string description;
    double popularity = 0.0;
    SAGA_RETURN_IF_ERROR(r->GetString(&name));
    SAGA_RETURN_IF_ERROR(r->GetString(&description));
    SAGA_RETURN_IF_ERROR(r->GetDouble(&popularity));
    uint64_t num_types = 0;
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&num_types));
    std::vector<TypeId> types;
    types.reserve(num_types);
    for (uint64_t t = 0; t < num_types; ++t) {
      uint64_t tv = 0;
      SAGA_RETURN_IF_ERROR(r->GetVarint64(&tv));
      types.push_back(TypeId(tv));
    }
    EntityId id = out->AddEntity(name, std::move(types), popularity,
                                 description);
    uint64_t num_aliases = 0;
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&num_aliases));
    for (uint64_t a = 0; a < num_aliases; ++a) {
      std::string alias;
      SAGA_RETURN_IF_ERROR(r->GetString(&alias));
      out->AddAlias(id, alias);
    }
  }
  return Status::OK();
}

}  // namespace saga::kg
