#include "kg/knowledge_graph.h"

#include <algorithm>

#include "common/file_util.h"
#include "common/serialization.h"

namespace saga::kg {

namespace {
constexpr uint32_t kSnapshotMagic = 0x5341474Bu;  // "SAGK"
constexpr uint32_t kSnapshotVersion = 1;
}  // namespace

SourceId KnowledgeGraph::AddSource(std::string_view name, double quality) {
  for (size_t i = 0; i < source_names_.size(); ++i) {
    if (source_names_[i] == name) return SourceId(i);
  }
  source_names_.emplace_back(name);
  source_qualities_.push_back(quality);
  return SourceId(source_names_.size() - 1);
}

Result<SourceId> KnowledgeGraph::FindSource(std::string_view name) const {
  for (size_t i = 0; i < source_names_.size(); ++i) {
    if (source_names_[i] == name) return SourceId(i);
  }
  return Status::NotFound("source: " + std::string(name));
}

TripleIdx KnowledgeGraph::AddFact(EntityId s, PredicateId p, Value o,
                                  SourceId source, double confidence,
                                  int64_t timestamp) {
  Triple t;
  t.subject = s;
  t.predicate = p;
  t.object = std::move(o);
  t.provenance.source = source;
  t.provenance.confidence = confidence;
  t.provenance.timestamp = timestamp == 0 ? NowTimestamp() : timestamp;
  logical_clock_ = std::max(logical_clock_, t.provenance.timestamp);
  return triples_.Add(std::move(t));
}

std::vector<Value> KnowledgeGraph::ObjectsOf(EntityId s, PredicateId p) const {
  std::vector<Value> out;
  for (TripleIdx idx : triples_.BySubjectPredicate(s, p)) {
    out.push_back(triples_.triple(idx).object);
  }
  return out;
}

std::vector<EntityId> KnowledgeGraph::Neighbors(EntityId e) const {
  std::vector<EntityId> out;
  for (TripleIdx idx : triples_.BySubject(e)) {
    const Triple& t = triples_.triple(idx);
    if (t.object.is_entity()) out.push_back(t.object.entity());
  }
  for (TripleIdx idx : triples_.ByObjectEntity(e)) {
    out.push_back(triples_.triple(idx).subject);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void KnowledgeGraph::AdvanceClock(int64_t to) {
  logical_clock_ = std::max(logical_clock_, to);
}

Status KnowledgeGraph::Save(const std::string& path) const {
  std::string buf;
  BinaryWriter w(&buf);
  w.PutFixed32(kSnapshotMagic);
  w.PutFixed32(kSnapshotVersion);
  ontology_.Serialize(&w);
  catalog_.Serialize(&w);
  triples_.Serialize(&w);
  w.PutVarint64(source_names_.size());
  for (size_t i = 0; i < source_names_.size(); ++i) {
    w.PutString(source_names_[i]);
    w.PutDouble(source_qualities_[i]);
  }
  w.PutVarint64Signed(logical_clock_);
  return WriteStringToFile(path, buf);
}

Result<KnowledgeGraph> KnowledgeGraph::Load(const std::string& path) {
  SAGA_ASSIGN_OR_RETURN(std::string buf, ReadFileToString(path));
  BinaryReader r(buf);
  uint32_t magic = 0;
  uint32_t version = 0;
  SAGA_RETURN_IF_ERROR(r.GetFixed32(&magic));
  SAGA_RETURN_IF_ERROR(r.GetFixed32(&version));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("bad KG snapshot magic in " + path);
  }
  if (version != kSnapshotVersion) {
    return Status::Corruption("unsupported KG snapshot version " +
                              std::to_string(version));
  }
  KnowledgeGraph kg;
  SAGA_RETURN_IF_ERROR(Ontology::Deserialize(&r, &kg.ontology_));
  SAGA_RETURN_IF_ERROR(EntityCatalog::Deserialize(&r, &kg.catalog_));
  SAGA_RETURN_IF_ERROR(TripleStore::Deserialize(&r, &kg.triples_));
  uint64_t num_sources = 0;
  SAGA_RETURN_IF_ERROR(r.GetVarint64(&num_sources));
  for (uint64_t i = 0; i < num_sources; ++i) {
    std::string name;
    double quality = 1.0;
    SAGA_RETURN_IF_ERROR(r.GetString(&name));
    SAGA_RETURN_IF_ERROR(r.GetDouble(&quality));
    kg.AddSource(name, quality);
  }
  SAGA_RETURN_IF_ERROR(r.GetVarint64Signed(&kg.logical_clock_));
  return kg;
}

}  // namespace saga::kg
