#ifndef SAGA_KG_KG_GENERATOR_H_
#define SAGA_KG_KG_GENERATOR_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "kg/knowledge_graph.h"

namespace saga::kg {

/// Ids of the standard open-domain schema created by the generator.
/// Kept in a struct so tests and benches reference schema elements
/// without string lookups.
struct SchemaHandles {
  // Types.
  TypeId thing;
  TypeId person;
  TypeId athlete;
  TypeId musician;
  TypeId actor;
  TypeId director;
  TypeId professor;
  TypeId creative_work;
  TypeId movie;
  TypeId song;
  TypeId organization;
  TypeId sports_team;
  TypeId band;
  TypeId university;
  TypeId place;
  TypeId city;
  TypeId country;
  TypeId occupation_type;
  TypeId genre_type;

  // Entity-ranged predicates (embedding-relevant).
  PredicateId acted_in;
  PredicateId directed;
  PredicateId spouse;
  PredicateId plays_for;
  PredicateId member_of;
  PredicateId performed;
  PredicateId team_city;
  PredicateId born_in;
  PredicateId city_in;
  PredicateId works_at;
  PredicateId occupation;
  PredicateId genre;
  PredicateId studied_at;

  // Literal-ranged predicates (filtered out of embedding views).
  PredicateId date_of_birth;
  PredicateId height_cm;
  PredicateId library_id;
  PredicateId follower_count;
  PredicateId release_year;
  PredicateId population;
  PredicateId founded_year;
  PredicateId net_worth;
};

/// Registers the standard schema into `kg` and returns the handles.
SchemaHandles InstallStandardSchema(KnowledgeGraph* kg);

struct KgGeneratorConfig {
  uint64_t seed = 42;
  int num_persons = 1000;
  int num_movies = 250;
  int num_songs = 200;
  int num_teams = 24;
  int num_bands = 40;
  int num_cities = 50;
  int num_countries = 10;
  int num_universities = 20;
  int num_occupations = 16;
  int num_genres = 12;

  /// Fraction of persons deliberately given a full name already used by
  /// another person of a *different* profession — the "Michael Jordan"
  /// ambiguity the annotation service must resolve with context.
  double ambiguous_name_fraction = 0.06;

  /// Fraction of functional literal facts (DOB etc.) that are known to
  /// the generator but withheld from the KG: the coverage gaps ODKE must
  /// find and fill.
  double withheld_fact_fraction = 0.15;

  /// Fraction of functional facts stored with an outdated value; the
  /// fresh value is recorded as ground truth (staleness experiments).
  double stale_fact_fraction = 0.05;

  /// Fraction of extra wrong entity-edges injected (open-domain noise).
  double noise_fact_fraction = 0.02;

  /// Popularity skew: entity popularity ~ Zipf(s).
  double popularity_zipf = 1.05;
};

/// A fact the generator knows to be true. `in_kg` tells whether it was
/// actually inserted (false => withheld, an ODKE target).
struct GroundTruthFact {
  EntityId subject;
  PredicateId predicate;
  Value object;
  bool in_kg = true;
};

/// A fact present in the KG with an outdated value.
struct StaleFact {
  TripleIdx triple;
  Value fresh_value;
};

/// Generator output: the KG plus everything the evaluation harness needs
/// to score downstream components against known truth.
struct GeneratedKg {
  KnowledgeGraph kg;
  SchemaHandles schema;

  /// All true functional literal facts (DOB, heights, ...), including
  /// withheld ones.
  std::vector<GroundTruthFact> functional_facts;
  /// Subset of functional_facts withheld from the KG.
  std::vector<GroundTruthFact> withheld_facts;
  std::vector<StaleFact> stale_facts;

  /// Groups of distinct entities sharing a canonical name.
  std::vector<std::vector<EntityId>> ambiguous_groups;

  /// Noise triples injected into the KG (known-wrong entity edges);
  /// fact verification should score these low.
  std::vector<TripleIdx> noise_triples;
};

/// Builds a deterministic synthetic open-domain KG: people, movies,
/// songs, teams, bands, places with realistic link structure, aliases,
/// popularity skew, numeric/noisy predicates, ambiguity, withheld and
/// stale facts. See DESIGN.md §1 for why this substitutes for the
/// paper's production KG.
GeneratedKg GenerateKg(const KgGeneratorConfig& config);

}  // namespace saga::kg

#endif  // SAGA_KG_KG_GENERATOR_H_
