#include "kg/value.h"

#include <cassert>
#include <cstdio>

#include "common/hash.h"

namespace saga::kg {

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year(), month(), day());
  return buf;
}

bool Date::Parse(std::string_view s, Date* out) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  int y = 0;
  int m = 0;
  int d = 0;
  for (int i = 0; i < 4; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    y = y * 10 + (s[i] - '0');
  }
  for (int i = 5; i < 7; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    m = m * 10 + (s[i] - '0');
  }
  for (int i = 8; i < 10; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    d = d * 10 + (s[i] - '0');
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *out = Date::FromYmd(y, m, d);
  return true;
}

Value Value::Entity(EntityId id) {
  Value v;
  v.kind_ = Kind::kEntity;
  v.entity_ = id;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

Value Value::OfDate(Date d) {
  Value v;
  v.kind_ = Kind::kDate;
  v.int_ = d.ymd;
  return v;
}

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.int_ = b ? 1 : 0;
  return v;
}

EntityId Value::entity() const {
  assert(kind_ == Kind::kEntity);
  return entity_;
}

const std::string& Value::string_value() const {
  assert(kind_ == Kind::kString);
  return string_;
}

int64_t Value::int_value() const {
  assert(kind_ == Kind::kInt);
  return int_;
}

double Value::double_value() const {
  assert(kind_ == Kind::kDouble);
  return double_;
}

Date Value::date_value() const {
  assert(kind_ == Kind::kDate);
  return Date{static_cast<int32_t>(int_)};
}

bool Value::bool_value() const {
  assert(kind_ == Kind::kBool);
  return int_ != 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kEntity:
      return "E" + std::to_string(entity_.value());
    case Kind::kString:
      return string_;
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case Kind::kDate:
      return Date{static_cast<int32_t>(int_)}.ToString();
    case Kind::kBool:
      return int_ ? "true" : "false";
  }
  return "?";
}

uint64_t Value::Hash() const {
  uint64_t h = static_cast<uint64_t>(kind_);
  switch (kind_) {
    case Kind::kEntity:
      return HashCombine(h, entity_.value());
    case Kind::kString:
      return HashCombine(h, Hash64(string_));
    case Kind::kInt:
    case Kind::kDate:
    case Kind::kBool:
      return HashCombine(h, static_cast<uint64_t>(int_));
    case Kind::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &double_, sizeof(bits));
      return HashCombine(h, bits);
    }
  }
  return h;
}

void Value::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case Kind::kEntity:
      w->PutVarint64(entity_.value());
      break;
    case Kind::kString:
      w->PutString(string_);
      break;
    case Kind::kInt:
    case Kind::kDate:
    case Kind::kBool:
      w->PutVarint64Signed(int_);
      break;
    case Kind::kDouble:
      w->PutDouble(double_);
      break;
  }
}

Status Value::Deserialize(BinaryReader* r, Value* out) {
  uint8_t kind_byte = 0;
  SAGA_RETURN_IF_ERROR(r->GetU8(&kind_byte));
  if (kind_byte > static_cast<uint8_t>(Kind::kBool)) {
    return Status::Corruption("bad value kind " + std::to_string(kind_byte));
  }
  const Kind kind = static_cast<Kind>(kind_byte);
  switch (kind) {
    case Kind::kEntity: {
      uint64_t id = 0;
      SAGA_RETURN_IF_ERROR(r->GetVarint64(&id));
      *out = Value::Entity(EntityId(id));
      break;
    }
    case Kind::kString: {
      std::string s;
      SAGA_RETURN_IF_ERROR(r->GetString(&s));
      *out = Value::String(std::move(s));
      break;
    }
    case Kind::kInt: {
      int64_t v = 0;
      SAGA_RETURN_IF_ERROR(r->GetVarint64Signed(&v));
      *out = Value::Int(v);
      break;
    }
    case Kind::kDate: {
      int64_t v = 0;
      SAGA_RETURN_IF_ERROR(r->GetVarint64Signed(&v));
      *out = Value::OfDate(Date{static_cast<int32_t>(v)});
      break;
    }
    case Kind::kBool: {
      int64_t v = 0;
      SAGA_RETURN_IF_ERROR(r->GetVarint64Signed(&v));
      *out = Value::Bool(v != 0);
      break;
    }
    case Kind::kDouble: {
      double v = 0;
      SAGA_RETURN_IF_ERROR(r->GetDouble(&v));
      *out = Value::Double(v);
      break;
    }
  }
  return Status::OK();
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::kEntity:
      return a.entity_ == b.entity_;
    case Value::Kind::kString:
      return a.string_ == b.string_;
    case Value::Kind::kInt:
    case Value::Kind::kDate:
    case Value::Kind::kBool:
      return a.int_ == b.int_;
    case Value::Kind::kDouble:
      return a.double_ == b.double_;
  }
  return false;
}

}  // namespace saga::kg
