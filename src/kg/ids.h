#ifndef SAGA_KG_IDS_H_
#define SAGA_KG_IDS_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace saga::kg {

/// Strongly typed 64-bit identifier. Distinct Tag types prevent mixing
/// entity ids with predicate ids at compile time. Ids are allocated
/// densely from 0 so they double as array indexes (embedding rows,
/// partition assignment).
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr Id Invalid() { return Id(); }

  friend constexpr bool operator==(Id a, Id b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Id a, Id b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  static constexpr uint64_t kInvalidValue =
      std::numeric_limits<uint64_t>::max();
  uint64_t value_;
};

struct EntityTag {};
struct PredicateTag {};
struct TypeTag {};
struct SourceTag {};

using EntityId = Id<EntityTag>;
using PredicateId = Id<PredicateTag>;
using TypeId = Id<TypeTag>;
using SourceId = Id<SourceTag>;

}  // namespace saga::kg

namespace std {
template <typename Tag>
struct hash<saga::kg::Id<Tag>> {
  size_t operator()(saga::kg::Id<Tag> id) const noexcept {
    // splitmix-style avalanche; dense ids hash poorly raw.
    uint64_t h = id.value() + 0x9E3779B97F4A7C15ULL;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(h ^ (h >> 31));
  }
};
}  // namespace std

#endif  // SAGA_KG_IDS_H_
