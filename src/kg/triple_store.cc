#include "kg/triple_store.h"

#include <cassert>

#include "common/hash.h"

namespace saga::kg {

uint64_t TripleStore::SpKey(EntityId s, PredicateId p) {
  return HashCombine(s.value(), p.value());
}

TripleIdx TripleStore::Add(Triple t) {
  assert(triples_.size() < kInvalidTripleIdx);
  const TripleIdx idx = static_cast<TripleIdx>(triples_.size());
  by_subject_[t.subject].push_back(idx);
  by_sp_[SpKey(t.subject, t.predicate)].push_back(idx);
  by_predicate_[t.predicate].push_back(idx);
  if (t.object.is_entity()) {
    by_object_entity_[t.object.entity()].push_back(idx);
  }
  triples_.push_back(std::move(t));
  deleted_.push_back(false);
  ++live_count_;
  return idx;
}

void TripleStore::Remove(TripleIdx idx) {
  assert(idx < triples_.size());
  if (!deleted_[idx]) {
    deleted_[idx] = true;
    --live_count_;
  }
}

std::vector<TripleIdx> TripleStore::Filtered(
    const std::vector<TripleIdx>* v) const {
  std::vector<TripleIdx> out;
  if (v == nullptr) return out;
  out.reserve(v->size());
  for (TripleIdx i : *v) {
    if (!deleted_[i]) out.push_back(i);
  }
  return out;
}

std::vector<TripleIdx> TripleStore::BySubject(EntityId s) const {
  auto it = by_subject_.find(s);
  return Filtered(it == by_subject_.end() ? nullptr : &it->second);
}

std::vector<TripleIdx> TripleStore::BySubjectPredicate(EntityId s,
                                                       PredicateId p) const {
  auto it = by_sp_.find(SpKey(s, p));
  if (it == by_sp_.end()) return {};
  // SpKey is a hash; verify match to guard against collisions.
  std::vector<TripleIdx> out;
  out.reserve(it->second.size());
  for (TripleIdx i : it->second) {
    if (!deleted_[i] && triples_[i].subject == s &&
        triples_[i].predicate == p) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<TripleIdx> TripleStore::ByPredicate(PredicateId p) const {
  auto it = by_predicate_.find(p);
  return Filtered(it == by_predicate_.end() ? nullptr : &it->second);
}

std::vector<TripleIdx> TripleStore::ByObjectEntity(EntityId o) const {
  auto it = by_object_entity_.find(o);
  return Filtered(it == by_object_entity_.end() ? nullptr : &it->second);
}

bool TripleStore::Contains(EntityId s, PredicateId p, const Value& o) const {
  for (TripleIdx i : BySubjectPredicate(s, p)) {
    if (triples_[i].object == o) return true;
  }
  return false;
}

std::unordered_map<PredicateId, uint64_t> TripleStore::PredicateFrequencies()
    const {
  std::unordered_map<PredicateId, uint64_t> freq;
  ForEach([&freq](TripleIdx, const Triple& t) { ++freq[t.predicate]; });
  return freq;
}

void TripleStore::Serialize(BinaryWriter* w) const {
  w->PutVarint64(live_size());
  ForEach([w](TripleIdx, const Triple& t) {
    w->PutVarint64(t.subject.value());
    w->PutVarint64(t.predicate.value());
    t.object.Serialize(w);
    w->PutVarint64(t.provenance.source.valid() ? t.provenance.source.value() + 1
                                               : 0);
    w->PutDouble(t.provenance.confidence);
    w->PutVarint64Signed(t.provenance.timestamp);
  });
}

Status TripleStore::Deserialize(BinaryReader* r, TripleStore* out) {
  *out = TripleStore();
  uint64_t n = 0;
  SAGA_RETURN_IF_ERROR(r->GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    Triple t;
    uint64_t sv = 0;
    uint64_t pv = 0;
    uint64_t src_plus1 = 0;
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&sv));
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&pv));
    t.subject = EntityId(sv);
    t.predicate = PredicateId(pv);
    SAGA_RETURN_IF_ERROR(Value::Deserialize(r, &t.object));
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&src_plus1));
    t.provenance.source =
        src_plus1 == 0 ? SourceId::Invalid() : SourceId(src_plus1 - 1);
    SAGA_RETURN_IF_ERROR(r->GetDouble(&t.provenance.confidence));
    SAGA_RETURN_IF_ERROR(r->GetVarint64Signed(&t.provenance.timestamp));
    out->Add(std::move(t));
  }
  return Status::OK();
}

}  // namespace saga::kg
