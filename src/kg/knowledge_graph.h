#ifndef SAGA_KG_KNOWLEDGE_GRAPH_H_
#define SAGA_KG_KNOWLEDGE_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kg/entity_catalog.h"
#include "kg/ontology.h"
#include "kg/triple_store.h"

namespace saga::kg {

/// Top-level knowledge graph: ontology + entity catalog + triple store
/// + registered data sources. This is the open-domain KG the whole
/// platform grows and serves.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;

  Ontology& ontology() { return ontology_; }
  const Ontology& ontology() const { return ontology_; }
  EntityCatalog& catalog() { return catalog_; }
  const EntityCatalog& catalog() const { return catalog_; }
  TripleStore& triples() { return triples_; }
  const TripleStore& triples() const { return triples_; }

  /// Registers a provenance source (e.g. "wikipedia", "odke",
  /// "web_annotation") and returns its id; idempotent per name.
  SourceId AddSource(std::string_view name, double quality = 1.0);
  const std::string& source_name(SourceId id) const {
    return source_names_[id.value()];
  }
  double source_quality(SourceId id) const {
    return source_qualities_[id.value()];
  }
  Result<SourceId> FindSource(std::string_view name) const;
  size_t num_sources() const { return source_names_.size(); }

  /// Convenience: add a fact with provenance.
  TripleIdx AddFact(EntityId s, PredicateId p, Value o, SourceId source,
                    double confidence = 1.0, int64_t timestamp = 0);

  /// All object values of live (s, p, *) facts.
  std::vector<Value> ObjectsOf(EntityId s, PredicateId p) const;

  /// Entity-typed neighbors over outgoing + incoming entity edges.
  std::vector<EntityId> Neighbors(EntityId e) const;

  size_t num_entities() const { return catalog_.size(); }
  size_t num_triples() const { return triples_.live_size(); }

  /// Monotone logical clock used to timestamp new facts.
  int64_t NowTimestamp() { return ++logical_clock_; }
  void AdvanceClock(int64_t to);

  /// Binary snapshot of the entire KG.
  Status Save(const std::string& path) const;
  static Result<KnowledgeGraph> Load(const std::string& path);

 private:
  Ontology ontology_;
  EntityCatalog catalog_;
  TripleStore triples_;
  std::vector<std::string> source_names_;
  std::vector<double> source_qualities_;
  int64_t logical_clock_ = 0;
};

}  // namespace saga::kg

#endif  // SAGA_KG_KNOWLEDGE_GRAPH_H_
