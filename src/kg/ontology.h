#ifndef SAGA_KG_ONTOLOGY_H_
#define SAGA_KG_ONTOLOGY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/serialization.h"
#include "common/status.h"
#include "kg/ids.h"
#include "kg/value.h"

namespace saga::kg {

/// Schema metadata for one predicate. The embedding pipeline (§2) uses
/// `embedding_relevant` to build filtered training views: numeric values,
/// library identifiers, follower counts etc. are useful for QA but hurt
/// relatedness embeddings.
struct PredicateMeta {
  PredicateId id;
  std::string name;
  /// Expected subject type; Invalid() means any.
  TypeId domain;
  /// Kind of the object position.
  Value::Kind range_kind = Value::Kind::kEntity;
  /// Expected object entity type when range_kind == kEntity.
  TypeId range_type;
  /// Single-valued per subject (e.g. date_of_birth); multi-valued
  /// predicates like occupation may have many objects.
  bool functional = false;
  /// Whether the predicate carries relational signal for embeddings.
  bool embedding_relevant = true;
  /// Natural-language surface used by the ODKE query synthesizer,
  /// e.g. "date of birth".
  std::string surface_form;
};

/// Metadata for one entity type, with single-parent subtyping.
struct TypeMeta {
  TypeId id;
  std::string name;
  TypeId parent;  // Invalid() for roots.
};

/// Registry of entity types and predicates. Append-only: industrial KGs
/// never reuse schema ids.
class Ontology {
 public:
  Ontology() = default;

  /// Registers a type; `parent` may be Invalid() for a root type.
  TypeId AddType(std::string_view name, TypeId parent = TypeId::Invalid());

  /// Registers a predicate and returns its id. Name must be unique.
  PredicateId AddPredicate(PredicateMeta meta);

  Result<TypeId> FindType(std::string_view name) const;
  Result<PredicateId> FindPredicate(std::string_view name) const;

  const TypeMeta& type(TypeId id) const { return types_[id.value()]; }
  const PredicateMeta& predicate(PredicateId id) const {
    return predicates_[id.value()];
  }
  const std::string& type_name(TypeId id) const { return type(id).name; }
  const std::string& predicate_name(PredicateId id) const {
    return predicate(id).name;
  }

  size_t num_types() const { return types_.size(); }
  size_t num_predicates() const { return predicates_.size(); }
  const std::vector<PredicateMeta>& predicates() const { return predicates_; }
  const std::vector<TypeMeta>& types() const { return types_; }

  /// True if `t` equals `ancestor` or descends from it.
  bool IsSubtypeOf(TypeId t, TypeId ancestor) const;

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, Ontology* out);

 private:
  std::vector<TypeMeta> types_;
  std::vector<PredicateMeta> predicates_;
  std::unordered_map<std::string, TypeId> type_by_name_;
  std::unordered_map<std::string, PredicateId> predicate_by_name_;
};

}  // namespace saga::kg

#endif  // SAGA_KG_ONTOLOGY_H_
