#include "kg/ontology.h"

#include <cassert>

namespace saga::kg {

TypeId Ontology::AddType(std::string_view name, TypeId parent) {
  auto it = type_by_name_.find(std::string(name));
  if (it != type_by_name_.end()) return it->second;
  TypeId id(types_.size());
  types_.push_back(TypeMeta{id, std::string(name), parent});
  type_by_name_.emplace(std::string(name), id);
  return id;
}

PredicateId Ontology::AddPredicate(PredicateMeta meta) {
  auto it = predicate_by_name_.find(meta.name);
  if (it != predicate_by_name_.end()) return it->second;
  PredicateId id(predicates_.size());
  meta.id = id;
  predicate_by_name_.emplace(meta.name, id);
  predicates_.push_back(std::move(meta));
  return id;
}

Result<TypeId> Ontology::FindType(std::string_view name) const {
  auto it = type_by_name_.find(std::string(name));
  if (it == type_by_name_.end()) {
    return Status::NotFound("type: " + std::string(name));
  }
  return it->second;
}

Result<PredicateId> Ontology::FindPredicate(std::string_view name) const {
  auto it = predicate_by_name_.find(std::string(name));
  if (it == predicate_by_name_.end()) {
    return Status::NotFound("predicate: " + std::string(name));
  }
  return it->second;
}

bool Ontology::IsSubtypeOf(TypeId t, TypeId ancestor) const {
  while (t.valid()) {
    if (t == ancestor) return true;
    assert(t.value() < types_.size());
    t = types_[t.value()].parent;
  }
  return false;
}

void Ontology::Serialize(BinaryWriter* w) const {
  w->PutVarint64(types_.size());
  for (const auto& t : types_) {
    w->PutString(t.name);
    w->PutVarint64(t.parent.valid() ? t.parent.value() + 1 : 0);
  }
  w->PutVarint64(predicates_.size());
  for (const auto& p : predicates_) {
    w->PutString(p.name);
    w->PutVarint64(p.domain.valid() ? p.domain.value() + 1 : 0);
    w->PutU8(static_cast<uint8_t>(p.range_kind));
    w->PutVarint64(p.range_type.valid() ? p.range_type.value() + 1 : 0);
    w->PutBool(p.functional);
    w->PutBool(p.embedding_relevant);
    w->PutString(p.surface_form);
  }
}

Status Ontology::Deserialize(BinaryReader* r, Ontology* out) {
  *out = Ontology();
  uint64_t num_types = 0;
  SAGA_RETURN_IF_ERROR(r->GetVarint64(&num_types));
  for (uint64_t i = 0; i < num_types; ++i) {
    std::string name;
    uint64_t parent_plus1 = 0;
    SAGA_RETURN_IF_ERROR(r->GetString(&name));
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&parent_plus1));
    TypeId parent =
        parent_plus1 == 0 ? TypeId::Invalid() : TypeId(parent_plus1 - 1);
    out->AddType(name, parent);
  }
  uint64_t num_preds = 0;
  SAGA_RETURN_IF_ERROR(r->GetVarint64(&num_preds));
  for (uint64_t i = 0; i < num_preds; ++i) {
    PredicateMeta meta;
    uint64_t domain_plus1 = 0;
    uint64_t range_plus1 = 0;
    uint8_t range_kind = 0;
    SAGA_RETURN_IF_ERROR(r->GetString(&meta.name));
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&domain_plus1));
    SAGA_RETURN_IF_ERROR(r->GetU8(&range_kind));
    SAGA_RETURN_IF_ERROR(r->GetVarint64(&range_plus1));
    SAGA_RETURN_IF_ERROR(r->GetBool(&meta.functional));
    SAGA_RETURN_IF_ERROR(r->GetBool(&meta.embedding_relevant));
    SAGA_RETURN_IF_ERROR(r->GetString(&meta.surface_form));
    meta.domain =
        domain_plus1 == 0 ? TypeId::Invalid() : TypeId(domain_plus1 - 1);
    meta.range_type =
        range_plus1 == 0 ? TypeId::Invalid() : TypeId(range_plus1 - 1);
    if (range_kind > static_cast<uint8_t>(Value::Kind::kBool)) {
      return Status::Corruption("bad predicate range kind");
    }
    meta.range_kind = static_cast<Value::Kind>(range_kind);
    out->AddPredicate(std::move(meta));
  }
  return Status::OK();
}

}  // namespace saga::kg
