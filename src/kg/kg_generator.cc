#include "kg/kg_generator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <string>

namespace saga::kg {

namespace {

constexpr std::array<const char*, 40> kFirstNames = {
    "Michael", "Sarah",  "James",  "Maria",   "David",  "Anna",
    "Robert",  "Linda",  "John",   "Emma",    "Carlos", "Sofia",
    "Ahmed",   "Yuki",   "Pierre", "Ingrid",  "Raj",    "Mei",
    "Tim",     "Laura",  "Kevin",  "Nadia",   "Oscar",  "Priya",
    "Hugo",    "Elena",  "Felix",  "Camila",  "Marco",  "Aisha",
    "Dmitri",  "Hana",   "Lucas",  "Freya",   "Mateo",  "Zara",
    "Henrik",  "Amara",  "Paulo",  "Michelle"};

constexpr std::array<const char*, 40> kLastNames = {
    "Jordan",    "Williams", "Smith",    "Garcia",   "Chen",
    "Johnson",   "Brown",    "Silva",    "Kim",      "Patel",
    "Muller",    "Rossi",    "Tanaka",   "Novak",    "Dubois",
    "Andersson", "Costa",    "Popov",    "Sato",     "Haddad",
    "Nguyen",    "Okafor",   "Jansen",   "Kowalski", "Moreau",
    "Ferrari",   "Yamamoto", "Petrov",   "Santos",   "Ali",
    "Larsen",    "Ibrahim",  "Fischer",  "Romano",   "Suzuki",
    "Volkov",    "Mendes",   "Hassan",   "Berg",     "Oliveira"};

constexpr std::array<const char*, 24> kCitySyllablesA = {
    "Spring", "River", "Oak",   "Maple", "Stone", "Clear", "Fair", "Green",
    "North",  "West",  "East",  "South", "Lake",  "Hill",  "Iron", "Silver",
    "Golden", "Red",   "Black", "White", "New",   "Old",   "High", "Bright"};

constexpr std::array<const char*, 16> kCitySyllablesB = {
    "field", "ton",   "ville", "burg",  "ford",  "haven", "port", "wood",
    "dale",  "brook", "mont",  "crest", "shore", "gate",  "view", "bridge"};

constexpr std::array<const char*, 16> kCountryStems = {
    "Vela", "Kora", "Mira", "Talu", "Zande", "Ostra", "Lumi", "Quira",
    "Bresk", "Navo", "Selva", "Tyrro", "Ardan", "Helvi", "Juno", "Pavi"};

constexpr std::array<const char*, 20> kMascots = {
    "Tigers",  "Eagles",   "Sharks",   "Wolves",  "Hawks",
    "Bulls",   "Raptors",  "Pirates",  "Comets",  "Knights",
    "Falcons", "Bears",    "Panthers", "Dragons", "Storm",
    "Titans",  "Rangers",  "Chargers", "Blaze",   "Royals"};

constexpr std::array<const char*, 20> kMovieAdjectives = {
    "Silent",  "Crimson", "Endless", "Hidden", "Broken",  "Golden",
    "Midnight", "Savage",  "Electric", "Frozen", "Burning", "Lost",
    "Final",   "Distant", "Shattered", "Rising", "Falling", "Secret",
    "Wild",    "Quiet"};

constexpr std::array<const char*, 20> kMovieNouns = {
    "Horizon", "Empire", "Garden",  "Symphony", "Mirror",  "Voyage",
    "Kingdom", "Echo",   "Harvest", "Protocol", "Paradox", "Summit",
    "Tide",    "Circuit", "Lantern", "Orchard",  "Frontier", "Cipher",
    "Monsoon", "Eclipse"};

constexpr std::array<const char*, 16> kSongWords = {
    "Love",  "Night", "Fire",  "Rain",  "Heart", "Dream", "Road",  "Light",
    "Ocean", "Star",  "Ghost", "Dance", "Wire",  "Glass", "Smoke", "Thunder"};

constexpr std::array<const char*, 16> kBandPrefixes = {
    "The",     "Electric", "Neon",   "Velvet", "Cosmic",  "Broken",
    "Silver",  "Midnight", "Plastic", "Golden", "Crystal", "Savage",
    "Hollow",  "Paper",    "Iron",   "Lunar"};

constexpr std::array<const char*, 16> kBandNouns = {
    "Foxes",   "Machines", "Rivers",  "Saints",  "Owls",    "Mirrors",
    "Engines", "Shadows",  "Tigers",  "Pilots",  "Castles", "Arrows",
    "Giants",  "Wolves",   "Lanterns", "Meteors"};

constexpr std::array<const char*, 16> kOccupationNames = {
    "basketball player", "actor",       "film director", "professor",
    "singer",            "guitarist",   "novelist",      "chef",
    "architect",         "journalist",  "physicist",     "painter",
    "footballer",        "comedian",    "producer",      "entrepreneur"};

constexpr std::array<const char*, 12> kGenreNames = {
    "drama",    "comedy", "thriller", "science fiction", "romance",
    "horror",   "action", "fantasy",  "documentary",     "mystery",
    "western",  "musical"};

std::string MakePersonAliases(const std::string& full_name,
                              std::vector<std::string>* aliases) {
  // "Michael Jordan" -> aliases "Michael Jordan", "M. Jordan".
  const size_t space = full_name.find(' ');
  if (space != std::string::npos && space > 0) {
    std::string initial;
    initial += full_name[0];
    initial += ". ";
    initial += full_name.substr(space + 1);
    aliases->push_back(initial);
  }
  return full_name;
}

}  // namespace

SchemaHandles InstallStandardSchema(KnowledgeGraph* kg) {
  Ontology& on = kg->ontology();
  SchemaHandles h;
  h.thing = on.AddType("Thing");
  h.person = on.AddType("Person", h.thing);
  h.athlete = on.AddType("Athlete", h.person);
  h.musician = on.AddType("Musician", h.person);
  h.actor = on.AddType("Actor", h.person);
  h.director = on.AddType("Director", h.person);
  h.professor = on.AddType("Professor", h.person);
  h.creative_work = on.AddType("CreativeWork", h.thing);
  h.movie = on.AddType("Movie", h.creative_work);
  h.song = on.AddType("Song", h.creative_work);
  h.organization = on.AddType("Organization", h.thing);
  h.sports_team = on.AddType("SportsTeam", h.organization);
  h.band = on.AddType("Band", h.organization);
  h.university = on.AddType("University", h.organization);
  h.place = on.AddType("Place", h.thing);
  h.city = on.AddType("City", h.place);
  h.country = on.AddType("Country", h.place);
  h.occupation_type = on.AddType("Occupation", h.thing);
  h.genre_type = on.AddType("Genre", h.thing);

  auto entity_pred = [&](const char* name, TypeId domain, TypeId range,
                         bool functional, const char* surface) {
    PredicateMeta m;
    m.name = name;
    m.domain = domain;
    m.range_kind = Value::Kind::kEntity;
    m.range_type = range;
    m.functional = functional;
    m.embedding_relevant = true;
    m.surface_form = surface;
    return on.AddPredicate(std::move(m));
  };
  auto literal_pred = [&](const char* name, TypeId domain, Value::Kind kind,
                          bool functional, const char* surface) {
    PredicateMeta m;
    m.name = name;
    m.domain = domain;
    m.range_kind = kind;
    m.functional = functional;
    // Literal facts (heights, library ids, follower counts) are exactly
    // the facts §2 says to filter out of embedding training views.
    m.embedding_relevant = false;
    m.surface_form = surface;
    return on.AddPredicate(std::move(m));
  };

  h.acted_in = entity_pred("acted_in", h.actor, h.movie, false, "movies");
  h.directed = entity_pred("directed", h.director, h.movie, false,
                           "movies directed");
  h.spouse = entity_pred("spouse", h.person, h.person, true, "spouse");
  h.plays_for =
      entity_pred("plays_for", h.athlete, h.sports_team, true, "team");
  h.member_of = entity_pred("member_of", h.musician, h.band, false, "band");
  h.performed = entity_pred("performed", h.band, h.song, false, "songs");
  h.team_city =
      entity_pred("team_city", h.sports_team, h.city, true, "home city");
  h.born_in = entity_pred("born_in", h.person, h.city, true, "birthplace");
  h.city_in = entity_pred("city_in", h.city, h.country, true, "country");
  h.works_at =
      entity_pred("works_at", h.professor, h.university, true, "university");
  h.occupation = entity_pred("occupation", h.person, h.occupation_type, false,
                             "occupation");
  h.genre = entity_pred("genre", h.movie, h.genre_type, false, "genre");
  h.studied_at =
      entity_pred("studied_at", h.person, h.university, false, "alma mater");

  h.date_of_birth = literal_pred("date_of_birth", h.person,
                                 Value::Kind::kDate, true, "date of birth");
  h.height_cm =
      literal_pred("height_cm", h.person, Value::Kind::kInt, true, "height");
  h.library_id = literal_pred("national_library_id", h.person,
                              Value::Kind::kString, true, "library id");
  h.follower_count = literal_pred("follower_count", h.person,
                                  Value::Kind::kInt, true, "followers");
  h.release_year = literal_pred("release_year", h.movie, Value::Kind::kInt,
                                true, "release year");
  h.population = literal_pred("population", h.city, Value::Kind::kInt, true,
                              "population");
  h.founded_year = literal_pred("founded_year", h.organization,
                                Value::Kind::kInt, true, "founded");
  h.net_worth = literal_pred("net_worth", h.person, Value::Kind::kDouble,
                             true, "net worth");
  return h;
}

GeneratedKg GenerateKg(const KgGeneratorConfig& config) {
  GeneratedKg out;
  KnowledgeGraph& kg = out.kg;
  out.schema = InstallStandardSchema(&kg);
  const SchemaHandles& h = out.schema;
  EntityCatalog& cat = kg.catalog();
  Rng rng(config.seed);

  const SourceId src_curated = kg.AddSource("curated", 0.95);
  const SourceId src_feeds = kg.AddSource("licensed_feeds", 0.8);
  const SourceId src_noise = kg.AddSource("web_crawl_legacy", 0.4);

  // Community structure: entities cluster by country so that the graph
  // has learnable block structure (real KGs are strongly assortative —
  // actors co-star within film industries, athletes play in national
  // leagues). Each non-place entity gets a community id; links stay
  // inside the community with probability `kCommunityAffinity`.
  constexpr double kCommunityAffinity = 0.85;

  // ---- Places ----
  std::vector<EntityId> countries;
  for (int i = 0; i < config.num_countries; ++i) {
    std::string name = std::string(kCountryStems[i % kCountryStems.size()]);
    name += (i < static_cast<int>(kCountryStems.size())) ? "nia" : "land";
    if (i >= static_cast<int>(kCountryStems.size())) {
      name += std::to_string(i / kCountryStems.size());
    }
    countries.push_back(
        cat.AddEntity(name, {h.country}, 0.0, "A country."));
  }
  std::vector<EntityId> cities;
  std::vector<size_t> city_community;  // index into `countries`
  for (int i = 0; i < config.num_cities; ++i) {
    std::string name =
        std::string(kCitySyllablesA[i % kCitySyllablesA.size()]) +
        kCitySyllablesB[(i / kCitySyllablesA.size() + i) %
                        kCitySyllablesB.size()];
    EntityId city = cat.AddEntity(name, {h.city}, 0.0, "A city.");
    cities.push_back(city);
    const size_t community = rng.Uniform(countries.size());
    city_community.push_back(community);
    kg.AddFact(city, h.city_in, Value::Entity(countries[community]),
               src_curated);
    kg.AddFact(city, h.population,
               Value::Int(rng.UniformInt(20000, 9000000)), src_feeds);
  }

  // Picks an index into `pool` preferring items of `community`.
  auto community_pick = [&](const std::vector<EntityId>& pool,
                            const std::vector<size_t>& pool_community,
                            size_t community) -> EntityId {
    if (rng.Bernoulli(kCommunityAffinity)) {
      // Reservoir-sample a same-community member.
      EntityId chosen;
      size_t seen = 0;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (pool_community[i] != community) continue;
        ++seen;
        if (rng.Uniform(seen) == 0) chosen = pool[i];
      }
      if (chosen.valid()) return chosen;
    }
    return pool[rng.Uniform(pool.size())];
  };

  // ---- Occupations & genres ----
  std::vector<EntityId> occupations;
  for (int i = 0; i < config.num_occupations; ++i) {
    occupations.push_back(cat.AddEntity(
        kOccupationNames[i % kOccupationNames.size()], {h.occupation_type},
        0.0, "An occupation."));
  }
  std::vector<EntityId> genres;
  for (int i = 0; i < config.num_genres; ++i) {
    genres.push_back(cat.AddEntity(kGenreNames[i % kGenreNames.size()],
                                   {h.genre_type}, 0.0, "A genre."));
  }

  // ---- Universities ----
  std::vector<EntityId> universities;
  std::vector<size_t> university_community;
  for (int i = 0; i < config.num_universities; ++i) {
    const size_t city_idx = rng.Uniform(cities.size());
    const std::string& city_name = cat.name(cities[city_idx]);
    std::string name = "University of " + city_name;
    if (cat.FindByName(name).ok()) name += " Tech";
    universities.push_back(
        cat.AddEntity(name, {h.university}, 0.0, "A university."));
    university_community.push_back(city_community[city_idx]);
    kg.AddFact(universities.back(), h.founded_year,
               Value::Int(rng.UniformInt(1820, 1990)), src_curated);
  }

  // ---- Teams ----
  std::vector<EntityId> teams;
  std::vector<size_t> team_community;
  for (int i = 0; i < config.num_teams; ++i) {
    const size_t city_idx = rng.Uniform(cities.size());
    EntityId city = cities[city_idx];
    std::string name =
        cat.name(city) + " " + kMascots[i % kMascots.size()];
    EntityId team = cat.AddEntity(name, {h.sports_team}, 0.0,
                                  "A professional sports team.");
    cat.AddAlias(team, kMascots[i % kMascots.size()]);  // "the Tigers"
    teams.push_back(team);
    team_community.push_back(city_community[city_idx]);
    kg.AddFact(team, h.team_city, Value::Entity(city), src_curated);
    kg.AddFact(team, h.founded_year,
               Value::Int(rng.UniformInt(1900, 2000)), src_curated);
  }

  // ---- Bands ----
  std::vector<EntityId> bands;
  std::vector<size_t> band_community;
  for (int i = 0; i < config.num_bands; ++i) {
    std::string name =
        std::string(kBandPrefixes[rng.Uniform(kBandPrefixes.size())]) + " " +
        kBandNouns[i % kBandNouns.size()];
    if (cat.FindByName(name).ok()) name += " " + std::to_string(i);
    bands.push_back(cat.AddEntity(name, {h.band}, 0.0, "A music band."));
    band_community.push_back(rng.Uniform(countries.size()));
    kg.AddFact(bands.back(), h.founded_year,
               Value::Int(rng.UniformInt(1960, 2015)), src_feeds);
  }

  // ---- Songs ----
  std::vector<EntityId> songs;
  for (int i = 0; i < config.num_songs; ++i) {
    std::string name = std::string(kSongWords[rng.Uniform(kSongWords.size())]) +
                       " " + kSongWords[i % kSongWords.size()];
    if (cat.FindByName(name).ok()) name += " (Part " + std::to_string(i) + ")";
    songs.push_back(cat.AddEntity(name, {h.song}, 0.0, "A song."));
  }
  for (EntityId song : songs) {
    kg.AddFact(rng.Pick(bands), h.performed, Value::Entity(song), src_feeds);
  }

  // ---- Movies ----
  std::vector<EntityId> movies;
  std::vector<size_t> movie_community;
  for (int i = 0; i < config.num_movies; ++i) {
    std::string name =
        "The " +
        std::string(kMovieAdjectives[rng.Uniform(kMovieAdjectives.size())]) +
        " " + kMovieNouns[i % kMovieNouns.size()];
    if (cat.FindByName(name).ok()) name += " " + std::to_string(1 + i % 3);
    EntityId movie = cat.AddEntity(name, {h.movie}, 0.0, "A film.");
    movies.push_back(movie);
    movie_community.push_back(rng.Uniform(countries.size()));
    kg.AddFact(movie, h.release_year,
               Value::Int(rng.UniformInt(1970, 2023)), src_curated);
    const int num_genres = 1 + static_cast<int>(rng.Uniform(2));
    for (int g = 0; g < num_genres; ++g) {
      kg.AddFact(movie, h.genre, Value::Entity(rng.Pick(genres)),
                 src_curated);
    }
  }

  // ---- Persons ----
  // Profession mix: weights for athlete/musician/actor/director/professor.
  const std::array<TypeId, 5> professions = {h.athlete, h.musician, h.actor,
                                             h.director, h.professor};
  const std::array<double, 5> profession_weights = {0.25, 0.25, 0.25, 0.10,
                                                    0.15};
  std::vector<EntityId> persons;
  std::vector<TypeId> person_profession;
  std::unordered_map<std::string, std::vector<EntityId>> by_full_name;

  auto pick_profession = [&]() {
    double u = rng.NextDouble();
    for (size_t i = 0; i < professions.size(); ++i) {
      if (u < profession_weights[i]) return professions[i];
      u -= profession_weights[i];
    }
    return professions.back();
  };

  for (int i = 0; i < config.num_persons; ++i) {
    const TypeId profession = pick_profession();
    std::string full_name;
    bool forced_ambiguous = false;
    if (!by_full_name.empty() &&
        rng.Bernoulli(config.ambiguous_name_fraction)) {
      // Reuse an existing name held by someone of a different profession.
      for (int attempt = 0; attempt < 8; ++attempt) {
        // person_profession is parallel to persons — index it with the
        // person's position, not the global catalog id.
        const size_t pos = rng.Uniform(persons.size());
        const EntityId other = persons[pos];
        if (person_profession[pos] != profession) {
          full_name = cat.name(other);
          forced_ambiguous = true;
          break;
        }
      }
    }
    if (full_name.empty()) {
      full_name =
          std::string(kFirstNames[rng.Uniform(kFirstNames.size())]) + " " +
          kLastNames[rng.Uniform(kLastNames.size())];
    }
    std::vector<std::string> aliases;
    MakePersonAliases(full_name, &aliases);
    EntityId person = cat.AddEntity(full_name, {h.person, profession}, 0.0,
                                    "A person.");
    for (const auto& a : aliases) cat.AddAlias(person, a);
    persons.push_back(person);
    person_profession.push_back(profession);
    by_full_name[full_name].push_back(person);
    (void)forced_ambiguous;
  }
  for (auto& [name, group] : by_full_name) {
    if (group.size() > 1) out.ambiguous_groups.push_back(group);
  }

  // Popularity: zipf over a random permutation so ids are uncorrelated
  // with rank.
  {
    std::vector<size_t> order(persons.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);
    for (size_t rank = 0; rank < order.size(); ++rank) {
      const double pop =
          1.0 / std::pow(static_cast<double>(rank + 1), 0.35);
      cat.SetPopularity(persons[order[rank]], pop);
    }
    // Non-person popularity is milder.
    auto assign_pop = [&](const std::vector<EntityId>& ids, double base) {
      for (EntityId e : ids) {
        cat.SetPopularity(e, base * (0.3 + 0.7 * rng.NextDouble()));
      }
    };
    assign_pop(movies, 0.6);
    assign_pop(teams, 0.7);
    assign_pop(bands, 0.5);
    assign_pop(cities, 0.4);
    assign_pop(songs, 0.3);
    assign_pop(universities, 0.35);
    assign_pop(countries, 0.5);
    assign_pop(occupations, 0.45);
    assign_pop(genres, 0.3);
  }

  // ---- Person relational facts ----
  auto add_occupation_for = [&](EntityId p, TypeId prof) {
    // Primary occupation aligned with profession; extra occupations with
    // decreasing probability (multi-valued fact-ranking workload).
    size_t primary = 0;
    if (prof == h.athlete) primary = 0;       // basketball player
    else if (prof == h.actor) primary = 1;    // actor
    else if (prof == h.director) primary = 2; // film director
    else if (prof == h.professor) primary = 3;
    else primary = 4;                         // singer
    kg.AddFact(p, h.occupation,
               Value::Entity(occupations[primary % occupations.size()]),
               src_curated);
    double extra_prob = 0.35;
    while (rng.Bernoulli(extra_prob)) {
      kg.AddFact(p, h.occupation, Value::Entity(rng.Pick(occupations)),
                 src_feeds, 0.8);
      extra_prob *= 0.5;
    }
  };

  std::vector<size_t> person_community(persons.size());
  for (size_t i = 0; i < persons.size(); ++i) {
    const EntityId p = persons[i];
    const TypeId prof = person_profession[i];
    const size_t city_idx = rng.Uniform(cities.size());
    const size_t community = city_community[city_idx];
    person_community[i] = community;
    kg.AddFact(p, h.born_in, Value::Entity(cities[city_idx]), src_curated);
    add_occupation_for(p, prof);
    if (rng.Bernoulli(0.25)) {
      kg.AddFact(
          p, h.studied_at,
          Value::Entity(community_pick(universities, university_community,
                                       community)),
          src_feeds, 0.85);
    }
    if (prof == h.athlete) {
      kg.AddFact(p, h.plays_for,
                 Value::Entity(community_pick(teams, team_community,
                                              community)),
                 src_curated);
    } else if (prof == h.musician) {
      kg.AddFact(p, h.member_of,
                 Value::Entity(community_pick(bands, band_community,
                                              community)),
                 src_curated);
    } else if (prof == h.actor) {
      const int n = 1 + static_cast<int>(rng.Uniform(5));
      for (int k = 0; k < n; ++k) {
        kg.AddFact(p, h.acted_in,
                   Value::Entity(community_pick(movies, movie_community,
                                                community)),
                   src_curated);
      }
    } else if (prof == h.director) {
      const int n = 1 + static_cast<int>(rng.Uniform(4));
      for (int k = 0; k < n; ++k) {
        kg.AddFact(p, h.directed,
                   Value::Entity(community_pick(movies, movie_community,
                                                community)),
                   src_curated);
      }
    } else if (prof == h.professor) {
      kg.AddFact(p, h.works_at,
                 Value::Entity(community_pick(universities,
                                              university_community,
                                              community)),
                 src_curated);
    }
  }
  // Spouses: pair up roughly two thirds of persons, preferring partners
  // from the same community.
  {
    std::vector<std::vector<size_t>> by_community(countries.size());
    for (size_t i = 0; i < persons.size(); ++i) {
      by_community[person_community[i]].push_back(i);
    }
    for (auto& group : by_community) {
      rng.Shuffle(&group);
      for (size_t i = 0; i + 1 < group.size() * 2 / 3; i += 2) {
        const EntityId a = persons[group[i]];
        const EntityId b = persons[group[i + 1]];
        kg.AddFact(a, h.spouse, Value::Entity(b), src_curated);
        kg.AddFact(b, h.spouse, Value::Entity(a), src_curated);
      }
    }
  }

  // ---- Functional literal facts with withheld / stale injection ----
  auto add_functional = [&](EntityId s, PredicateId p, Value true_value,
                            Value stale_value) {
    GroundTruthFact fact{s, p, true_value, true};
    const double u = rng.NextDouble();
    if (u < config.withheld_fact_fraction) {
      fact.in_kg = false;
      out.withheld_facts.push_back(fact);
    } else if (u < config.withheld_fact_fraction + config.stale_fact_fraction) {
      const TripleIdx idx =
          kg.AddFact(s, p, stale_value, src_feeds, 0.9, /*timestamp=*/1);
      out.stale_facts.push_back(StaleFact{idx, true_value});
    } else {
      kg.AddFact(s, p, true_value, src_curated);
    }
    out.functional_facts.push_back(fact);
  };

  for (EntityId p : persons) {
    const int year = static_cast<int>(rng.UniformInt(1930, 2004));
    const int month = static_cast<int>(rng.UniformInt(1, 12));
    const int day = static_cast<int>(rng.UniformInt(1, 28));
    add_functional(
        p, h.date_of_birth, Value::OfDate(Date::FromYmd(year, month, day)),
        Value::OfDate(Date::FromYmd(year - 1, month, day)));
    const int64_t height = rng.UniformInt(150, 210);
    int64_t stale_height = rng.UniformInt(150, 210);
    if (stale_height == height) stale_height = height + 1;  // stale must differ
    add_functional(p, h.height_cm, Value::Int(height),
                   Value::Int(stale_height));
    if (rng.Bernoulli(0.6)) {
      kg.AddFact(p, h.library_id,
                 Value::String("NLID" + std::to_string(100000 + p.value())),
                 src_feeds, 0.99);
    }
    if (rng.Bernoulli(0.5)) {
      kg.AddFact(p, h.follower_count,
                 Value::Int(rng.UniformInt(100, 50000000)), src_noise, 0.6);
    }
    if (rng.Bernoulli(0.2)) {
      kg.AddFact(p, h.net_worth,
                 Value::Double(rng.UniformDouble(1e5, 5e8)), src_noise, 0.5);
    }
  }

  // ---- Noise edges (open-domain junk the embedding view must survive) --
  const size_t num_noise = static_cast<size_t>(
      static_cast<double>(kg.num_triples()) * config.noise_fact_fraction);
  const std::array<PredicateId, 4> noise_preds = {h.acted_in, h.spouse,
                                                  h.member_of, h.plays_for};
  for (size_t i = 0; i < num_noise; ++i) {
    const EntityId s = persons[rng.Uniform(persons.size())];
    const PredicateId p = noise_preds[rng.Uniform(noise_preds.size())];
    EntityId o;
    if (p == h.acted_in) o = rng.Pick(movies);
    else if (p == h.spouse) o = rng.Pick(persons);
    else if (p == h.member_of) o = rng.Pick(bands);
    else o = rng.Pick(teams);
    const TripleIdx idx =
        kg.AddFact(s, p, Value::Entity(o), src_noise, 0.3);
    out.noise_triples.push_back(idx);
  }

  return out;
}

}  // namespace saga::kg
