#ifndef SAGA_KG_VALUE_H_
#define SAGA_KG_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/serialization.h"
#include "common/status.h"
#include "kg/ids.h"

namespace saga::kg {

/// Calendar date stored as yyyymmdd (e.g. 19790723). Good enough for
/// fact values; no timezone semantics.
struct Date {
  int32_t ymd = 0;

  static Date FromYmd(int year, int month, int day) {
    return Date{year * 10000 + month * 100 + day};
  }
  int year() const { return ymd / 10000; }
  int month() const { return (ymd / 100) % 100; }
  int day() const { return ymd % 100; }

  /// "YYYY-MM-DD".
  std::string ToString() const;
  /// Parses "YYYY-MM-DD"; returns false on malformed input.
  static bool Parse(std::string_view s, Date* out);

  friend bool operator==(Date a, Date b) { return a.ymd == b.ymd; }
  friend bool operator<(Date a, Date b) { return a.ymd < b.ymd; }
};

/// Object position of a triple: either a link to another entity or a
/// typed literal. Small tagged union with value semantics.
class Value {
 public:
  enum class Kind : uint8_t {
    kEntity = 0,
    kString = 1,
    kInt = 2,
    kDouble = 3,
    kDate = 4,
    kBool = 5,
  };

  Value() : kind_(Kind::kString) {}

  static Value Entity(EntityId id);
  static Value String(std::string s);
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value OfDate(Date d);
  static Value Bool(bool b);

  Kind kind() const { return kind_; }
  bool is_entity() const { return kind_ == Kind::kEntity; }
  bool is_literal() const { return kind_ != Kind::kEntity; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Accessors assume the matching kind; checked by assert in debug.
  EntityId entity() const;
  const std::string& string_value() const;
  int64_t int_value() const;
  double double_value() const;
  Date date_value() const;
  bool bool_value() const;

  /// Canonical display string; entity values render as "E<id>".
  std::string ToString() const;

  /// Stable 64-bit hash over kind + payload; used for grouping candidate
  /// extraction values.
  uint64_t Hash() const;

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, Value* out);

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  Kind kind_;
  EntityId entity_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace saga::kg

#endif  // SAGA_KG_VALUE_H_
