#ifndef SAGA_KG_TRIPLE_H_
#define SAGA_KG_TRIPLE_H_

#include <cstdint>
#include <string>

#include "kg/ids.h"
#include "kg/value.h"

namespace saga::kg {

/// Where a fact came from and how much we trust it. Every triple in an
/// open-domain KG carries provenance; ODKE and fact verification key off
/// it (§4: veracity).
struct Provenance {
  SourceId source;
  /// Extractor / ingestion confidence in [0, 1].
  double confidence = 1.0;
  /// Logical ingestion time (monotone per KG); staleness detection
  /// compares against the profiler's freshness horizon.
  int64_t timestamp = 0;
};

/// A single (subject, predicate, object) fact plus provenance.
struct Triple {
  EntityId subject;
  PredicateId predicate;
  Value object;
  Provenance provenance;
};

/// Dense index of a triple inside a TripleStore. Stable for the life of
/// the store (deletions tombstone rather than reindex).
using TripleIdx = uint32_t;

constexpr TripleIdx kInvalidTripleIdx = 0xFFFFFFFFu;

}  // namespace saga::kg

#endif  // SAGA_KG_TRIPLE_H_
