#ifndef SAGA_KG_TRIPLE_STORE_H_
#define SAGA_KG_TRIPLE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/serialization.h"
#include "common/status.h"
#include "kg/ids.h"
#include "kg/triple.h"

namespace saga::kg {

/// Indexed in-memory triple store with SP / P / O-entity access paths.
/// Triples are appended; deletions tombstone in place so TripleIdx stays
/// stable (views and annotation indexes hold TripleIdx references).
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Appends a triple; duplicates are allowed (multi-source facts).
  TripleIdx Add(Triple t);

  /// Tombstones a triple. Safe to call twice.
  void Remove(TripleIdx idx);

  bool IsLive(TripleIdx idx) const { return !deleted_[idx]; }
  const Triple& triple(TripleIdx idx) const { return triples_[idx]; }
  size_t size() const { return triples_.size(); }
  size_t live_size() const { return live_count_; }

  /// Live triple indexes with the given subject.
  std::vector<TripleIdx> BySubject(EntityId s) const;
  /// Live triple indexes with the given subject and predicate.
  std::vector<TripleIdx> BySubjectPredicate(EntityId s, PredicateId p) const;
  /// Live triple indexes with the given predicate.
  std::vector<TripleIdx> ByPredicate(PredicateId p) const;
  /// Live triple indexes whose object is the given entity.
  std::vector<TripleIdx> ByObjectEntity(EntityId o) const;

  /// True if a live triple (s, p, o) exists.
  bool Contains(EntityId s, PredicateId p, const Value& o) const;

  /// Number of live triples per predicate; the view builder's
  /// min-frequency filter (§2) uses this.
  std::unordered_map<PredicateId, uint64_t> PredicateFrequencies() const;

  /// Invokes fn(idx, triple) for every live triple.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (TripleIdx i = 0; i < triples_.size(); ++i) {
      if (!deleted_[i]) fn(i, triples_[i]);
    }
  }

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, TripleStore* out);

 private:
  static uint64_t SpKey(EntityId s, PredicateId p);
  std::vector<TripleIdx> Filtered(const std::vector<TripleIdx>* v) const;

  std::vector<Triple> triples_;
  std::vector<bool> deleted_;
  size_t live_count_ = 0;

  std::unordered_map<EntityId, std::vector<TripleIdx>> by_subject_;
  std::unordered_map<uint64_t, std::vector<TripleIdx>> by_sp_;
  std::unordered_map<PredicateId, std::vector<TripleIdx>> by_predicate_;
  std::unordered_map<EntityId, std::vector<TripleIdx>> by_object_entity_;
};

}  // namespace saga::kg

#endif  // SAGA_KG_TRIPLE_STORE_H_
