#include "serving/fact_verifier.h"

#include <algorithm>

namespace saga::serving {

FactVerifier::FactVerifier(const graph_engine::GraphView* view,
                           const embedding::TrainedEmbeddings* emb)
    : view_(view), emb_(emb) {}

void FactVerifier::Calibrate(
    const std::vector<graph_engine::ViewEdge>& positives,
    const std::vector<graph_engine::ViewEdge>& negatives) {
  // Sweep candidate thresholds (all observed scores) and keep the one
  // maximizing balanced accuracy.
  std::vector<std::pair<double, bool>> scored;
  scored.reserve(positives.size() + negatives.size());
  for (const auto& e : positives) scored.emplace_back(ScoreLocal(e), true);
  for (const auto& e : negatives) scored.emplace_back(ScoreLocal(e), false);
  std::sort(scored.begin(), scored.end());

  const double num_pos = static_cast<double>(positives.size());
  const double num_neg = static_cast<double>(negatives.size());
  if (num_pos == 0 || num_neg == 0) {
    threshold_ = 0.0;
    return;
  }
  // Accepting everything: TPR=1, TNR=0.
  double best_balanced = 0.5;
  double best_threshold = scored.front().first - 1.0;
  double pos_below = 0;
  double neg_below = 0;
  for (size_t i = 0; i < scored.size(); ++i) {
    if (scored[i].second) {
      ++pos_below;
    } else {
      ++neg_below;
    }
    const double tpr = (num_pos - pos_below) / num_pos;
    const double tnr = neg_below / num_neg;
    const double balanced = (tpr + tnr) / 2.0;
    if (balanced > best_balanced) {
      best_balanced = balanced;
      best_threshold = scored[i].first;
    }
  }
  threshold_ = best_threshold;
}

FactVerifier::Verdict FactVerifier::Verify(kg::EntityId s, kg::PredicateId p,
                                           kg::EntityId o) const {
  Verdict v;
  const uint32_t ls = view_->local_entity(s);
  const uint32_t lr = view_->local_relation(p);
  const uint32_t lo = view_->local_entity(o);
  if (ls == graph_engine::GraphView::kNotInView ||
      lr == graph_engine::GraphView::kNotInView ||
      lo == graph_engine::GraphView::kNotInView) {
    return v;
  }
  v.scorable = true;
  v.score = emb_->Score(ls, lr, lo);
  v.plausible = v.score > threshold_;
  return v;
}

}  // namespace saga::serving
