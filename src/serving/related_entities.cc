#include "serving/related_entities.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace saga::serving {

RelatedEntitiesService::RelatedEntitiesService(
    const kg::KnowledgeGraph* kg, const graph_engine::GraphView* view,
    const EmbeddingService* embeddings)
    : RelatedEntitiesService(kg, view, embeddings, Options()) {}

RelatedEntitiesService::RelatedEntitiesService(
    const kg::KnowledgeGraph* kg, const graph_engine::GraphView* view,
    const EmbeddingService* embeddings, Options options)
    : kg_(kg), view_(view), embeddings_(embeddings), options_(options) {
  ppr_ = std::make_unique<graph_engine::PprEngine>(view_);
}

bool RelatedEntitiesService::PassesTypeFilter(kg::EntityId id,
                                              kg::TypeId type) const {
  if (!type.valid()) return true;
  for (kg::TypeId has : kg_->catalog().record(id).types) {
    if (kg_->ontology().IsSubtypeOf(has, type)) return true;
  }
  return false;
}

std::vector<std::pair<kg::EntityId, double>>
RelatedEntitiesService::PprRelated(kg::EntityId id, size_t k,
                                   kg::TypeId type_filter) const {
  const uint32_t local = view_->local_entity(id);
  std::vector<std::pair<kg::EntityId, double>> out;
  if (local == graph_engine::GraphView::kNotInView) return out;
  for (const auto& [l, score] : ppr_->TopKRelated(local, k * 8 + 16)) {
    const kg::EntityId e = view_->global_entity(l);
    if (!PassesTypeFilter(e, type_filter)) continue;
    out.emplace_back(e, score);
    if (out.size() == k) break;
  }
  return out;
}

Result<std::vector<std::pair<kg::EntityId, double>>>
RelatedEntitiesService::PprRelated(kg::EntityId id, size_t k,
                                   kg::TypeId type_filter,
                                   const RequestContext& ctx) const {
  const uint32_t local = view_->local_entity(id);
  std::vector<std::pair<kg::EntityId, double>> out;
  if (local == graph_engine::GraphView::kNotInView) return out;
  SAGA_ASSIGN_OR_RETURN(auto ranked, ppr_->TopKRelated(local, k * 8 + 16, ctx));
  for (const auto& [l, score] : ranked) {
    const kg::EntityId e = view_->global_entity(l);
    if (!PassesTypeFilter(e, type_filter)) continue;
    out.emplace_back(e, score);
    if (out.size() == k) break;
  }
  return out;
}

Result<std::vector<std::pair<kg::EntityId, double>>>
RelatedEntitiesService::Related(kg::EntityId id, size_t k,
                                kg::TypeId type_filter,
                                const RequestContext& ctx) const {
  SAGA_RETURN_IF_ERROR(ctx.Check("serving.related.start"));
  std::unordered_set<kg::EntityId> excluded;
  excluded.insert(id);
  if (options_.exclude_direct_neighbors) {
    for (kg::EntityId nb : kg_->Neighbors(id)) excluded.insert(nb);
  }
  auto filter = [&](std::vector<std::pair<kg::EntityId, double>> hits) {
    std::vector<std::pair<kg::EntityId, double>> out;
    for (auto& [e, s] : hits) {
      if (excluded.count(e)) continue;
      out.emplace_back(e, s);
      if (out.size() == k) break;
    }
    return out;
  };

  switch (options_.mode) {
    case Mode::kEmbedding: {
      SAGA_ASSIGN_OR_RETURN(
          auto hits,
          embeddings_->TopKNeighbors(
              id, k + excluded.size() + 8, type_filter, ctx));
      return filter(std::move(hits));
    }
    case Mode::kPpr: {
      SAGA_ASSIGN_OR_RETURN(
          auto hits,
          PprRelated(id, k + excluded.size() + 8, type_filter, ctx));
      return filter(std::move(hits));
    }
    case Mode::kBlend: {
      SAGA_ASSIGN_OR_RETURN(
          auto emb_hits,
          embeddings_->TopKNeighbors(id, k * 4 + 16, type_filter, ctx));
      SAGA_ASSIGN_OR_RETURN(auto ppr_hits,
                            PprRelated(id, k * 4 + 16, type_filter, ctx));
      std::unordered_map<kg::EntityId, double> fused;
      const double w = options_.blend_embedding_weight;
      for (size_t i = 0; i < emb_hits.size(); ++i) {
        fused[emb_hits[i].first] += w / (60.0 + static_cast<double>(i));
      }
      for (size_t i = 0; i < ppr_hits.size(); ++i) {
        fused[ppr_hits[i].first] +=
            (1.0 - w) / (60.0 + static_cast<double>(i));
      }
      std::vector<std::pair<kg::EntityId, double>> merged(fused.begin(),
                                                          fused.end());
      std::sort(merged.begin(), merged.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      return filter(std::move(merged));
    }
  }
  return Status::Internal("unreachable");
}

Result<std::vector<std::pair<kg::EntityId, double>>>
RelatedEntitiesService::Related(kg::EntityId id, size_t k,
                                kg::TypeId type_filter) const {
  std::unordered_set<kg::EntityId> excluded;
  excluded.insert(id);
  if (options_.exclude_direct_neighbors) {
    for (kg::EntityId nb : kg_->Neighbors(id)) excluded.insert(nb);
  }
  auto filter = [&](std::vector<std::pair<kg::EntityId, double>> hits) {
    std::vector<std::pair<kg::EntityId, double>> out;
    for (auto& [e, s] : hits) {
      if (excluded.count(e)) continue;
      out.emplace_back(e, s);
      if (out.size() == k) break;
    }
    return out;
  };

  switch (options_.mode) {
    case Mode::kEmbedding: {
      SAGA_ASSIGN_OR_RETURN(
          auto hits,
          embeddings_->TopKNeighbors(
              id, k + excluded.size() + 8, type_filter));
      return filter(std::move(hits));
    }
    case Mode::kPpr:
      return filter(PprRelated(id, k + excluded.size() + 8, type_filter));
    case Mode::kBlend: {
      SAGA_ASSIGN_OR_RETURN(
          auto emb_hits,
          embeddings_->TopKNeighbors(id, k * 4 + 16, type_filter));
      auto ppr_hits = PprRelated(id, k * 4 + 16, type_filter);
      // Reciprocal-rank fusion: robust to incomparable score scales.
      std::unordered_map<kg::EntityId, double> fused;
      const double w = options_.blend_embedding_weight;
      for (size_t i = 0; i < emb_hits.size(); ++i) {
        fused[emb_hits[i].first] += w / (60.0 + static_cast<double>(i));
      }
      for (size_t i = 0; i < ppr_hits.size(); ++i) {
        fused[ppr_hits[i].first] +=
            (1.0 - w) / (60.0 + static_cast<double>(i));
      }
      std::vector<std::pair<kg::EntityId, double>> merged(fused.begin(),
                                                          fused.end());
      std::sort(merged.begin(), merged.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      return filter(std::move(merged));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace saga::serving
