#ifndef SAGA_SERVING_ADMISSION_CONTROLLER_H_
#define SAGA_SERVING_ADMISSION_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "common/request_context.h"
#include "common/status.h"

namespace saga::serving {

/// Front-door admission control for the serving tier (paper §6 serves
/// interactive traffic under strict SLAs next to background/bulk work).
/// Two cooperating limiters:
///
/// - A concurrency limit: at most `max_concurrent` requests in flight,
///   and a tighter `low_priority_max_concurrent` sub-limit so bulk work
///   can never occupy the whole tier. Under overload low-priority
///   requests are shed first, with ResourceExhausted — the retryable
///   "back off and come back" signal — while high-priority traffic
///   keeps the remaining capacity.
/// - A token bucket on the *low-priority* class only
///   (`low_priority_rate_per_sec`, burst `low_priority_burst`): even
///   when the tier is idle, bulk traffic is smoothed so a burst cannot
///   instantly fill every slot ahead of interactive arrivals.
///
/// Requests whose deadline is already expired are rejected up front
/// with DeadlineExceeded (no point admitting work that cannot finish —
/// it only adds load exactly when load is the problem).
///
/// Usage:
///
///   auto ticket = admission.TryAdmit(ctx);
///   if (!ticket.ok()) return ticket.status();   // shed
///   ... serve ...                               // ticket releases slot
///
/// Metrics: `serving.admission.admitted` / `.shed_low` / `.shed_high` /
/// `.expired` counters and `serving.admission.in_flight` /
/// `.in_flight_low` gauges. Thread-safe; clock injectable for tests.
class AdmissionController {
 public:
  struct Options {
    /// Total in-flight request cap (both classes).
    int max_concurrent = 64;
    /// Sub-cap for low-priority requests; must be <= max_concurrent.
    int low_priority_max_concurrent = 16;
    /// Token-bucket refill rate for low-priority admits; <= 0 disables
    /// the rate limiter (concurrency caps still apply).
    double low_priority_rate_per_sec = 0.0;
    /// Bucket capacity (burst size). Defaults to one second of rate.
    double low_priority_burst = 0.0;
    /// Reject requests whose deadline has already expired.
    bool reject_expired = true;
    /// Injectable monotonic clock (nanoseconds) for tests.
    std::function<uint64_t()> now_ns;
  };

  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed_low = 0;
    uint64_t shed_high = 0;
    uint64_t rejected_expired = 0;
    int in_flight = 0;
    int in_flight_low = 0;
  };

  /// RAII admission slot: releases concurrency on destruction. Falsy
  /// (ok() == false) when the request was shed; the reason says why.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        priority_ = other.priority_;
        status_ = std::move(other.status_);
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool ok() const { return controller_ != nullptr; }
    /// OK when admitted; the shed reason otherwise.
    const Status& status() const { return status_; }

    /// Early release (before destruction), e.g. when handing the
    /// response off to a writer that is no longer "serving work".
    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* c, Priority p)
        : controller_(c), priority_(p), status_(Status::OK()) {}
    explicit Ticket(Status shed) : status_(std::move(shed)) {}

    AdmissionController* controller_ = nullptr;
    Priority priority_ = Priority::kHigh;
    Status status_ = Status::OK();
  };

  explicit AdmissionController(Options options);
  AdmissionController() : AdmissionController(Options()) {}

  /// Admission decision for one request. Never blocks: under overload
  /// the answer is an immediate shed (ResourceExhausted) so callers can
  /// retry with backoff or fail fast, not queue invisibly.
  Ticket TryAdmit(const RequestContext& ctx);

  Stats stats() const;
  const Options& options() const { return options_; }

 private:
  friend class Ticket;
  void Release(Priority p);
  uint64_t NowNs() const;
  /// Refills and tries to take one low-priority token. Caller holds mu_.
  bool TakeLowPriorityTokenLocked();

  Options options_;
  mutable std::mutex mu_;
  Stats stats_;
  double tokens_ = 0.0;
  uint64_t last_refill_ns_ = 0;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_ADMISSION_CONTROLLER_H_
