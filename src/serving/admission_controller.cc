#include "serving/admission_controller.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"

namespace saga::serving {

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  if (options_.low_priority_max_concurrent > options_.max_concurrent) {
    options_.low_priority_max_concurrent = options_.max_concurrent;
  }
  if (options_.low_priority_burst <= 0.0) {
    options_.low_priority_burst =
        std::max(1.0, options_.low_priority_rate_per_sec);
  }
  tokens_ = options_.low_priority_burst;
  last_refill_ns_ = NowNs();
  SAGA_GAUGE("serving.admission.concurrency_limit")
      .Set(static_cast<double>(options_.max_concurrent));
}

uint64_t AdmissionController::NowNs() const {
  if (options_.now_ns) return options_.now_ns();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool AdmissionController::TakeLowPriorityTokenLocked() {
  if (options_.low_priority_rate_per_sec <= 0.0) return true;
  const uint64_t now = NowNs();
  const double elapsed_s =
      static_cast<double>(now - last_refill_ns_) / 1e9;
  last_refill_ns_ = now;
  tokens_ = std::min(options_.low_priority_burst,
                     tokens_ + elapsed_s * options_.low_priority_rate_per_sec);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::Ticket AdmissionController::TryAdmit(
    const RequestContext& ctx) {
  // Expired work is load with no possible value — bounce it before it
  // takes a slot, regardless of priority.
  if (options_.reject_expired && ctx.expired()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_expired;
    SAGA_COUNTER("serving.admission.expired").Add();
    return Ticket(Status::DeadlineExceeded(
        "deadline already expired at admission"));
  }

  const Priority p = ctx.priority();
  std::lock_guard<std::mutex> lock(mu_);
  Status shed;
  if (stats_.in_flight >= options_.max_concurrent) {
    shed = Status::ResourceExhausted("serving tier at concurrency limit");
  } else if (p == Priority::kLow) {
    if (stats_.in_flight_low >= options_.low_priority_max_concurrent) {
      shed = Status::ResourceExhausted(
          "low-priority concurrency limit reached");
    } else if (!TakeLowPriorityTokenLocked()) {
      shed = Status::ResourceExhausted("low-priority rate limit exceeded");
    }
  }
  if (!shed.ok()) {
    if (p == Priority::kLow) {
      ++stats_.shed_low;
      SAGA_COUNTER("serving.admission.shed_low").Add();
    } else {
      ++stats_.shed_high;
      SAGA_COUNTER("serving.admission.shed_high").Add();
    }
    return Ticket(std::move(shed));
  }

  ++stats_.admitted;
  ++stats_.in_flight;
  if (p == Priority::kLow) ++stats_.in_flight_low;
  SAGA_COUNTER("serving.admission.admitted").Add();
  SAGA_GAUGE("serving.admission.in_flight")
      .Set(static_cast<double>(stats_.in_flight));
  SAGA_GAUGE("serving.admission.in_flight_low")
      .Set(static_cast<double>(stats_.in_flight_low));
  return Ticket(this, p);
}

void AdmissionController::Release(Priority p) {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.in_flight;
  if (p == Priority::kLow) --stats_.in_flight_low;
  SAGA_GAUGE("serving.admission.in_flight")
      .Set(static_cast<double>(stats_.in_flight));
  SAGA_GAUGE("serving.admission.in_flight_low")
      .Set(static_cast<double>(stats_.in_flight_low));
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release(priority_);
    controller_ = nullptr;
  }
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace saga::serving
