#ifndef SAGA_SERVING_REPLICA_ROUTER_H_
#define SAGA_SERVING_REPLICA_ROUTER_H_

#include <cstdint>
#include <vector>

namespace saga::serving {

/// Read-routing policy for a replica group: spread reads over healthy
/// followers whose replication lag is inside the staleness bound, fall
/// back to the leader for everything else.
///
/// The router is deliberately decoupled from saga::replication — it
/// consumes a plain snapshot of per-replica state (ReplicaView) so the
/// serving tier (embedding cache / KV reads) can route against any
/// source of replica health: the in-process ReplicaGroup today, a real
/// cluster membership service later.
///
/// Guarantee the chaos suite pins: while a healthy leader exists,
/// PickRead never returns a follower whose `lag_records` exceeds
/// `max_staleness_records`, and it never returns one marked unhealthy
/// (down or suspected by the leader's failure detector) — such reads
/// land on the leader instead. Reads from a chosen follower are
/// therefore bounded-stale in steady state: at most
/// `max_staleness_records` behind the group commit index at routing
/// time, and never from a divergent (uncommitted) tail, since lag is
/// measured in committed records. Last resort only — leader down AND
/// no follower inside the bound — the router degrades to the
/// least-stale healthy follower (counted as a `stale_fallback`) rather
/// than failing the read: availability over freshness, but only once
/// freshness is unattainable.
class ReplicaRouter {
 public:
  struct ReplicaView {
    int id = -1;
    bool is_leader = false;
    /// Alive and not suspected by the leader's per-peer detector.
    bool healthy = false;
    /// Committed records this replica is behind the group commit.
    uint64_t lag_records = 0;
  };

  struct Options {
    /// Max committed-record lag a follower may have and still serve.
    uint64_t max_staleness_records = 64;
    /// When false, all reads go to the leader (strongest reads at the
    /// cost of leader load).
    bool prefer_followers = true;
  };

  struct Stats {
    uint64_t follower_reads = 0;
    uint64_t leader_reads = 0;
    /// Healthy followers skipped because their lag exceeded the
    /// staleness bound (unhealthy replicas are not counted — they are
    /// not candidates at all).
    uint64_t stale_skips = 0;
    /// Reads served by a beyond-bound follower because no healthy
    /// leader and no in-bound follower existed.
    uint64_t stale_fallbacks = 0;
  };

  ReplicaRouter() : ReplicaRouter(Options()) {}
  explicit ReplicaRouter(Options options) : options_(options) {}

  /// Picks the replica id to serve a read: round-robin over eligible
  /// followers, else the leader, else the least-stale healthy follower
  /// (stale fallback), else -1 (no one can serve — caller surfaces
  /// Unavailable).
  int PickRead(const std::vector<ReplicaView>& replicas);

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  Stats stats_;
  uint64_t rr_ = 0;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_REPLICA_ROUTER_H_
