#ifndef SAGA_SERVING_VERSION_MANAGER_H_
#define SAGA_SERVING_VERSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "embedding/embedding_store.h"
#include "serving/embedding_service.h"
#include "storage/kv_store.h"

namespace saga::serving {

/// One immutable serving version of the graph: a KvStore (facts /
/// entity catalog), the embedding shard, and an optional ANN-backed
/// embedding service — loaded side by side with whatever is live and
/// flipped in atomically. The paper's serving tier rebuilds the whole
/// graph artifact set per growth cycle; versions are how a bad build
/// is rejected *before* it takes traffic (§6).
struct ServingVersion {
  std::string id;   // directory name, e.g. "v00042"
  std::string dir;  // version root on disk
  std::unique_ptr<storage::KvStore> kv;
  embedding::EmbeddingStore embeddings;
  /// Built when LoadVersion is asked for one; null otherwise.
  std::unique_ptr<EmbeddingService> service;
  /// Live key count at load time (catalog size invariant input).
  uint64_t key_count = 0;
};

/// Validated hot-swap of serving versions with automatic rollback.
///
/// Swap pipeline (SwapTo):
///   1. side-by-side: the candidate is fully loaded before the live
///      version is touched;
///   2. canary validation: checksum pass over every candidate table,
///      count/coverage invariants (absolute floor + max fraction of
///      the live catalog allowed to disappear), and a sampled
///      query-answer diff against the live version;
///   3. RCU-style flip: Current() hands out shared_ptr copies, so
///      in-flight requests finish on the version they started with
///      while new requests see the new pointer;
///   4. probation: the previous version is kept alive; if the error
///      rate over the first `probation_requests` outcomes exceeds
///      `rollback_error_rate`, the flip is undone automatically.
///
/// A rejected candidate never takes a request and the live version
/// keeps serving throughout — validation failure is FailedPrecondition
/// (deploy-time bug), checksum failure is DataLoss (rotted artifact).
///
/// Metrics: `version.swap.attempts/.committed/.rejected/.rollbacks`
/// counters, `version.swap.probation_errors` counter and
/// `version.serving.age_swaps` gauge (bumps per successful flip).
class VersionManager {
 public:
  struct ValidationOptions {
    /// Re-verify every block CRC of every candidate table plus the
    /// embedding shard before the flip.
    bool verify_checksums = true;
    /// Candidate must hold at least this many keys.
    uint64_t min_keys = 0;
    /// Fraction of the live catalog a candidate may drop, in [0,1].
    /// 0.1 = candidate must keep >= 90% of live keys.
    double max_key_drop_fraction = 0.1;
    /// Sampled query-answer diff: this many keys sampled from the live
    /// version and looked up in the candidate.
    size_t sample_queries = 16;
    /// Max fraction of sampled lookups allowed to miss in the
    /// candidate (changed values are expected across growth cycles;
    /// wholesale disappearance is not).
    double max_sample_miss_fraction = 0.25;
    uint64_t sample_seed = 0x5A6A;
  };

  struct Options {
    ValidationOptions validation;
    /// Outcomes counted after a flip before the swap is considered
    /// committed. 0 disables probation (flip is final immediately).
    uint64_t probation_requests = 100;
    /// Error-rate threshold over the probation window that triggers
    /// automatic rollback.
    double rollback_error_rate = 0.5;
  };

  struct LoadOptions {
    storage::KvStore::Options kv;
    /// Embedding shard file name inside the version dir; empty = none.
    std::string embeddings_file = "embeddings.bin";
    /// Also build an EmbeddingService (ANN index) over the shard.
    bool build_service = false;
    EmbeddingService::Options service;
  };

  struct Stats {
    uint64_t attempts = 0;
    uint64_t committed = 0;
    uint64_t rejected = 0;
    uint64_t rollbacks = 0;
    uint64_t probation_errors = 0;
    uint64_t probation_successes = 0;
  };

  explicit VersionManager(Options options);
  VersionManager() : VersionManager(Options()) {}

  /// Loads a version directory into a handle (KvStore recover + shard
  /// load + optional index build). No effect on what is being served.
  static Result<std::shared_ptr<ServingVersion>> LoadVersion(
      const std::string& id, const std::string& dir,
      const LoadOptions& options);

  /// Installs the first version without a live baseline (checksum and
  /// floor checks still apply; no diff, no probation).
  Status Activate(std::shared_ptr<ServingVersion> version);

  /// Full validated swap against the current version. On any
  /// validation failure the candidate is rejected and the live version
  /// keeps serving.
  Status SwapTo(std::shared_ptr<ServingVersion> candidate);

  /// The version serving new requests. Callers keep the shared_ptr for
  /// the duration of one request — versions die only once the last
  /// in-flight request drops its reference.
  std::shared_ptr<const ServingVersion> Current() const;
  std::string current_id() const;
  std::string previous_id() const;

  /// Post-swap health feedback: callers report request outcomes and
  /// the manager rolls back if probation goes bad. Cheap no-op when no
  /// probation is active.
  void RecordRequestOutcome(bool ok);
  bool InProbation() const;

  Stats stats() const;

 private:
  Status Validate(const ServingVersion& candidate,
                  const ServingVersion* live);
  void RollbackLocked();

  Options options_;

  mutable std::mutex mu_;
  std::shared_ptr<const ServingVersion> current_;
  std::shared_ptr<const ServingVersion> previous_;
  Stats stats_;
  bool in_probation_ = false;
  uint64_t probation_seen_ = 0;
  uint64_t probation_failed_ = 0;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_VERSION_MANAGER_H_
