#include "serving/lru_cache.h"

namespace saga::serving {

bool LruCache::Put(const std::string& key, std::string value) {
  if (key.size() + value.size() > capacity_bytes_) {
    return false;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    size_bytes_ -= it->second.value.size();
    size_bytes_ += value.size();
    it->second.value = std::move(value);
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
  } else {
    lru_.push_front(key);
    size_bytes_ += key.size() + value.size();
    entries_.emplace(key, Entry{std::move(value), lru_.begin()});
  }
  EvictIfNeeded();
  return true;
}

std::optional<std::string> LruCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return it->second.value;
}

void LruCache::EvictIfNeeded() {
  // size() > 1 spares the most-recently-touched entry (always
  // lru_.front(), and by the oversized-reject above always within
  // budget on its own).
  while (size_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    size_bytes_ -= victim.size() + it->second.value.size();
    entries_.erase(it);
    lru_.pop_back();
  }
}

}  // namespace saga::serving
