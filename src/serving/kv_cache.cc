#include "serving/kv_cache.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "common/metrics.h"
#include "common/serialization.h"

namespace saga::serving {

Result<std::unique_ptr<EmbeddingKvCache>> EmbeddingKvCache::Open(
    const std::string& dir, size_t memory_budget_bytes) {
  storage::KvStore::Options opts;
  opts.use_wal = false;  // cache contents are rebuildable
  // Flush/compaction run on the store's maintenance thread so a
  // rebuild never blocks the Get path behind storage maintenance.
  opts.background_maintenance = true;
  SAGA_ASSIGN_OR_RETURN(auto kv, storage::KvStore::Open(dir, opts));
  return std::unique_ptr<EmbeddingKvCache>(
      new EmbeddingKvCache(std::move(kv), memory_budget_bytes));
}

EmbeddingKvCache::EmbeddingKvCache(std::unique_ptr<storage::KvStore> kv,
                                   size_t memory_budget_bytes)
    : kv_(std::move(kv)) {
  const size_t per_shard =
      std::max<size_t>(memory_budget_bytes / kShards, size_t{1});
  for (auto& shard : shards_) {
    shard = std::make_unique<Shard>(per_shard);
  }
}

EmbeddingKvCache::Shard& EmbeddingKvCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % kShards];
}

std::string EmbeddingKvCache::KeyFor(kg::EntityId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "emb:%016llx",
                static_cast<unsigned long long>(id.value()));
  return buf;
}

std::string EmbeddingKvCache::Encode(const std::vector<float>& vec) {
  std::string out;
  BinaryWriter w(&out);
  w.PutFloatVector(vec);
  return out;
}

Result<std::vector<float>> EmbeddingKvCache::Decode(
    const std::string& bytes) {
  BinaryReader r(bytes);
  std::vector<float> vec;
  SAGA_RETURN_IF_ERROR(r.GetFloatVector(&vec));
  return vec;
}

Status EmbeddingKvCache::PutAll(const embedding::EmbeddingStore& store) {
  for (kg::EntityId id : store.Ids()) {
    SAGA_RETURN_IF_ERROR(Put(id, *store.Get(id)));
  }
  // No cache-level lock across the rebuild: concurrent Gets keep
  // serving from the LRU tier and from KvStore read snapshots while
  // the flush and compaction run.
  SAGA_RETURN_IF_ERROR(kv_->Flush());
  return kv_->CompactAll();
}

Status EmbeddingKvCache::Put(kg::EntityId id, const std::vector<float>& vec) {
  const std::string key = KeyFor(id);
  std::string encoded = Encode(vec);
  SAGA_RETURN_IF_ERROR(kv_->Put(key, encoded));
  // Refresh the in-memory tier if the key is resident: leaving the old
  // bytes in the LRU would serve a stale embedding forever to any
  // entity read before this update. Absent keys are not write-
  // allocated — the LRU stays read-driven (bulk precompute would
  // otherwise wipe the hot working set).
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.lru.Contains(key)) {
    (void)shard.lru.Put(key, std::move(encoded));
  }
  return Status::OK();
}

Result<std::vector<float>> EmbeddingKvCache::Get(kg::EntityId id) {
  obs::ScopedLatency timer(SAGA_LATENCY("serving.kv_cache.get_ns"));
  const std::string key = KeyFor(id);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto cached = shard.lru.Get(key)) {
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      SAGA_COUNTER("serving.kv_cache.memory_hits").Add();
      UpdateHitRateGauges();
      return Decode(*cached);
    }
  }
  // Disk probe outside any shard lock: a slow or compacting store must
  // not serialize unrelated reads behind this one.
  auto from_disk = kv_->Get(key);
  if (!from_disk.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    SAGA_COUNTER("serving.kv_cache.misses").Add();
    UpdateHitRateGauges();
    return from_disk.status();
  }
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  SAGA_COUNTER("serving.kv_cache.disk_hits").Add();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    (void)shard.lru.Put(key, from_disk.value());
  }
  UpdateHitRateGauges();
  return Decode(from_disk.value());
}

EmbeddingKvCache::Stats EmbeddingKvCache::stats() const {
  Stats s;
  s.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  return s;
}

void EmbeddingKvCache::UpdateHitRateGauges() const {
  // An LRU hit is exactly a memory hit and an LRU miss is exactly a
  // disk hit or full miss, so both gauges derive from the same atomic
  // tallies — no shard locks needed.
  const uint64_t memory = memory_hits_.load(std::memory_order_relaxed);
  const uint64_t disk = disk_hits_.load(std::memory_order_relaxed);
  const uint64_t miss = misses_.load(std::memory_order_relaxed);
  const uint64_t lookups = memory + disk + miss;
  if (lookups > 0) {
    SAGA_GAUGE("serving.kv_cache.hit_rate")
        .Set(static_cast<double>(memory + disk) /
             static_cast<double>(lookups));
    SAGA_GAUGE("serving.lru_cache.hit_rate")
        .Set(static_cast<double>(memory) / static_cast<double>(lookups));
  }
}

}  // namespace saga::serving
