#include "serving/kv_cache.h"

#include "common/serialization.h"

namespace saga::serving {

Result<std::unique_ptr<EmbeddingKvCache>> EmbeddingKvCache::Open(
    const std::string& dir, size_t memory_budget_bytes) {
  storage::KvStore::Options opts;
  opts.use_wal = false;  // cache contents are rebuildable
  SAGA_ASSIGN_OR_RETURN(auto kv, storage::KvStore::Open(dir, opts));
  return std::unique_ptr<EmbeddingKvCache>(
      new EmbeddingKvCache(std::move(kv), memory_budget_bytes));
}

std::string EmbeddingKvCache::KeyFor(kg::EntityId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "emb:%016llx",
                static_cast<unsigned long long>(id.value()));
  return buf;
}

std::string EmbeddingKvCache::Encode(const std::vector<float>& vec) {
  std::string out;
  BinaryWriter w(&out);
  w.PutFloatVector(vec);
  return out;
}

Result<std::vector<float>> EmbeddingKvCache::Decode(
    const std::string& bytes) {
  BinaryReader r(bytes);
  std::vector<float> vec;
  SAGA_RETURN_IF_ERROR(r.GetFloatVector(&vec));
  return vec;
}

Status EmbeddingKvCache::PutAll(const embedding::EmbeddingStore& store) {
  for (kg::EntityId id : store.Ids()) {
    SAGA_RETURN_IF_ERROR(Put(id, *store.Get(id)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  SAGA_RETURN_IF_ERROR(kv_->Flush());
  return kv_->CompactAll();
}

Status EmbeddingKvCache::Put(kg::EntityId id, const std::vector<float>& vec) {
  std::lock_guard<std::mutex> lock(mu_);
  return kv_->Put(KeyFor(id), Encode(vec));
}

Result<std::vector<float>> EmbeddingKvCache::Get(kg::EntityId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = KeyFor(id);
  if (auto cached = lru_.Get(key)) {
    ++stats_.memory_hits;
    return Decode(*cached);
  }
  auto from_disk = kv_->Get(key);
  if (!from_disk.ok()) {
    ++stats_.misses;
    return from_disk.status();
  }
  ++stats_.disk_hits;
  lru_.Put(key, from_disk.value());
  return Decode(from_disk.value());
}

}  // namespace saga::serving
