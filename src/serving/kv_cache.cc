#include "serving/kv_cache.h"

#include "common/metrics.h"
#include "common/serialization.h"

namespace saga::serving {

Result<std::unique_ptr<EmbeddingKvCache>> EmbeddingKvCache::Open(
    const std::string& dir, size_t memory_budget_bytes) {
  storage::KvStore::Options opts;
  opts.use_wal = false;  // cache contents are rebuildable
  SAGA_ASSIGN_OR_RETURN(auto kv, storage::KvStore::Open(dir, opts));
  return std::unique_ptr<EmbeddingKvCache>(
      new EmbeddingKvCache(std::move(kv), memory_budget_bytes));
}

std::string EmbeddingKvCache::KeyFor(kg::EntityId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "emb:%016llx",
                static_cast<unsigned long long>(id.value()));
  return buf;
}

std::string EmbeddingKvCache::Encode(const std::vector<float>& vec) {
  std::string out;
  BinaryWriter w(&out);
  w.PutFloatVector(vec);
  return out;
}

Result<std::vector<float>> EmbeddingKvCache::Decode(
    const std::string& bytes) {
  BinaryReader r(bytes);
  std::vector<float> vec;
  SAGA_RETURN_IF_ERROR(r.GetFloatVector(&vec));
  return vec;
}

Status EmbeddingKvCache::PutAll(const embedding::EmbeddingStore& store) {
  for (kg::EntityId id : store.Ids()) {
    SAGA_RETURN_IF_ERROR(Put(id, *store.Get(id)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  SAGA_RETURN_IF_ERROR(kv_->Flush());
  return kv_->CompactAll();
}

Status EmbeddingKvCache::Put(kg::EntityId id, const std::vector<float>& vec) {
  std::lock_guard<std::mutex> lock(mu_);
  return kv_->Put(KeyFor(id), Encode(vec));
}

Result<std::vector<float>> EmbeddingKvCache::Get(kg::EntityId id) {
  obs::ScopedLatency timer(SAGA_LATENCY("serving.kv_cache.get_ns"));
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = KeyFor(id);
  if (auto cached = lru_.Get(key)) {
    ++stats_.memory_hits;
    SAGA_COUNTER("serving.kv_cache.memory_hits").Add();
    UpdateHitRateGauges();
    return Decode(*cached);
  }
  auto from_disk = kv_->Get(key);
  if (!from_disk.ok()) {
    ++stats_.misses;
    SAGA_COUNTER("serving.kv_cache.misses").Add();
    UpdateHitRateGauges();
    return from_disk.status();
  }
  ++stats_.disk_hits;
  SAGA_COUNTER("serving.kv_cache.disk_hits").Add();
  lru_.Put(key, from_disk.value());
  UpdateHitRateGauges();
  return Decode(from_disk.value());
}

void EmbeddingKvCache::UpdateHitRateGauges() {
  // Called under mu_. Overall hit rate counts both tiers as hits; the
  // LRU gauge isolates the in-memory tier.
  const uint64_t lookups =
      stats_.memory_hits + stats_.disk_hits + stats_.misses;
  if (lookups > 0) {
    SAGA_GAUGE("serving.kv_cache.hit_rate")
        .Set(static_cast<double>(stats_.memory_hits + stats_.disk_hits) /
             static_cast<double>(lookups));
  }
  const uint64_t lru_lookups = lru_.hits() + lru_.misses();
  if (lru_lookups > 0) {
    SAGA_GAUGE("serving.lru_cache.hit_rate")
        .Set(static_cast<double>(lru_.hits()) /
             static_cast<double>(lru_lookups));
  }
}

}  // namespace saga::serving
