#include "serving/replica_router.h"

#include "common/metrics.h"

namespace saga::serving {

int ReplicaRouter::PickRead(const std::vector<ReplicaView>& replicas) {
  int leader = -1;
  std::vector<int> eligible;
  eligible.reserve(replicas.size());
  for (const ReplicaView& r : replicas) {
    if (r.is_leader && r.healthy) leader = r.id;
    if (r.is_leader || !options_.prefer_followers) continue;
    if (!r.healthy || r.lag_records > options_.max_staleness_records) {
      ++stats_.stale_skips;
      SAGA_COUNTER("serving.replica_router.stale_skips").Add();
      continue;
    }
    eligible.push_back(r.id);
  }
  if (!eligible.empty()) {
    ++stats_.follower_reads;
    SAGA_COUNTER("serving.replica_router.follower_reads").Add();
    return eligible[rr_++ % eligible.size()];
  }
  if (leader >= 0) {
    ++stats_.leader_reads;
    SAGA_COUNTER("serving.replica_router.leader_reads").Add();
    return leader;
  }
  return -1;
}

}  // namespace saga::serving
