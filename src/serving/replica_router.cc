#include "serving/replica_router.h"

#include "common/metrics.h"

namespace saga::serving {

int ReplicaRouter::PickRead(const std::vector<ReplicaView>& replicas) {
  int leader = -1;
  int fallback = -1;
  uint64_t fallback_lag = 0;
  std::vector<int> eligible;
  eligible.reserve(replicas.size());
  for (const ReplicaView& r : replicas) {
    if (r.is_leader && r.healthy) leader = r.id;
    if (r.is_leader) continue;
    // Unhealthy followers are simply not candidates — neither eligible
    // nor a fallback, and not a "stale" skip (that tally tracks the
    // staleness bound doing its job, not dead replicas).
    if (!r.healthy) continue;
    // Any healthy follower, however far behind, beats failing the read
    // outright if the leader also turns out to be down.
    if (fallback < 0 || r.lag_records < fallback_lag) {
      fallback = r.id;
      fallback_lag = r.lag_records;
    }
    if (!options_.prefer_followers) continue;
    if (r.lag_records > options_.max_staleness_records) {
      ++stats_.stale_skips;
      SAGA_COUNTER("serving.replica_router.stale_skips").Add();
      continue;
    }
    eligible.push_back(r.id);
  }
  if (!eligible.empty()) {
    ++stats_.follower_reads;
    SAGA_COUNTER("serving.replica_router.follower_reads").Add();
    return eligible[rr_++ % eligible.size()];
  }
  if (leader >= 0) {
    ++stats_.leader_reads;
    SAGA_COUNTER("serving.replica_router.leader_reads").Add();
    return leader;
  }
  if (fallback >= 0) {
    ++stats_.stale_fallbacks;
    SAGA_COUNTER("serving.replica_router.stale_fallbacks").Add();
    return fallback;
  }
  return -1;
}

}  // namespace saga::serving
