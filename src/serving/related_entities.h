#ifndef SAGA_SERVING_RELATED_ENTITIES_H_
#define SAGA_SERVING_RELATED_ENTITIES_H_

#include <memory>
#include <vector>

#include "common/request_context.h"
#include "common/result.h"
#include "graph_engine/ppr.h"
#include "graph_engine/view.h"
#include "kg/knowledge_graph.h"
#include "serving/embedding_service.h"

namespace saga::serving {

/// Related-entities service (§2): "other similar movie directors".
/// Two interchangeable engines — embedding k-NN and personalized
/// PageRank over the graph — plus a blend; the Fig-2 bench compares
/// them against ground truth.
class RelatedEntitiesService {
 public:
  enum class Mode { kEmbedding, kPpr, kBlend };

  struct Options {
    Mode mode = Mode::kEmbedding;
    double blend_embedding_weight = 0.5;
    /// Exclude entities directly linked to the query (users already
    /// know those; "related" should surface non-obvious peers).
    bool exclude_direct_neighbors = false;
  };

  RelatedEntitiesService(const kg::KnowledgeGraph* kg,
                         const graph_engine::GraphView* view,
                         const EmbeddingService* embeddings);
  RelatedEntitiesService(const kg::KnowledgeGraph* kg,
                         const graph_engine::GraphView* view,
                         const EmbeddingService* embeddings, Options options);

  /// Top-k related entities, optionally restricted by type.
  Result<std::vector<std::pair<kg::EntityId, double>>> Related(
      kg::EntityId id, size_t k,
      kg::TypeId type_filter = kg::TypeId::Invalid()) const;

  /// Deadline-aware variant: the budget propagates into both engines
  /// (embedding k-NN inherits the ANN breaker/hedging, PPR checks the
  /// deadline at push-loop boundaries). In blend mode the embedding leg
  /// runs first; PPR spends whatever budget remains.
  Result<std::vector<std::pair<kg::EntityId, double>>> Related(
      kg::EntityId id, size_t k, kg::TypeId type_filter,
      const RequestContext& ctx) const;

 private:
  std::vector<std::pair<kg::EntityId, double>> PprRelated(
      kg::EntityId id, size_t k, kg::TypeId type_filter) const;
  Result<std::vector<std::pair<kg::EntityId, double>>> PprRelated(
      kg::EntityId id, size_t k, kg::TypeId type_filter,
      const RequestContext& ctx) const;
  bool PassesTypeFilter(kg::EntityId id, kg::TypeId type) const;

  const kg::KnowledgeGraph* kg_;
  const graph_engine::GraphView* view_;
  const EmbeddingService* embeddings_;
  Options options_;
  std::unique_ptr<graph_engine::PprEngine> ppr_;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_RELATED_ENTITIES_H_
