#ifndef SAGA_SERVING_FACT_RANKER_H_
#define SAGA_SERVING_FACT_RANKER_H_

#include <string>
#include <vector>

#include "embedding/trainer.h"
#include "graph_engine/view.h"
#include "kg/knowledge_graph.h"

namespace saga::serving {

/// Importance ranking over multi-valued facts (§2 "Fact Ranking": for
/// "what is the occupation of X?" infer an importance ordering).
/// Score blends embedding plausibility with the object's popularity
/// prior; either signal can be ablated via the weights.
class FactRanker {
 public:
  struct Options {
    double embedding_weight = 1.0;
    double popularity_weight = 1.0;
  };

  struct RankedFact {
    kg::Value object;
    double score = 0.0;
    double embedding_score = 0.0;
    double popularity = 0.0;
  };

  FactRanker(const kg::KnowledgeGraph* kg,
             const graph_engine::GraphView* view,
             const embedding::TrainedEmbeddings* emb);
  FactRanker(const kg::KnowledgeGraph* kg,
             const graph_engine::GraphView* view,
             const embedding::TrainedEmbeddings* emb, Options options);

  /// All objects of (subject, predicate) ranked by blended importance,
  /// best first.
  std::vector<RankedFact> Rank(kg::EntityId subject,
                               kg::PredicateId predicate) const;

 private:
  const kg::KnowledgeGraph* kg_;
  const graph_engine::GraphView* view_;
  const embedding::TrainedEmbeddings* emb_;
  Options options_;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_FACT_RANKER_H_
