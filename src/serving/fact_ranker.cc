#include "serving/fact_ranker.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/trace.h"

namespace saga::serving {

FactRanker::FactRanker(const kg::KnowledgeGraph* kg,
                       const graph_engine::GraphView* view,
                       const embedding::TrainedEmbeddings* emb)
    : FactRanker(kg, view, emb, Options()) {}

FactRanker::FactRanker(const kg::KnowledgeGraph* kg,
                       const graph_engine::GraphView* view,
                       const embedding::TrainedEmbeddings* emb,
                       Options options)
    : kg_(kg), view_(view), emb_(emb), options_(options) {}

std::vector<FactRanker::RankedFact> FactRanker::Rank(
    kg::EntityId subject, kg::PredicateId predicate) const {
  obs::ScopedSpan span("serving.ranker.rank");
  obs::ScopedLatency timer(SAGA_LATENCY("serving.ranker.rank_ns"));
  std::vector<RankedFact> ranked;
  const uint32_t ls = view_->local_entity(subject);
  const uint32_t lr = view_->local_relation(predicate);

  // Collect embedding scores first so we can z-normalize before
  // blending with popularity (scales differ per model).
  for (const kg::Value& object : kg_->ObjectsOf(subject, predicate)) {
    RankedFact f;
    f.object = object;
    if (object.is_entity()) {
      f.popularity = kg_->catalog().popularity(object.entity());
      const uint32_t lo = view_->local_entity(object.entity());
      if (ls != graph_engine::GraphView::kNotInView &&
          lr != graph_engine::GraphView::kNotInView &&
          lo != graph_engine::GraphView::kNotInView) {
        f.embedding_score = emb_->Score(ls, lr, lo);
      }
    }
    ranked.push_back(std::move(f));
  }
  if (ranked.empty()) return ranked;

  double mean = 0.0;
  for (const auto& f : ranked) mean += f.embedding_score;
  mean /= static_cast<double>(ranked.size());
  double var = 0.0;
  for (const auto& f : ranked) {
    var += (f.embedding_score - mean) * (f.embedding_score - mean);
  }
  const double stddev =
      std::sqrt(var / static_cast<double>(ranked.size())) + 1e-9;

  for (auto& f : ranked) {
    const double z = (f.embedding_score - mean) / stddev;
    f.score = options_.embedding_weight * z +
              options_.popularity_weight * f.popularity;
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedFact& a, const RankedFact& b) {
              return a.score > b.score;
            });
  return ranked;
}

}  // namespace saga::serving
