#include "serving/version_manager.h"

#include <algorithm>
#include <utility>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace saga::serving {

VersionManager::VersionManager(Options options) : options_(options) {}

Result<std::shared_ptr<ServingVersion>> VersionManager::LoadVersion(
    const std::string& id, const std::string& dir,
    const LoadOptions& options) {
  auto v = std::make_shared<ServingVersion>();
  v->id = id;
  v->dir = dir;
  SAGA_ASSIGN_OR_RETURN(v->kv, storage::KvStore::Open(dir, options.kv));
  if (!options.embeddings_file.empty()) {
    const std::string shard = JoinPath(dir, options.embeddings_file);
    if (FileExists(shard)) {
      SAGA_ASSIGN_OR_RETURN(v->embeddings,
                            embedding::EmbeddingStore::Load(shard));
    }
  }
  if (options.build_service && v->embeddings.size() > 0) {
    v->service = std::make_unique<EmbeddingService>(
        v->embeddings, /*kg=*/nullptr, options.service);
  }
  SAGA_ASSIGN_OR_RETURN(auto all, v->kv->ScanPrefix(""));
  v->key_count = all.size();
  return v;
}

Status VersionManager::Validate(const ServingVersion& candidate,
                                const ServingVersion* live) {
  const ValidationOptions& vo = options_.validation;

  if (vo.verify_checksums) {
    // Checksum pass: every block of every table. A candidate that rots
    // between build and deploy is caught here, not by a user query.
    SAGA_RETURN_IF_ERROR(candidate.kv->VerifyTables());
  }

  if (candidate.key_count < vo.min_keys) {
    return Status::FailedPrecondition(
        "candidate " + candidate.id + " holds " +
        std::to_string(candidate.key_count) + " keys, floor is " +
        std::to_string(vo.min_keys));
  }

  if (live == nullptr) return Status::OK();

  // Coverage invariant: a growth cycle may reshape the graph, but a
  // candidate that lost a large slice of the live catalog is a broken
  // build, not a smaller graph.
  const auto floor_keys = static_cast<uint64_t>(
      static_cast<double>(live->key_count) *
      (1.0 - vo.max_key_drop_fraction));
  if (candidate.key_count < floor_keys) {
    return Status::FailedPrecondition(
        "candidate " + candidate.id + " dropped too much of the catalog: " +
        std::to_string(candidate.key_count) + " keys vs live " +
        std::to_string(live->key_count));
  }

  // Sampled query-answer diff: ask the candidate for keys the live
  // version answers. Values may legitimately change; vanishing
  // wholesale may not.
  if (vo.sample_queries > 0 && live->key_count > 0) {
    SAGA_ASSIGN_OR_RETURN(auto live_rows, live->kv->ScanPrefix(""));
    Rng rng(vo.sample_seed);
    size_t misses = 0;
    const size_t samples =
        std::min(vo.sample_queries, live_rows.size());
    for (size_t i = 0; i < samples; ++i) {
      const auto& key = live_rows[rng.Uniform(live_rows.size())].first;
      auto r = candidate.kv->Get(key);
      if (r.status().IsDataLoss()) return r.status();
      if (!r.ok()) ++misses;
    }
    if (static_cast<double>(misses) >
        vo.max_sample_miss_fraction * static_cast<double>(samples)) {
      return Status::FailedPrecondition(
          "candidate " + candidate.id + " missed " + std::to_string(misses) +
          "/" + std::to_string(samples) + " sampled live queries");
    }
  }
  return Status::OK();
}

Status VersionManager::Activate(std::shared_ptr<ServingVersion> version) {
  if (version == nullptr || version->kv == nullptr) {
    return Status::InvalidArgument("null version");
  }
  SAGA_RETURN_IF_ERROR(Validate(*version, nullptr));
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr) {
    return Status::FailedPrecondition(
        "already serving " + current_->id + "; use SwapTo");
  }
  current_ = std::move(version);
  SAGA_LOG(Info) << "serving version " << current_->id;
  return Status::OK();
}

Status VersionManager::SwapTo(std::shared_ptr<ServingVersion> candidate) {
  if (candidate == nullptr || candidate->kv == nullptr) {
    return Status::InvalidArgument("null candidate");
  }
  SAGA_COUNTER("version.swap.attempts").Add();
  std::shared_ptr<const ServingVersion> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.attempts;
    live = current_;
  }
  if (live == nullptr) {
    return Status::FailedPrecondition("no live version; use Activate");
  }
  // Validation runs outside the lock: the live version keeps serving
  // (and the flip stays atomic) while the candidate is interrogated.
  Status valid = Validate(*candidate, live.get());
  if (!valid.ok()) {
    SAGA_COUNTER("version.swap.rejected").Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
    SAGA_LOG(Error) << "rejecting candidate " << candidate->id << ": "
                    << valid;
    return valid;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != live) {
    // Someone else swapped while we validated; the diff baseline is
    // stale, so the caller must re-run.
    return Status::FailedPrecondition(
        "live version changed during validation");
  }
  previous_ = std::move(current_);
  current_ = std::move(candidate);
  in_probation_ = options_.probation_requests > 0;
  probation_seen_ = 0;
  probation_failed_ = 0;
  if (!in_probation_) {
    ++stats_.committed;
    SAGA_COUNTER("version.swap.committed").Add();
  }
  SAGA_GAUGE("version.serving.age_swaps")
      .Set(static_cast<double>(stats_.committed + 1));
  SAGA_LOG(Info) << "swapped serving version " << previous_->id << " -> "
                 << current_->id
                 << (in_probation_ ? " (probation)" : "");
  return Status::OK();
}

void VersionManager::RollbackLocked() {
  SAGA_COUNTER("version.swap.rollbacks").Add();
  ++stats_.rollbacks;
  SAGA_LOG(Error) << "rolling back serving version " << current_->id
                  << " -> " << previous_->id << " (probation error rate "
                  << probation_failed_ << "/" << probation_seen_ << ")";
  current_ = std::move(previous_);
  previous_ = nullptr;
  in_probation_ = false;
}

void VersionManager::RecordRequestOutcome(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!in_probation_) return;
  ++probation_seen_;
  if (!ok) {
    ++probation_failed_;
    ++stats_.probation_errors;
    SAGA_COUNTER("version.swap.probation_errors").Add();
  }
  // Early rollback: once enough of the window failed that the
  // threshold is unreachable... keep it simple and check the rate at
  // every outcome once a minimum sample exists.
  const uint64_t min_signal = std::min<uint64_t>(
      10, options_.probation_requests);
  if (probation_seen_ >= min_signal &&
      static_cast<double>(probation_failed_) >
          options_.rollback_error_rate *
              static_cast<double>(probation_seen_)) {
    RollbackLocked();
    return;
  }
  if (probation_seen_ >= options_.probation_requests) {
    in_probation_ = false;
    previous_ = nullptr;  // commit: old version may now be reclaimed
    ++stats_.committed;
    ++stats_.probation_successes;
    SAGA_COUNTER("version.swap.committed").Add();
    SAGA_LOG(Info) << "serving version " << current_->id
                   << " committed after probation";
  }
}

bool VersionManager::InProbation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_probation_;
}

std::shared_ptr<const ServingVersion> VersionManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::string VersionManager::current_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? "" : current_->id;
}

std::string VersionManager::previous_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return previous_ == nullptr ? "" : previous_->id;
}

VersionManager::Stats VersionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace saga::serving
