#ifndef SAGA_SERVING_FACT_VERIFIER_H_
#define SAGA_SERVING_FACT_VERIFIER_H_

#include <vector>

#include "embedding/trainer.h"
#include "graph_engine/view.h"
#include "kg/knowledge_graph.h"

namespace saga::serving {

/// Embedding-based fact verification (§2: "reason about the correctness
/// ... of these facts at scale"). Scores a candidate entity-edge with
/// the trained model; a threshold calibrated on labeled pairs converts
/// scores to accept/reject decisions.
class FactVerifier {
 public:
  struct Verdict {
    double score = 0.0;
    bool plausible = false;
    /// False when the triple could not be scored (entity/relation not
    /// in the training view); `plausible` is then meaningless.
    bool scorable = false;
  };

  FactVerifier(const graph_engine::GraphView* view,
               const embedding::TrainedEmbeddings* emb);

  /// Chooses the accuracy-maximizing threshold on labeled local-id
  /// edges (true positives + known-false negatives).
  void Calibrate(const std::vector<graph_engine::ViewEdge>& positives,
                 const std::vector<graph_engine::ViewEdge>& negatives);

  Verdict Verify(kg::EntityId s, kg::PredicateId p, kg::EntityId o) const;
  double ScoreLocal(const graph_engine::ViewEdge& e) const {
    return emb_->Score(e.src, e.relation, e.dst);
  }

  double threshold() const { return threshold_; }

 private:
  const graph_engine::GraphView* view_;
  const embedding::TrainedEmbeddings* emb_;
  double threshold_ = 0.0;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_FACT_VERIFIER_H_
