#ifndef SAGA_SERVING_LRU_CACHE_H_
#define SAGA_SERVING_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace saga::serving {

/// Byte-budgeted LRU cache of string blobs. The in-memory tier in front
/// of the KV-store embedding cache. Not thread-safe; callers shard and
/// lock (see EmbeddingKvCache).
class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts or updates. Returns false — without touching the cache —
  /// when key+value alone exceed the byte budget: admitting an entry
  /// that can never fit would evict the whole working set and then be
  /// evicted itself, churning the list for nothing.
  bool Put(const std::string& key, std::string value);
  std::optional<std::string> Get(const std::string& key);
  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }

  size_t size_bytes() const { return size_bytes_; }
  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string value;
    std::list<std::string>::iterator lru_it;
  };

  /// Evicts from the cold end until back under budget, but never the
  /// most-recently-touched entry — evicting what Put just wrote would
  /// turn an over-budget update into a silent drop.
  void EvictIfNeeded();

  size_t capacity_bytes_;
  size_t size_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_LRU_CACHE_H_
