#include "serving/embedding_service.h"

#include <algorithm>
#include <chrono>

#include "ann/brute_force_index.h"
#include "ann/ivf_index.h"
#include "ann/quantized_index.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace saga::serving {

EmbeddingService::EmbeddingService(embedding::EmbeddingStore store,
                                   const kg::KnowledgeGraph* kg)
    : EmbeddingService(std::move(store), kg, Options()) {}

EmbeddingService::EmbeddingService(embedding::EmbeddingStore store,
                                   const kg::KnowledgeGraph* kg,
                                   Options options)
    : store_(std::move(store)), kg_(kg), options_(options) {
  BuildIndexWithFallback();
  if (options_.enable_breaker) {
    ann_breaker_ =
        std::make_unique<CircuitBreaker>("serving.breaker.ann",
                                         options_.breaker);
  }
  if ((options_.hedge.enabled || options_.enable_breaker) &&
      UsesAcceleratedIndex()) {
    exact_backup_ = MakeIndex(IndexKind::kExact);
  }
  if (options_.hedge.enabled && exact_backup_ != nullptr) {
    hedge_pool_ =
        std::make_unique<ThreadPool>(std::max(1, options_.hedge.threads));
  }
}

std::unique_ptr<ann::VectorIndex> EmbeddingService::MakeIndex(
    IndexKind kind) const {
  std::unique_ptr<ann::VectorIndex> index;
  switch (kind) {
    case IndexKind::kExact:
      index = std::make_unique<ann::BruteForceIndex>(store_.dim(),
                                                     options_.metric);
      break;
    case IndexKind::kIvf: {
      ann::IvfIndex::Options ivf;
      ivf.num_lists = options_.ivf_lists;
      ivf.nprobe = options_.ivf_nprobe;
      index = std::make_unique<ann::IvfIndex>(store_.dim(),
                                              options_.metric, ivf);
      break;
    }
    case IndexKind::kQuantized:
      index = std::make_unique<ann::QuantizedBruteForceIndex>(
          store_.dim(), options_.metric);
      break;
  }
  for (kg::EntityId id : store_.Ids()) {
    index->Add(id.value(), *store_.Get(id));
  }
  index->Build();
  return index;
}

Status EmbeddingService::BuildIndexOnce(IndexKind kind) {
  // The fault point covers accelerated builds only, so the exact
  // fallback below can never be failed by injection.
  if (kind != IndexKind::kExact && Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("serving.index_build"));
  }
  index_ = MakeIndex(kind);
  return Status::OK();
}

void EmbeddingService::BuildIndexWithFallback() {
  RetryPolicy retry(options_.retry);
  const Status s = retry.Run(
      "serving.index_build",
      [&] { return BuildIndexOnce(options_.index); }, options_.metrics);
  if (s.ok()) return;
  // Degraded mode: serve exact brute-force results rather than not
  // serving at all.
  SAGA_LOG(Warning) << "accelerated index build failed (" << s
                    << "); serving degraded to exact search";
  degraded_ = true;
  if (options_.metrics != nullptr) {
    options_.metrics->IncrCounter("serving.degraded");
  }
  (void)BuildIndexOnce(IndexKind::kExact);
}

Result<std::vector<float>> EmbeddingService::GetEmbedding(
    kg::EntityId id) const {
  const std::vector<float>* vec = store_.Get(id);
  if (vec == nullptr) {
    return Status::NotFound("no embedding for entity " +
                            std::to_string(id.value()));
  }
  return *vec;
}

Result<double> EmbeddingService::Similarity(kg::EntityId a,
                                            kg::EntityId b) const {
  SAGA_ASSIGN_OR_RETURN(std::vector<float> va, GetEmbedding(a));
  SAGA_ASSIGN_OR_RETURN(std::vector<float> vb, GetEmbedding(b));
  return ann::Similarity(options_.metric, va.data(), vb.data(), va.size());
}

std::vector<double> EmbeddingService::BatchSimilarity(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    const std::vector<float>* va = store_.Get(a);
    const std::vector<float>* vb = store_.Get(b);
    out.push_back(va == nullptr || vb == nullptr
                      ? 0.0
                      : ann::Similarity(options_.metric, va->data(),
                                        vb->data(), va->size()));
  }
  return out;
}

bool EmbeddingService::PassesTypeFilter(kg::EntityId id,
                                        kg::TypeId type) const {
  if (!type.valid() || kg_ == nullptr) return true;
  for (kg::TypeId has : kg_->catalog().record(id).types) {
    if (kg_->ontology().IsSubtypeOf(has, type)) return true;
  }
  return false;
}

Result<std::vector<std::pair<kg::EntityId, double>>>
EmbeddingService::TopKNeighbors(kg::EntityId id, size_t k,
                                kg::TypeId type_filter) const {
  obs::ScopedSpan span("serving.embedding.topk_neighbors");
  obs::ScopedLatency timer(SAGA_LATENCY("serving.embedding.topk_ns"));
  SAGA_ASSIGN_OR_RETURN(std::vector<float> query, GetEmbedding(id));
  auto hits = TopKForVector(query, k + 1, type_filter);
  std::vector<std::pair<kg::EntityId, double>> out;
  for (const auto& [e, sim] : hits) {
    if (e == id) continue;
    out.emplace_back(e, sim);
    if (out.size() == k) break;
  }
  return out;
}

std::vector<std::pair<kg::EntityId, double>> EmbeddingService::TopKForVector(
    const std::vector<float>& query, size_t k,
    kg::TypeId type_filter) const {
  obs::ScopedLatency timer(SAGA_LATENCY("serving.embedding.search_ns"));
  SAGA_COUNTER("serving.embedding.searches").Add();
  // Over-fetch when filtering so enough survivors remain.
  const size_t fetch = type_filter.valid() ? k * 8 + 16 : k;
  std::vector<std::pair<kg::EntityId, double>> out;
  for (const ann::Neighbor& n : index_->Search(query, fetch)) {
    const kg::EntityId id(n.label);
    if (!PassesTypeFilter(id, type_filter)) continue;
    out.emplace_back(id, n.similarity);
    if (out.size() == k) break;
  }
  return out;
}

Result<std::vector<std::pair<kg::EntityId, double>>>
EmbeddingService::TopKNeighbors(kg::EntityId id, size_t k,
                                kg::TypeId type_filter,
                                const RequestContext& ctx) const {
  obs::ScopedSpan span("serving.embedding.topk_neighbors");
  obs::ScopedLatency timer(SAGA_LATENCY("serving.embedding.topk_ns"));
  SAGA_RETURN_IF_ERROR(ctx.Check("serving.embedding.topk"));
  SAGA_ASSIGN_OR_RETURN(std::vector<float> query, GetEmbedding(id));
  SAGA_ASSIGN_OR_RETURN(auto hits,
                        TopKForVector(query, k + 1, type_filter, ctx));
  std::vector<std::pair<kg::EntityId, double>> out;
  for (const auto& [e, sim] : hits) {
    if (e == id) continue;
    out.emplace_back(e, sim);
    if (out.size() == k) break;
  }
  return out;
}

Result<std::vector<std::pair<kg::EntityId, double>>>
EmbeddingService::TopKForVector(const std::vector<float>& query, size_t k,
                                kg::TypeId type_filter,
                                const RequestContext& ctx) const {
  obs::ScopedLatency timer(SAGA_LATENCY("serving.embedding.search_ns"));
  SAGA_COUNTER("serving.embedding.searches").Add();
  SAGA_RETURN_IF_ERROR(ctx.Check("serving.embedding.search"));
  const size_t fetch = type_filter.valid() ? k * 8 + 16 : k;
  SAGA_ASSIGN_OR_RETURN(std::vector<ann::Neighbor> hits,
                        SearchWithPolicies(query, fetch, ctx));
  // A correct answer after the deadline is still a failed request.
  SAGA_RETURN_IF_ERROR(ctx.Check("serving.embedding.search"));
  std::vector<std::pair<kg::EntityId, double>> out;
  for (const ann::Neighbor& n : hits) {
    const kg::EntityId id(n.label);
    if (!PassesTypeFilter(id, type_filter)) continue;
    out.emplace_back(id, n.similarity);
    if (out.size() == k) break;
  }
  return out;
}

double EmbeddingService::HedgeDelayMs() const {
  const HedgeOptions& h = options_.hedge;
  if (h.fixed_hedge_ms > 0) return h.fixed_hedge_ms;
  const obs::LatencyHistogram& hist =
      SAGA_LATENCY("serving.embedding.search_ns");
  if (hist.Count() < h.min_samples) return h.default_hedge_ms;
  return std::max(h.min_hedge_ms, hist.PercentileNs(99.0) / 1e6);
}

void EmbeddingService::RecordAnnOutcome(const Status& s, double elapsed_ms,
                                        const RequestContext& ctx) const {
  if (ann_breaker_ == nullptr) return;
  const bool slow = options_.breaker_slow_call_ms > 0 &&
                    elapsed_ms > options_.breaker_slow_call_ms;
  if (CircuitBreaker::IsFailure(s) || slow || ctx.expired()) {
    ann_breaker_->RecordFailure();
  } else {
    ann_breaker_->RecordSuccess();
  }
}

Result<std::vector<ann::Neighbor>> EmbeddingService::SearchWithPolicies(
    const std::vector<float>& query, size_t fetch,
    const RequestContext& ctx) const {
  if (!UsesAcceleratedIndex()) {
    // Exact search is the ground truth: no breaker, no hedge, no
    // injected replica faults.
    return index_->Search(query, fetch);
  }
  if (ann_breaker_ != nullptr) {
    const Status allow = ann_breaker_->Allow();
    if (!allow.ok()) {
      // Open breaker: serve correct-but-slower exact results instead of
      // hammering the struggling index (and instead of failing).
      if (exact_backup_ != nullptr) {
        SAGA_COUNTER("serving.breaker.fallbacks").Add();
        return exact_backup_->Search(query, fetch);
      }
      return allow;
    }
  }
  if (hedge_pool_ != nullptr) {
    return HedgedSearch(query, fetch, ctx);
  }
  Stopwatch sw;
  Status s = Faults().armed() ? Faults().InjectOp("ann.search")
                              : Status::OK();
  std::vector<ann::Neighbor> hits;
  if (s.ok()) hits = index_->Search(query, fetch);
  RecordAnnOutcome(s, sw.ElapsedMillis(), ctx);
  if (!s.ok()) {
    if (exact_backup_ != nullptr) return exact_backup_->Search(query, fetch);
    return s;
  }
  return hits;
}

namespace {

/// First-response-wins rendezvous between the accelerated primary (on
/// the hedge pool) and the exact backup (inline on the caller).
struct HedgeState {
  std::mutex mu;
  std::condition_variable cv;
  bool primary_finished = false;
  Status primary_status;
  /// Set by whichever probe claims the win first.
  bool claimed = false;
  std::vector<ann::Neighbor> primary_hits;
};

}  // namespace

Result<std::vector<ann::Neighbor>> EmbeddingService::HedgedSearch(
    const std::vector<float>& query, size_t fetch,
    const RequestContext& ctx) const {
  auto st = std::make_shared<HedgeState>();
  // Raw pointer is safe: hedge_pool_ is declared after index_ and thus
  // destroyed (drained) before it.
  const ann::VectorIndex* idx = index_.get();
  hedge_pool_->Submit([st, idx, query, fetch] {
    Status s = Faults().armed() ? Faults().InjectOp("ann.search")
                                : Status::OK();
    std::vector<ann::Neighbor> hits;
    if (s.ok()) hits = idx->Search(query, fetch);
    std::lock_guard<std::mutex> lock(st->mu);
    st->primary_finished = true;
    st->primary_status = s;
    if (s.ok() && !st->claimed) {
      st->claimed = true;
      st->primary_hits = std::move(hits);
    }
    st->cv.notify_all();
  });

  double wait_ms = HedgeDelayMs();
  if (!ctx.deadline().infinite()) {
    wait_ms = std::min(wait_ms, std::max(0.0, ctx.deadline().RemainingMillis()));
  }
  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait_for(lock,
                    std::chrono::duration<double, std::milli>(wait_ms),
                    [&] { return st->primary_finished; });
    if (st->primary_finished && st->primary_status.ok()) {
      RecordAnnOutcome(Status::OK(), 0.0, ctx);
      return std::move(st->primary_hits);
    }
  }
  // Primary overran the hedge timer (or failed): one latency SLO miss
  // for the breaker, and the exact backup races it from here.
  SAGA_COUNTER("serving.hedge.fired").Add();
  RecordAnnOutcome(Status::DeadlineExceeded("ann primary overran hedge timer"),
                   wait_ms, ctx);
  std::vector<ann::Neighbor> backup = exact_backup_->Search(query, fetch);
  std::lock_guard<std::mutex> lock(st->mu);
  if (st->claimed) {
    // Primary slipped in while the backup was scanning: it responded
    // first, it wins.
    return std::move(st->primary_hits);
  }
  st->claimed = true;
  SAGA_COUNTER("serving.hedge.backup_wins").Add();
  return backup;
}

}  // namespace saga::serving
