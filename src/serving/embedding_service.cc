#include "serving/embedding_service.h"

#include "ann/brute_force_index.h"
#include "ann/ivf_index.h"
#include "ann/quantized_index.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace saga::serving {

EmbeddingService::EmbeddingService(embedding::EmbeddingStore store,
                                   const kg::KnowledgeGraph* kg)
    : EmbeddingService(std::move(store), kg, Options()) {}

EmbeddingService::EmbeddingService(embedding::EmbeddingStore store,
                                   const kg::KnowledgeGraph* kg,
                                   Options options)
    : store_(std::move(store)), kg_(kg), options_(options) {
  BuildIndexWithFallback();
}

Status EmbeddingService::BuildIndexOnce(IndexKind kind) {
  // The fault point covers accelerated builds only, so the exact
  // fallback below can never be failed by injection.
  if (kind != IndexKind::kExact && Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("serving.index_build"));
  }
  std::unique_ptr<ann::VectorIndex> index;
  switch (kind) {
    case IndexKind::kExact:
      index = std::make_unique<ann::BruteForceIndex>(store_.dim(),
                                                     options_.metric);
      break;
    case IndexKind::kIvf: {
      ann::IvfIndex::Options ivf;
      ivf.num_lists = options_.ivf_lists;
      ivf.nprobe = options_.ivf_nprobe;
      index = std::make_unique<ann::IvfIndex>(store_.dim(),
                                              options_.metric, ivf);
      break;
    }
    case IndexKind::kQuantized:
      index = std::make_unique<ann::QuantizedBruteForceIndex>(
          store_.dim(), options_.metric);
      break;
  }
  for (kg::EntityId id : store_.Ids()) {
    index->Add(id.value(), *store_.Get(id));
  }
  index->Build();
  index_ = std::move(index);
  return Status::OK();
}

void EmbeddingService::BuildIndexWithFallback() {
  RetryPolicy retry(options_.retry);
  const Status s = retry.Run(
      "serving.index_build",
      [&] { return BuildIndexOnce(options_.index); }, options_.metrics);
  if (s.ok()) return;
  // Degraded mode: serve exact brute-force results rather than not
  // serving at all.
  SAGA_LOG(Warning) << "accelerated index build failed (" << s
                    << "); serving degraded to exact search";
  degraded_ = true;
  if (options_.metrics != nullptr) {
    options_.metrics->IncrCounter("serving.degraded");
  }
  (void)BuildIndexOnce(IndexKind::kExact);
}

Result<std::vector<float>> EmbeddingService::GetEmbedding(
    kg::EntityId id) const {
  const std::vector<float>* vec = store_.Get(id);
  if (vec == nullptr) {
    return Status::NotFound("no embedding for entity " +
                            std::to_string(id.value()));
  }
  return *vec;
}

Result<double> EmbeddingService::Similarity(kg::EntityId a,
                                            kg::EntityId b) const {
  SAGA_ASSIGN_OR_RETURN(std::vector<float> va, GetEmbedding(a));
  SAGA_ASSIGN_OR_RETURN(std::vector<float> vb, GetEmbedding(b));
  return ann::Similarity(options_.metric, va.data(), vb.data(), va.size());
}

std::vector<double> EmbeddingService::BatchSimilarity(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    const std::vector<float>* va = store_.Get(a);
    const std::vector<float>* vb = store_.Get(b);
    out.push_back(va == nullptr || vb == nullptr
                      ? 0.0
                      : ann::Similarity(options_.metric, va->data(),
                                        vb->data(), va->size()));
  }
  return out;
}

bool EmbeddingService::PassesTypeFilter(kg::EntityId id,
                                        kg::TypeId type) const {
  if (!type.valid()) return true;
  for (kg::TypeId has : kg_->catalog().record(id).types) {
    if (kg_->ontology().IsSubtypeOf(has, type)) return true;
  }
  return false;
}

Result<std::vector<std::pair<kg::EntityId, double>>>
EmbeddingService::TopKNeighbors(kg::EntityId id, size_t k,
                                kg::TypeId type_filter) const {
  obs::ScopedSpan span("serving.embedding.topk_neighbors");
  obs::ScopedLatency timer(SAGA_LATENCY("serving.embedding.topk_ns"));
  SAGA_ASSIGN_OR_RETURN(std::vector<float> query, GetEmbedding(id));
  auto hits = TopKForVector(query, k + 1, type_filter);
  std::vector<std::pair<kg::EntityId, double>> out;
  for (const auto& [e, sim] : hits) {
    if (e == id) continue;
    out.emplace_back(e, sim);
    if (out.size() == k) break;
  }
  return out;
}

std::vector<std::pair<kg::EntityId, double>> EmbeddingService::TopKForVector(
    const std::vector<float>& query, size_t k,
    kg::TypeId type_filter) const {
  obs::ScopedLatency timer(SAGA_LATENCY("serving.embedding.search_ns"));
  SAGA_COUNTER("serving.embedding.searches").Add();
  // Over-fetch when filtering so enough survivors remain.
  const size_t fetch = type_filter.valid() ? k * 8 + 16 : k;
  std::vector<std::pair<kg::EntityId, double>> out;
  for (const ann::Neighbor& n : index_->Search(query, fetch)) {
    const kg::EntityId id(n.label);
    if (!PassesTypeFilter(id, type_filter)) continue;
    out.emplace_back(id, n.similarity);
    if (out.size() == k) break;
  }
  return out;
}

}  // namespace saga::serving
