#ifndef SAGA_SERVING_KV_CACHE_H_
#define SAGA_SERVING_KV_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "embedding/embedding_store.h"
#include "kg/ids.h"
#include "serving/lru_cache.h"
#include "storage/kv_store.h"

namespace saga::serving {

/// Two-tier low-latency embedding cache (§3.2: "precompute entity
/// embeddings ... and cache the results in a low-latency key-value
/// store"): in-memory LRU over the disk KV store.
///
/// Thread-safe and built not to stall readers: the LRU tier is sharded
/// by key hash (one small mutex per shard, held only for the in-memory
/// probe or insert, never across disk IO), the KV tier is the
/// concurrent KvStore in background-maintenance mode, and PutAll's
/// rebuild holds no lock at all — concurrent Gets keep serving from
/// whichever tier has the key while the rebuild flushes and compacts
/// underneath them.
class EmbeddingKvCache {
 public:
  /// Point-in-time snapshot of the tallies (the live counters are
  /// atomics bumped from many threads).
  struct Stats {
    uint64_t memory_hits = 0;
    uint64_t disk_hits = 0;
    uint64_t misses = 0;
  };

  /// Opens the cache at `dir`; `memory_budget_bytes` sizes the LRU tier
  /// (split evenly across the shards).
  static Result<std::unique_ptr<EmbeddingKvCache>> Open(
      const std::string& dir, size_t memory_budget_bytes);

  /// Bulk-writes all embeddings of a store (the precompute step), then
  /// flushes and compacts the disk tier. Safe to run while readers are
  /// serving; no lock is held across the rebuild.
  Status PutAll(const embedding::EmbeddingStore& store);

  /// Writes through to disk and refreshes the LRU entry when the key
  /// is resident there, so a reader that cached the old vector sees
  /// the new one immediately (absent keys are not write-allocated).
  Status Put(kg::EntityId id, const std::vector<float>& vec);

  /// NotFound when the entity was never cached. Thread-safe: the
  /// annotation pipeline reads profiles from worker threads.
  Result<std::vector<float>> Get(kg::EntityId id);

  Stats stats() const;
  storage::KvStore* kv() { return kv_.get(); }

 private:
  static constexpr size_t kShards = 8;

  struct Shard {
    std::mutex mu;
    LruCache lru;
    explicit Shard(size_t capacity_bytes) : lru(capacity_bytes) {}
  };

  EmbeddingKvCache(std::unique_ptr<storage::KvStore> kv,
                   size_t memory_budget_bytes);

  Shard& ShardFor(const std::string& key);

  /// Refreshes the serving.kv_cache / serving.lru_cache hit-rate
  /// gauges from the running tallies (lock-free).
  void UpdateHitRateGauges() const;

  static std::string KeyFor(kg::EntityId id);
  static std::string Encode(const std::vector<float>& vec);
  static Result<std::vector<float>> Decode(const std::string& bytes);

  std::unique_ptr<storage::KvStore> kv_;
  std::array<std::unique_ptr<Shard>, kShards> shards_;
  std::atomic<uint64_t> memory_hits_{0};
  std::atomic<uint64_t> disk_hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_KV_CACHE_H_
