#ifndef SAGA_SERVING_KV_CACHE_H_
#define SAGA_SERVING_KV_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "embedding/embedding_store.h"
#include "kg/ids.h"
#include "serving/lru_cache.h"
#include "storage/kv_store.h"

namespace saga::serving {

/// Two-tier low-latency embedding cache (§3.2: "precompute entity
/// embeddings ... and cache the results in a low-latency key-value
/// store"): in-memory LRU over the disk KV store.
class EmbeddingKvCache {
 public:
  struct Stats {
    uint64_t memory_hits = 0;
    uint64_t disk_hits = 0;
    uint64_t misses = 0;
  };

  /// Opens the cache at `dir`; `memory_budget_bytes` sizes the LRU tier.
  static Result<std::unique_ptr<EmbeddingKvCache>> Open(
      const std::string& dir, size_t memory_budget_bytes);

  /// Bulk-writes all embeddings of a store (the precompute step).
  Status PutAll(const embedding::EmbeddingStore& store);

  Status Put(kg::EntityId id, const std::vector<float>& vec);

  /// NotFound when the entity was never cached. Thread-safe: the
  /// annotation pipeline reads profiles from worker threads.
  Result<std::vector<float>> Get(kg::EntityId id);

  const Stats& stats() const { return stats_; }
  storage::KvStore* kv() { return kv_.get(); }

 private:
  EmbeddingKvCache(std::unique_ptr<storage::KvStore> kv,
                   size_t memory_budget_bytes)
      : kv_(std::move(kv)), lru_(memory_budget_bytes) {}

  /// Refreshes the serving.kv_cache / serving.lru_cache hit-rate
  /// gauges from the running tallies (caller holds mu_).
  void UpdateHitRateGauges();

  static std::string KeyFor(kg::EntityId id);
  static std::string Encode(const std::vector<float>& vec);
  static Result<std::vector<float>> Decode(const std::string& bytes);

  std::mutex mu_;
  std::unique_ptr<storage::KvStore> kv_;
  LruCache lru_;
  Stats stats_;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_KV_CACHE_H_
