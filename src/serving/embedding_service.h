#ifndef SAGA_SERVING_EMBEDDING_SERVICE_H_
#define SAGA_SERVING_EMBEDDING_SERVICE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "ann/index.h"
#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/request_context.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/threadpool.h"
#include "embedding/embedding_store.h"
#include "kg/knowledge_graph.h"

namespace saga::serving {

/// The embedding service of Figure 1: vectorized entity representations
/// with similarity calculation and efficient k-NN retrieval.
///
/// Robustness: if the configured accelerated index (IVF / quantized)
/// repeatedly fails to build, the service degrades gracefully to exact
/// brute-force search instead of refusing to serve — correct answers,
/// reduced throughput. The degradation is observable via degraded()
/// and the `serving.degraded` counter.
///
/// Overload safety (deadline-carrying overloads only):
/// - A circuit breaker guards the accelerated index: injected or real
///   search failures, and searches slower than `breaker_slow_call_ms`,
///   count as failures; once tripped, searches fall back to the exact
///   backup index until the breaker's half-open probes succeed.
/// - Hedged reads: when the accelerated search has not answered within
///   a p99-derived hedge timer, a backup exact-search probe fires and
///   the first response wins — one slow replica/shard no longer defines
///   tail latency (The Tail at Scale).
class EmbeddingService {
 public:
  enum class IndexKind {
    kExact,
    kIvf,
    /// int8-quantized exact index: 4x smaller, slightly lossy (the
    /// on-device / compressed serving tier).
    kQuantized,
  };

  /// Hedged-read policy for accelerated (IVF / quantized) searches.
  struct HedgeOptions {
    bool enabled = false;
    /// Fixed hedge timer; <= 0 derives the timer from the live p99 of
    /// `serving.embedding.search_ns` once `min_samples` are recorded.
    double fixed_hedge_ms = 0.0;
    /// Floor for the adaptive timer (p99 of a warm cache is ~0).
    double min_hedge_ms = 0.2;
    /// Adaptive timer before enough samples exist.
    double default_hedge_ms = 5.0;
    uint64_t min_samples = 50;
    /// Workers running primary searches so the caller can hedge.
    int threads = 2;
  };

  struct Options {
    IndexKind index = IndexKind::kExact;
    ann::Metric metric = ann::Metric::kCosine;
    int ivf_lists = 32;
    int ivf_nprobe = 4;
    /// Backoff schedule for transient index-build failures.
    RetryPolicy::Options retry;
    /// Optional sink for `serving.degraded` / `retry.attempts`. Not
    /// owned; must outlive the service.
    MetricsRegistry* metrics = nullptr;
    /// Circuit breaker for the accelerated search path (metrics under
    /// `serving.breaker.ann_*`). Only consulted by deadline-carrying
    /// calls.
    bool enable_breaker = false;
    CircuitBreaker::Options breaker;
    /// Searches slower than this count as breaker failures (0 = only
    /// hard failures count). A latency-injected ANN index trips the
    /// breaker through this path.
    double breaker_slow_call_ms = 0.0;
    HedgeOptions hedge;
  };

  EmbeddingService(embedding::EmbeddingStore store,
                   const kg::KnowledgeGraph* kg);
  EmbeddingService(embedding::EmbeddingStore store,
                   const kg::KnowledgeGraph* kg, Options options);

  /// NotFound when the entity has no embedding.
  Result<std::vector<float>> GetEmbedding(kg::EntityId id) const;

  /// Cosine (or configured metric) similarity between two entities.
  Result<double> Similarity(kg::EntityId a, kg::EntityId b) const;

  /// Batch inference over candidate entity pairs (§2: "it might
  /// contain entity pairs for which we need to infer relatedness").
  /// Pairs with missing embeddings score 0.
  std::vector<double> BatchSimilarity(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const;

  /// k most similar entities to `id`, excluding itself. `type_filter`
  /// (optional) restricts hits to entities with that type or a subtype.
  Result<std::vector<std::pair<kg::EntityId, double>>> TopKNeighbors(
      kg::EntityId id, size_t k,
      kg::TypeId type_filter = kg::TypeId::Invalid()) const;

  /// k-NN for an arbitrary query vector.
  std::vector<std::pair<kg::EntityId, double>> TopKForVector(
      const std::vector<float>& query, size_t k,
      kg::TypeId type_filter = kg::TypeId::Invalid()) const;

  /// Deadline-aware serving variants: cooperative deadline checks, the
  /// `ann.search` fault point, the ANN circuit breaker, and hedged
  /// reads (all per Options). DeadlineExceeded when the budget is spent
  /// before a useful answer exists; Unavailable when the breaker is
  /// open and no exact backup can serve.
  Result<std::vector<std::pair<kg::EntityId, double>>> TopKNeighbors(
      kg::EntityId id, size_t k, kg::TypeId type_filter,
      const RequestContext& ctx) const;
  Result<std::vector<std::pair<kg::EntityId, double>>> TopKForVector(
      const std::vector<float>& query, size_t k, kg::TypeId type_filter,
      const RequestContext& ctx) const;

  const embedding::EmbeddingStore& store() const { return store_; }
  int dim() const { return store_.dim(); }

  /// True when the configured index could not be built and the service
  /// fell back to exact brute-force search.
  bool degraded() const { return degraded_; }

  /// Null unless Options::enable_breaker.
  CircuitBreaker* ann_breaker() const { return ann_breaker_.get(); }

  /// Current hedge timer (for tests / the overload bench).
  double HedgeDelayMs() const;

 private:
  bool PassesTypeFilter(kg::EntityId id, kg::TypeId type) const;

  /// Builds (with retries) the configured index, falling back to exact
  /// search on persistent failure.
  void BuildIndexWithFallback();
  Status BuildIndexOnce(IndexKind kind);
  /// Builds and populates an index of `kind` from the store.
  std::unique_ptr<ann::VectorIndex> MakeIndex(IndexKind kind) const;

  /// True when searches go through an accelerated (hedgeable,
  /// breaker-guarded) index rather than exact brute force.
  bool UsesAcceleratedIndex() const {
    return !degraded_ && options_.index != IndexKind::kExact;
  }
  /// Raw neighbor search applying breaker / hedging / fault injection.
  Result<std::vector<ann::Neighbor>> SearchWithPolicies(
      const std::vector<float>& query, size_t fetch,
      const RequestContext& ctx) const;
  Result<std::vector<ann::Neighbor>> HedgedSearch(
      const std::vector<float>& query, size_t fetch,
      const RequestContext& ctx) const;
  /// One breaker outcome per admitted accelerated search.
  void RecordAnnOutcome(const Status& s, double elapsed_ms,
                        const RequestContext& ctx) const;

  embedding::EmbeddingStore store_;
  const kg::KnowledgeGraph* kg_;
  Options options_;
  std::unique_ptr<ann::VectorIndex> index_;
  bool degraded_ = false;
  std::unique_ptr<CircuitBreaker> ann_breaker_;
  /// Exact brute-force twin of the accelerated index: hedge backup and
  /// breaker-open fallback. Built only when those features are on.
  std::unique_ptr<ann::VectorIndex> exact_backup_;
  /// Runs primary searches for hedged reads. Declared last: destroyed
  /// (and drained) first, so in-flight hedge tasks never outlive the
  /// index they search.
  std::unique_ptr<ThreadPool> hedge_pool_;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_EMBEDDING_SERVICE_H_
