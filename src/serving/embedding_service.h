#ifndef SAGA_SERVING_EMBEDDING_SERVICE_H_
#define SAGA_SERVING_EMBEDDING_SERVICE_H_

#include <memory>
#include <vector>

#include "ann/index.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"
#include "embedding/embedding_store.h"
#include "kg/knowledge_graph.h"

namespace saga::serving {

/// The embedding service of Figure 1: vectorized entity representations
/// with similarity calculation and efficient k-NN retrieval.
///
/// Robustness: if the configured accelerated index (IVF / quantized)
/// repeatedly fails to build, the service degrades gracefully to exact
/// brute-force search instead of refusing to serve — correct answers,
/// reduced throughput. The degradation is observable via degraded()
/// and the `serving.degraded` counter.
class EmbeddingService {
 public:
  enum class IndexKind {
    kExact,
    kIvf,
    /// int8-quantized exact index: 4x smaller, slightly lossy (the
    /// on-device / compressed serving tier).
    kQuantized,
  };

  struct Options {
    IndexKind index = IndexKind::kExact;
    ann::Metric metric = ann::Metric::kCosine;
    int ivf_lists = 32;
    int ivf_nprobe = 4;
    /// Backoff schedule for transient index-build failures.
    RetryPolicy::Options retry;
    /// Optional sink for `serving.degraded` / `retry.attempts`. Not
    /// owned; must outlive the service.
    MetricsRegistry* metrics = nullptr;
  };

  EmbeddingService(embedding::EmbeddingStore store,
                   const kg::KnowledgeGraph* kg);
  EmbeddingService(embedding::EmbeddingStore store,
                   const kg::KnowledgeGraph* kg, Options options);

  /// NotFound when the entity has no embedding.
  Result<std::vector<float>> GetEmbedding(kg::EntityId id) const;

  /// Cosine (or configured metric) similarity between two entities.
  Result<double> Similarity(kg::EntityId a, kg::EntityId b) const;

  /// Batch inference over candidate entity pairs (§2: "it might
  /// contain entity pairs for which we need to infer relatedness").
  /// Pairs with missing embeddings score 0.
  std::vector<double> BatchSimilarity(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const;

  /// k most similar entities to `id`, excluding itself. `type_filter`
  /// (optional) restricts hits to entities with that type or a subtype.
  Result<std::vector<std::pair<kg::EntityId, double>>> TopKNeighbors(
      kg::EntityId id, size_t k,
      kg::TypeId type_filter = kg::TypeId::Invalid()) const;

  /// k-NN for an arbitrary query vector.
  std::vector<std::pair<kg::EntityId, double>> TopKForVector(
      const std::vector<float>& query, size_t k,
      kg::TypeId type_filter = kg::TypeId::Invalid()) const;

  const embedding::EmbeddingStore& store() const { return store_; }
  int dim() const { return store_.dim(); }

  /// True when the configured index could not be built and the service
  /// fell back to exact brute-force search.
  bool degraded() const { return degraded_; }

 private:
  bool PassesTypeFilter(kg::EntityId id, kg::TypeId type) const;

  /// Builds (with retries) the configured index, falling back to exact
  /// search on persistent failure.
  void BuildIndexWithFallback();
  Status BuildIndexOnce(IndexKind kind);

  embedding::EmbeddingStore store_;
  const kg::KnowledgeGraph* kg_;
  Options options_;
  std::unique_ptr<ann::VectorIndex> index_;
  bool degraded_ = false;
};

}  // namespace saga::serving

#endif  // SAGA_SERVING_EMBEDDING_SERVICE_H_
