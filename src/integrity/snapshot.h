#ifndef SAGA_INTEGRITY_SNAPSHOT_H_
#define SAGA_INTEGRITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "resource/disk_space_governor.h"

namespace saga::integrity {

struct SnapshotInfo {
  std::string name;
  size_t num_files = 0;
  uint64_t total_bytes = 0;
};

/// Point-in-time snapshots of a KvStore directory (tables + MANIFEST +
/// WAL) plus any extra files the caller names (embedding shards).
///
/// A snapshot is a directory under `<root>/<name>` holding:
///   - hard links to the immutable SSTables (free and instant; falls
///     back to a copy on filesystems without links),
///   - byte copies of the mutable files (wal.log, MANIFEST, extras),
///   - a CRC'd SNAPMANIFEST listing every file with its size and CRC32,
///     so Verify() can prove the snapshot intact years later.
///
/// Creation is atomic: everything is staged in a `.tmp_<name>`
/// directory and renamed into place (durable rename), so a crash
/// mid-create leaves only staging debris, never a half snapshot that
/// List()/Restore() would trust.
///
/// Hard links mean a snapshot shares bytes with the live store — which
/// is exactly why SSTables must stay immutable (the store only ever
/// renames them aside, never rewrites in place).
class SnapshotManager {
 public:
  /// `snapshot_root` defaults to `<store_dir>/snapshots`.
  explicit SnapshotManager(std::string store_dir,
                           std::string snapshot_root = "");

  /// Snapshots the store's current committed state (MANIFEST tables +
  /// WAL + extras). AlreadyExists if `name` is taken; Corruption if the
  /// store's MANIFEST fails its CRC (never snapshot a corrupt truth).
  Result<SnapshotInfo> Create(const std::string& name,
                              const std::vector<std::string>& extra_files = {});

  /// Snapshot names, sorted (staging debris excluded).
  Result<std::vector<std::string>> List() const;

  /// Proves the snapshot intact: SNAPMANIFEST CRC plus every member
  /// file present with matching size and CRC32. kDataLoss names the
  /// first rotted file.
  Status Verify(const std::string& name) const;

  /// Restores the snapshot into the store directory: verifies first,
  /// copies members back (each atomically), MANIFEST last as the commit
  /// point, and removes a live wal.log the snapshot does not have.
  /// Files newer than the snapshot are left for recovery to quarantine
  /// as orphans.
  Status Restore(const std::string& name);

  /// Repairs one file from the newest snapshot holding a CRC-matching
  /// copy: copies it (atomic, durable) to `dest_path` — default
  /// `<store_dir>/<file_name>` — and returns the snapshot used.
  /// NotFound when no snapshot has a good copy.
  Result<std::string> RepairFile(const std::string& file_name,
                                 const std::string& dest_path = "");

  Result<SnapshotInfo> Info(const std::string& name) const;

  /// Deletes snapshots oldest-first (lexicographic name order =
  /// creation order for timestamped names) until at most
  /// `retention_floor` remain. Returns the bytes actually freed:
  /// hard-linked members still referenced by the live store free
  /// nothing and are not counted. Registered with the disk-space
  /// governor as the last-resort reclaim task; per the governor
  /// contract it does NOT call OnBytesFreed itself.
  Result<uint64_t> PruneOldest(size_t retention_floor);

  /// Optional disk-space governor. When set, Create() is refused with
  /// a storage-origin kResourceExhausted while the store is degraded
  /// (a snapshot consumes exactly the space reclaim is fighting for)
  /// and reserves the byte-copy cost up front otherwise. Not owned.
  void set_governor(resource::DiskSpaceGovernor* governor) {
    governor_ = governor;
  }

  const std::string& root() const { return root_; }
  const std::string& store_dir() const { return store_dir_; }

 private:
  struct ManifestEntry {
    std::string file;
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  std::string SnapshotDir(const std::string& name) const;
  Result<std::vector<ManifestEntry>> ReadSnapshotManifest(
      const std::string& name) const;

  std::string store_dir_;
  std::string root_;
  resource::DiskSpaceGovernor* governor_ = nullptr;
};

}  // namespace saga::integrity

#endif  // SAGA_INTEGRITY_SNAPSHOT_H_
