#ifndef SAGA_INTEGRITY_SCRUBBER_H_
#define SAGA_INTEGRITY_SCRUBBER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "integrity/snapshot.h"
#include "serving/admission_controller.h"

namespace saga::integrity {

/// Background integrity scrubber: a low-priority, rate-limited worker
/// that walks the store's durable artifacts — MANIFEST-listed SSTables,
/// the WAL tail, embedding shards — re-verifying checksums end to end,
/// repairing rotted files from the newest good snapshot, and
/// quarantining what it cannot repair (loud failure beats silent rot).
///
/// Serving-tier citizenship: when handed an AdmissionController the
/// scrubber asks for a low-priority ticket before touching each file,
/// so under load it is shed first (PR 3 semantics) and backs off
/// instead of competing with interactive traffic. `file_pause_ms` adds
/// a flat rate limit on top for idle-cluster politeness.
///
/// Metrics: bumps `integrity.scrub.*` counters and the
/// `integrity.corruption.detected/repaired/quarantined` family (the
/// latter two via SnapshotManager / the quarantine path).
class Scrubber {
 public:
  struct Options {
    /// Sleep between full passes when running on the background thread.
    double pass_interval_ms = 60'000;
    /// Flat pause between files (rate limit), 0 = none.
    double file_pause_ms = 0;
    /// Backoff after an admission shed before retrying the ticket.
    double shed_backoff_ms = 10;
    /// Give up on a file after this many consecutive sheds (it will be
    /// retried next pass).
    int max_admit_retries = 20;
    /// Optional: low-priority admission before each file.
    serving::AdmissionController* admission = nullptr;
    /// Optional: repair source. Without it corrupt files are
    /// quarantined only.
    SnapshotManager* snapshots = nullptr;
    /// Optional disk-space governor. While it reports degraded the
    /// scrubber defers space-consuming repairs (a snapshot-sourced
    /// rewrite costs exactly the bytes reclaim is fighting for):
    /// corruption is still detected and counted, but repair/quarantine
    /// waits for the next pass after the store is writable again. Not
    /// owned.
    resource::DiskSpaceGovernor* governor = nullptr;
    /// Extra checksummed files to scrub (embedding shards; full paths).
    std::vector<std::string> embedding_files;
  };

  struct Stats {
    uint64_t passes = 0;
    uint64_t files_scanned = 0;
    uint64_t bytes_scanned = 0;
    uint64_t corrupt_found = 0;
    uint64_t repaired = 0;
    uint64_t quarantined = 0;
    uint64_t sheds = 0;
    /// Files skipped this-pass because admission kept shedding.
    uint64_t skipped_shed = 0;
    /// Repairs deferred because the store was disk-space degraded.
    uint64_t deferred_degraded = 0;
    /// Wall-clock (unix ms) each file last passed verification.
    std::map<std::string, int64_t> last_verified_unix_ms;
  };

  Scrubber(std::string store_dir, Options options);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// One synchronous full pass (also what the background thread runs).
  /// Always completes the walk; per-file problems are counted, repaired
  /// or quarantined, never turned into an early return.
  Status RunOnce();

  /// Starts/stops the background thread (idempotent).
  void Start();
  void Stop();

  Stats stats() const;

 private:
  enum class FileKind { kSSTable, kWal, kEmbedding };

  void ThreadMain();
  /// Admission gate before touching one file. False = skip it this pass.
  bool AdmitFile();
  void ScrubFile(const std::string& path, FileKind kind);
  /// Verify-only step; kDataLoss/kCorruption means rot.
  Status VerifyFile(const std::string& path, FileKind kind);
  void MarkVerified(const std::string& path, uint64_t bytes);
  void HandleCorrupt(const std::string& path, FileKind kind,
                     const Status& why);
  void Pause(double ms);

  std::string store_dir_;
  Options options_;

  mutable std::mutex mu_;
  Stats stats_;

  std::thread thread_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace saga::integrity

#endif  // SAGA_INTEGRITY_SCRUBBER_H_
