#include "integrity/scrubber.h"

#include <chrono>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "embedding/embedding_store.h"
#include "storage/kv_store.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace saga::integrity {

namespace {

constexpr char kWalName[] = "wal.log";

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Scrubber::Scrubber(std::string store_dir, Options options)
    : store_dir_(std::move(store_dir)), options_(options) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Pause(double ms) {
  if (ms <= 0) return;
  std::unique_lock<std::mutex> lock(run_mu_);
  run_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                   [this] { return stop_; });
}

bool Scrubber::AdmitFile() {
  if (options_.admission == nullptr) return true;
  for (int attempt = 0; attempt < options_.max_admit_retries; ++attempt) {
    RequestContext ctx;
    ctx.set_priority(Priority::kLow);
    auto ticket = options_.admission->TryAdmit(ctx);
    if (ticket.ok()) {
      // The ticket only gates the *decision* to proceed; scrub IO is
      // short per file and the next file re-asks. Holding it across
      // the verify would pin a low-priority slot for no benefit.
      return true;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sheds;
    }
    SAGA_COUNTER("integrity.scrub.sheds").Add();
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      if (stop_) return false;
    }
    Pause(options_.shed_backoff_ms);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.skipped_shed;
  return false;
}

Status Scrubber::VerifyFile(const std::string& path, FileKind kind) {
  switch (kind) {
    case FileKind::kSSTable: {
      auto reader = storage::SSTableReader::Open(
          path, storage::SSTableReader::OpenOptions{
                    storage::ReadVerifyMode::kAlways});
      if (!reader.ok()) return reader.status();
      return (*reader)->VerifyChecksums();
    }
    case FileKind::kWal: {
      SAGA_ASSIGN_OR_RETURN(storage::WalReadResult wal,
                            storage::ReadWalRecordsDetailed(path));
      if (!wal.clean) {
        return Status::Corruption("wal tail damaged: " + path + " (" +
                                  std::to_string(wal.bytes_dropped) +
                                  " bytes)");
      }
      return Status::OK();
    }
    case FileKind::kEmbedding:
      return embedding::EmbeddingStore::Verify(path);
  }
  return Status::OK();
}

void Scrubber::MarkVerified(const std::string& path, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.files_scanned;
  stats_.bytes_scanned += bytes;
  stats_.last_verified_unix_ms[BaseName(path)] = NowUnixMs();
}

void Scrubber::HandleCorrupt(const std::string& path, FileKind kind,
                             const Status& why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt_found;
  }
  SAGA_COUNTER("integrity.scrub.corrupt_found").Add();
  // Block-CRC and embedding-CRC failures already counted a detection at
  // the read site; structural open failures did not.
  if (!why.IsDataLoss()) {
    SAGA_COUNTER("integrity.corruption.detected").Add();
  }
  SAGA_LOG(Warning) << "scrub found corrupt file " << path << ": " << why;

  if (kind == FileKind::kWal) {
    // A damaged WAL tail is normal crash debris: recovery truncates it
    // and loses only unacknowledged records. Restoring an *older* WAL
    // over it would lose acknowledged ones — report, never "repair".
    return;
  }

  if (options_.governor != nullptr && options_.governor->degraded()) {
    // Degraded mode: a snapshot-sourced repair writes a full fresh
    // copy, and even the quarantine rename invites a follow-up repair.
    // The read path is CRC-guarded, so leaving the rotted file in
    // place is safe; the next pass retries once space is back.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deferred_degraded;
    SAGA_COUNTER("integrity.scrub.deferred_degraded").Add();
    SAGA_LOG(Warning) << "deferring repair of " << path
                      << ": store is disk-space degraded";
    return;
  }

  if (options_.snapshots != nullptr) {
    auto from = options_.snapshots->RepairFile(BaseName(path), path);
    if (from.ok()) {
      // Trust but verify: the repaired bytes must pass the same check
      // that just failed.
      if (VerifyFile(path, kind).ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.repaired;
        stats_.last_verified_unix_ms[BaseName(path)] = NowUnixMs();
        return;
      }
      SAGA_LOG(Error) << "repair of " << path << " from snapshot " << *from
                      << " did not verify; quarantining";
    }
  }

  const std::string quarantine = path + ".quarantined";
  (void)RemoveFileIfExists(quarantine);
  if (RenameFileDurable(path, quarantine).ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.quarantined;
    SAGA_COUNTER("integrity.corruption.quarantined").Add();
  } else {
    SAGA_LOG(Error) << "could not quarantine " << path;
  }
}

void Scrubber::ScrubFile(const std::string& path, FileKind kind) {
  if (!FileExists(path)) return;
  Status s = VerifyFile(path, kind);
  if (s.ok()) {
    uint64_t bytes = 0;
    if (auto size = FileSize(path); size.ok()) bytes = *size;
    MarkVerified(path, bytes);
  } else if (s.IsDataLoss() || s.IsCorruption()) {
    HandleCorrupt(path, kind, s);
  } else {
    // Transient (IO error, injected fault): leave it for the next pass.
    SAGA_LOG(Warning) << "scrub could not check " << path << ": " << s;
  }
}

Status Scrubber::RunOnce() {
  std::vector<std::pair<std::string, FileKind>> work;
  {
    auto tables = storage::ReadManifestTables(store_dir_);
    if (tables.ok()) {
      for (const auto& t : *tables) {
        work.emplace_back(JoinPath(store_dir_, t), FileKind::kSSTable);
      }
    } else if (tables.status().IsCorruption()) {
      // The MANIFEST itself rotted. Repair-from-snapshot if possible;
      // otherwise recovery's directory-scan fallback still works, so
      // count it and move on.
      HandleCorrupt(JoinPath(store_dir_, "MANIFEST"), FileKind::kSSTable,
                    tables.status());
    }
  }
  work.emplace_back(JoinPath(store_dir_, kWalName), FileKind::kWal);
  for (const auto& f : options_.embedding_files) {
    work.emplace_back(f, FileKind::kEmbedding);
  }

  for (const auto& [path, kind] : work) {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      if (stop_) break;
    }
    if (!AdmitFile()) continue;
    ScrubFile(path, kind);
    Pause(options_.file_pause_ms);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.passes;
  }
  SAGA_COUNTER("integrity.scrub.passes").Add();
  SAGA_GAUGE("integrity.scrub.last_pass_unix_ms")
      .Set(static_cast<double>(NowUnixMs()));
  return Status::OK();
}

void Scrubber::ThreadMain() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      if (stop_) return;
    }
    (void)RunOnce();
    std::unique_lock<std::mutex> lock(run_mu_);
    run_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.pass_interval_ms),
        [this] { return stop_; });
    if (stop_) return;
  }
}

void Scrubber::Start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    stop_ = true;
  }
  run_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(run_mu_);
  running_ = false;
}

Scrubber::Stats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace saga::integrity
