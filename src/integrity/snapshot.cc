#include "integrity/snapshot.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "storage/kv_store.h"
#include "storage/wal.h"  // Crc32

namespace saga::integrity {

namespace {

constexpr char kSnapManifestName[] = "SNAPMANIFEST";
constexpr char kSnapHeader[] = "saga-snapshot-v1";
constexpr char kStagingPrefix[] = ".tmp_";
constexpr char kWalName[] = "wal.log";
constexpr char kKvManifestName[] = "MANIFEST";

bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 200) return false;
  if (name.front() == '.') return false;
  for (char c : name) {
    if (c == '/' || c == '\\' || c == '\n' || c == ' ') return false;
  }
  return true;
}

}  // namespace

SnapshotManager::SnapshotManager(std::string store_dir,
                                 std::string snapshot_root)
    : store_dir_(std::move(store_dir)), root_(std::move(snapshot_root)) {
  if (root_.empty()) root_ = JoinPath(store_dir_, "snapshots");
}

std::string SnapshotManager::SnapshotDir(const std::string& name) const {
  return JoinPath(root_, name);
}

Result<SnapshotInfo> SnapshotManager::Create(
    const std::string& name, const std::vector<std::string>& extra_files) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad snapshot name: " + name);
  }
  const std::string final_dir = SnapshotDir(name);
  if (FileExists(final_dir)) {
    return Status::AlreadyExists("snapshot exists: " + name);
  }

  // The committed table set; a corrupt MANIFEST fails the snapshot (a
  // snapshot of unknown truth is worse than none), an absent one just
  // means an empty/fresh store.
  std::vector<std::string> tables;
  {
    auto r = storage::ReadManifestTables(store_dir_);
    if (r.ok()) {
      tables = std::move(*r);
    } else if (!r.status().IsNotFound()) {
      return r.status();
    }
  }

  // (source path, whether the source is immutable and safe to hard-link)
  std::vector<std::pair<std::string, bool>> members;
  for (const auto& t : tables) {
    members.emplace_back(JoinPath(store_dir_, t), true);
  }
  if (FileExists(JoinPath(store_dir_, kKvManifestName))) {
    members.emplace_back(JoinPath(store_dir_, kKvManifestName), false);
  }
  if (FileExists(JoinPath(store_dir_, kWalName))) {
    members.emplace_back(JoinPath(store_dir_, kWalName), false);
  }
  for (const auto& extra : extra_files) {
    if (!FileExists(extra)) {
      return Status::NotFound("snapshot extra file missing: " + extra);
    }
    // Extras (embedding shards) are rewritten via rename, never in
    // place, so the linked inode stays frozen — link them too.
    members.emplace_back(extra, true);
  }

  resource::DiskSpaceGovernor::Reservation res;
  if (governor_ != nullptr) {
    if (governor_->degraded()) {
      SAGA_COUNTER("integrity.snapshot.deferred").Add();
      return Status::StorageExhausted(
          "snapshot create deferred: store is disk-space degraded");
    }
    // Only the byte-copied members cost space; hard-linked tables
    // share their inode with the live store.
    uint64_t copy_bytes = 4096;  // staging dir + SNAPMANIFEST slack
    for (const auto& [src, immutable] : members) {
      if (immutable) continue;
      if (auto size = FileSize(src); size.ok()) copy_bytes += *size;
    }
    auto r = governor_->Reserve(copy_bytes);
    if (!r.ok()) {
      SAGA_COUNTER("integrity.snapshot.deferred").Add();
      return r.status();
    }
    res = std::move(*r);
  }

  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(root_));
  const std::string staging = JoinPath(root_, kStagingPrefix + name);
  (void)RemoveDirRecursively(staging);  // debris from a crashed create
  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(staging));

  SnapshotInfo info;
  info.name = name;
  std::string manifest = kSnapHeader;
  manifest.push_back('\n');
  for (const auto& [src, immutable] : members) {
    const std::string base = std::string(
        std::string_view(src).substr(src.find_last_of('/') + 1));
    const std::string dst = JoinPath(staging, base);
    if (immutable) {
      SAGA_RETURN_IF_ERROR(HardLinkOrCopyFile(src, dst));
    } else {
      SAGA_RETURN_IF_ERROR(CopyFile(src, dst, /*durable=*/true));
    }
    // CRC the snapshot copy, not the source: what we certify is what
    // Restore will read back.
    SAGA_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(dst));
    manifest += base + " " + std::to_string(bytes.size()) + " " +
                std::to_string(storage::Crc32(bytes)) + "\n";
    ++info.num_files;
    info.total_bytes += bytes.size();
  }
  manifest += "crc:" + std::to_string(storage::Crc32(manifest)) + "\n";
  SAGA_RETURN_IF_ERROR(WriteStringToFile(JoinPath(staging, kSnapManifestName),
                                         manifest, /*durable=*/true));
  SAGA_RETURN_IF_ERROR(RenameFileDurable(staging, final_dir));
  res.Commit(res.bytes());
  SAGA_COUNTER("integrity.snapshot.created").Add();
  return info;
}

Result<uint64_t> SnapshotManager::PruneOldest(size_t retention_floor) {
  SAGA_ASSIGN_OR_RETURN(std::vector<std::string> names, List());
  std::sort(names.begin(), names.end());
  uint64_t freed = 0;
  while (names.size() > retention_floor) {
    const std::string victim = names.front();
    names.erase(names.begin());
    const std::string dir = SnapshotDir(victim);
    // Count only bytes the deletion actually returns: a hard-linked
    // table still referenced by the live store (link count > 1) frees
    // nothing when this snapshot's link goes away.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      const auto links = std::filesystem::hard_link_count(entry.path(), ec);
      if (ec || links > 1) continue;
      const auto size = entry.file_size(ec);
      if (!ec) freed += size;
    }
    SAGA_RETURN_IF_ERROR(RemoveDirRecursively(dir));
    SAGA_COUNTER("integrity.snapshot.pruned").Add();
    SAGA_LOG(Info) << "pruned snapshot " << victim << " (" << freed
                   << "B cumulative unique bytes)";
  }
  return freed;
}

Result<std::vector<std::string>> SnapshotManager::List() const {
  if (!FileExists(root_)) return std::vector<std::string>{};
  SAGA_ASSIGN_OR_RETURN(std::vector<std::string> dirs, ListSubdirs(root_));
  std::vector<std::string> out;
  for (auto& d : dirs) {
    if (d.rfind(kStagingPrefix, 0) == 0) continue;
    out.push_back(std::move(d));
  }
  return out;
}

Result<std::vector<SnapshotManager::ManifestEntry>>
SnapshotManager::ReadSnapshotManifest(const std::string& name) const {
  const std::string path = JoinPath(SnapshotDir(name), kSnapManifestName);
  if (!FileExists(path)) {
    return Status::NotFound("no snapshot manifest: " + name);
  }
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  const size_t crc_pos = data.rfind("crc:");
  if (crc_pos == std::string::npos ||
      (crc_pos > 0 && data[crc_pos - 1] != '\n')) {
    return Status::Corruption("torn snapshot manifest: " + name);
  }
  const uint32_t stored = static_cast<uint32_t>(
      std::strtoul(data.c_str() + crc_pos + 4, nullptr, 10));
  if (storage::Crc32(std::string_view(data.data(), crc_pos)) != stored) {
    return Status::Corruption("snapshot manifest crc mismatch: " + name);
  }
  std::vector<ManifestEntry> entries;
  size_t start = 0;
  bool header_seen = false;
  while (start < crc_pos) {
    size_t end = data.find('\n', start);
    if (end == std::string::npos || end > crc_pos) end = crc_pos;
    const std::string line = data.substr(start, end - start);
    start = end + 1;
    if (!header_seen) {
      if (line != kSnapHeader) {
        return Status::Corruption("bad snapshot manifest header: " + name);
      }
      header_seen = true;
      continue;
    }
    if (line.empty()) continue;
    const size_t s1 = line.find(' ');
    const size_t s2 = line.find(' ', s1 + 1);
    if (s1 == std::string::npos || s2 == std::string::npos) {
      return Status::Corruption("bad snapshot manifest line: " + line);
    }
    ManifestEntry e;
    e.file = line.substr(0, s1);
    e.size = std::strtoull(line.c_str() + s1 + 1, nullptr, 10);
    e.crc = static_cast<uint32_t>(
        std::strtoul(line.c_str() + s2 + 1, nullptr, 10));
    entries.push_back(std::move(e));
  }
  return entries;
}

Status SnapshotManager::Verify(const std::string& name) const {
  SAGA_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries,
                        ReadSnapshotManifest(name));
  const std::string dir = SnapshotDir(name);
  for (const auto& e : entries) {
    const std::string path = JoinPath(dir, e.file);
    if (!FileExists(path)) {
      return Status::DataLoss("snapshot member missing: " + path);
    }
    SAGA_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    if (bytes.size() != e.size || storage::Crc32(bytes) != e.crc) {
      SAGA_COUNTER("integrity.corruption.detected").Add();
      return Status::DataLoss("snapshot member crc mismatch: " + path);
    }
  }
  return Status::OK();
}

Result<SnapshotInfo> SnapshotManager::Info(const std::string& name) const {
  SAGA_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries,
                        ReadSnapshotManifest(name));
  SnapshotInfo info;
  info.name = name;
  info.num_files = entries.size();
  for (const auto& e : entries) info.total_bytes += e.size;
  return info;
}

Status SnapshotManager::Restore(const std::string& name) {
  SAGA_RETURN_IF_ERROR(Verify(name));
  SAGA_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries,
                        ReadSnapshotManifest(name));
  const std::string dir = SnapshotDir(name);
  bool has_wal = false;
  // Data files first, MANIFEST last: until the manifest lands, the
  // store still opens against its previous (intact) table set.
  for (const auto& e : entries) {
    if (e.file == kKvManifestName) continue;
    if (e.file == kWalName) has_wal = true;
    SAGA_RETURN_IF_ERROR(CopyFile(JoinPath(dir, e.file),
                                  JoinPath(store_dir_, e.file),
                                  /*durable=*/true));
  }
  if (!has_wal) {
    // The snapshot predates any live WAL; leaving one behind would
    // replay post-snapshot writes onto the restored tables.
    SAGA_RETURN_IF_ERROR(
        RemoveFileIfExists(JoinPath(store_dir_, kWalName)));
  }
  for (const auto& e : entries) {
    if (e.file != kKvManifestName) continue;
    SAGA_RETURN_IF_ERROR(CopyFile(JoinPath(dir, e.file),
                                  JoinPath(store_dir_, e.file),
                                  /*durable=*/true));
  }
  SAGA_COUNTER("integrity.snapshot.restored").Add();
  SAGA_LOG(Info) << "restored snapshot " << name << " into " << store_dir_;
  return Status::OK();
}

Result<std::string> SnapshotManager::RepairFile(const std::string& file_name,
                                                const std::string& dest_path) {
  const std::string dest =
      dest_path.empty() ? JoinPath(store_dir_, file_name) : dest_path;
  SAGA_ASSIGN_OR_RETURN(std::vector<std::string> names, List());
  // Newest snapshot first (names sort lexicographically; timestamped
  // names make that creation order).
  std::sort(names.rbegin(), names.rend());
  for (const auto& name : names) {
    auto entries = ReadSnapshotManifest(name);
    if (!entries.ok()) continue;
    for (const auto& e : *entries) {
      if (e.file != file_name) continue;
      const std::string src = JoinPath(SnapshotDir(name), e.file);
      auto bytes = ReadFileToString(src);
      if (!bytes.ok() || bytes->size() != e.size ||
          storage::Crc32(*bytes) != e.crc) {
        continue;  // this copy rotted too; keep looking
      }
      SAGA_RETURN_IF_ERROR(WriteStringToFile(dest, *bytes, /*durable=*/true));
      SAGA_COUNTER("integrity.corruption.repaired").Add();
      SAGA_LOG(Info) << "repaired " << dest << " from snapshot " << name;
      return name;
    }
  }
  return Status::NotFound("no snapshot holds a good copy of " + file_name);
}

}  // namespace saga::integrity
