#include "common/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace saga {

namespace {

void SleepMillis(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, Armed{spec, 0});
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::InjectDelay(const std::string& point, double ms) {
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay_ms = ms;
  spec.fail_nth = 0;  // every hit
  spec.repeat = true;
  Arm(point, spec);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

uint64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fires_.find(point);
  return it == fires_.end() ? 0 : it->second;
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, armed] : points_) {
    (void)armed;
    out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

std::optional<FaultSpec> FaultInjector::Check(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  ++hits_[point];
  auto it = points_.find(point);
  if (it == points_.end()) return std::nullopt;
  Armed& armed = it->second;
  if (armed.spec.probability < 1.0 && !rng_.Bernoulli(armed.spec.probability)) {
    return std::nullopt;
  }
  ++armed.eligible_hits;
  const int nth = armed.spec.fail_nth;
  const bool fires =
      nth == 0 || (armed.spec.repeat
                       ? armed.eligible_hits >= static_cast<uint64_t>(nth)
                       : armed.eligible_hits == static_cast<uint64_t>(nth));
  if (!fires) return std::nullopt;
  FaultSpec spec = armed.spec;
  ++fires_[point];
  if (!spec.repeat) {
    points_.erase(it);
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
  return spec;
}

Status FaultInjector::InjectOp(const std::string& point) {
  if (auto spec = Check(point)) {
    if (spec->kind == FaultKind::kDelay) {
      // Stall outside the injector lock: concurrent requests must be
      // able to hit other points (and this one) while we sleep.
      SleepMillis(spec->delay_ms);
      return Status::OK();
    }
    if (spec->kind == FaultKind::kNoSpace) {
      return Status::StorageExhausted("injected ENOSPC at " + point);
    }
    return Status::IOError("injected fault at " + point);
  }
  return Status::OK();
}

TransportFault FaultInjector::InjectTransport(const std::string& point) {
  TransportFault out;
  auto spec = Check(point);
  if (!spec) return out;
  switch (spec->kind) {
    case FaultKind::kDelay:
      out.action = TransportFaultAction::kDelay;
      out.delay_ms = spec->delay_ms;
      break;
    case FaultKind::kDuplicate:
      out.action = TransportFaultAction::kDuplicate;
      break;
    case FaultKind::kReorder:
      out.action = TransportFaultAction::kReorder;
      break;
    case FaultKind::kFail:
    case FaultKind::kDrop:
    case FaultKind::kPartition:
    // A garbled frame fails its checksum at the receiver and is
    // discarded — from the sender's point of view, a drop. A sender
    // out of buffer space (kNoSpace) likewise never gets the frame
    // onto the wire.
    case FaultKind::kTornWrite:
    case FaultKind::kBitFlip:
    case FaultKind::kCorrupt:
    case FaultKind::kNoSpace:
      out.action = TransportFaultAction::kDrop;
      break;
  }
  return out;
}

Status FaultInjector::InjectRead(const std::string& point, char* data,
                                 size_t len) {
  auto spec = Check(point);
  if (!spec) return Status::OK();
  switch (spec->kind) {
    case FaultKind::kDelay:
      SleepMillis(spec->delay_ms);
      return Status::OK();
    case FaultKind::kFail:
    // Network kinds degrade to a plain failure on a disk-shaped path;
    // kNoSpace is meaningless for a read and does the same.
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
    case FaultKind::kPartition:
    case FaultKind::kNoSpace:
      return Status::IOError("injected read fault at " + point);
    case FaultKind::kCorrupt:
    case FaultKind::kBitFlip:
    case FaultKind::kTornWrite: {
      if (data != nullptr && len > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        const size_t pos = rng_.Uniform(len);
        data[pos] = static_cast<char>(data[pos] ^ (1 << rng_.Uniform(8)));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

WriteFault FaultInjector::InjectWrite(const std::string& point,
                                      std::string* payload) {
  auto spec = Check(point);
  if (!spec) return WriteFault{};
  WriteFault out;
  switch (spec->kind) {
    case FaultKind::kDelay:
      SleepMillis(spec->delay_ms);
      break;  // stalled, but the write proceeds untouched
    case FaultKind::kFail:
    // Network kinds degrade to a plain failure on a disk-shaped path.
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
    case FaultKind::kPartition:
      out.fail = true;
      out.write_payload = false;
      break;
    case FaultKind::kNoSpace:
      // ENOSPC: nothing reaches the device and the caller must surface
      // a storage-origin exhaustion, not a retryable IOError.
      out.fail = true;
      out.write_payload = false;
      out.no_space = true;
      break;
    case FaultKind::kTornWrite: {
      const double keep = std::clamp(spec->keep_fraction, 0.0, 1.0);
      const size_t n =
          static_cast<size_t>(keep * static_cast<double>(payload->size()));
      payload->resize(std::min(n, payload->size()));
      out.fail = true;
      out.write_payload = true;
      break;
    }
    case FaultKind::kBitFlip:
    case FaultKind::kCorrupt: {  // same silent mutation on a write path
      if (!payload->empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        const size_t pos = rng_.Uniform(payload->size());
        (*payload)[pos] =
            static_cast<char>((*payload)[pos] ^ (1 << rng_.Uniform(8)));
      }
      out.fail = false;
      out.write_payload = true;
      break;
    }
  }
  return out;
}

FaultInjector& Faults() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

const std::vector<FaultPointInfo>& KnownFaultPoints() {
  static const std::vector<FaultPointInfo>* kPoints =
      new std::vector<FaultPointInfo>{
          {"file.write", "write", "generic file write (SSTable/manifest tmp)"},
          {"file.rename", "op", "atomic commit rename"},
          {"file.read", "op", "whole-file read into memory"},
          {"file.remove", "op", "stale file removal"},
          {"file.fsync", "op",
           "fsync(2) of a file or directory (failure = fsync-gate)"},
          {"file.dirsync", "op", "directory fsync after create/rename"},
          {"wal.open", "op", "WAL open/create"},
          {"wal.append", "write", "WAL record append (torn-tail capable)"},
          {"wal.sync", "op", "WAL fsync"},
          {"wal.replay", "read", "WAL image read at recovery"},
          {"sst.build", "write", "SSTable build stream"},
          {"sst.open", "op", "SSTable open"},
          {"sstable.flush", "op",
           "memtable flush to a new SSTable (ENOSPC-capable)"},
          {"compaction.write", "op",
           "compaction output table write (ENOSPC-capable)"},
          {"sstable.read_block", "read", "SSTable block read (CRC-checked)"},
          {"embedding.load", "read", "embedding shard load (CRC-checked)"},
          {"serving.index_build", "op", "ANN index construction"},
          {"ann.search", "op", "accelerated ANN search (latency/fault)"},
          {"kv.read", "op", "KvStore serving read (latency/fault)"},
          {"graph.traverse", "op", "graph traversal step (latency/fault)"},
          {"transport.send", "transport",
           "replication message send (drop/duplicate/reorder/delay/"
           "partition)"},
      };
  return *kPoints;
}

}  // namespace saga
