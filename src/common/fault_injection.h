#ifndef SAGA_COMMON_FAULT_INJECTION_H_
#define SAGA_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace saga {

/// What happens when an armed fault point fires.
enum class FaultKind {
  /// The guarded operation fails with an injected IOError before doing
  /// any work (e.g. a rename or fsync that never happens).
  kFail,
  /// The payload is truncated to a prefix, the truncated bytes still
  /// reach disk, and the operation then reports failure — models a
  /// crash/power-cut mid-write.
  kTornWrite,
  /// One payload bit is flipped and the operation "succeeds" — models
  /// silent media corruption discovered only at read time.
  kBitFlip,
  /// The calling thread sleeps for `delay_ms` and the operation then
  /// proceeds normally — models a slow dependency (GC pause, degraded
  /// disk, overloaded replica) rather than a failed one. The overload
  /// harness uses this to drive breakers and hedged reads.
  kDelay,
  /// Read-side corruption: one bit of the bytes just read is flipped
  /// and the operation "succeeds" — models bit rot (media decay, bad
  /// RAM, a flaky controller) surfacing between disk and the caller.
  /// The checksummed read path (integrity subsystem) is expected to
  /// catch it and answer kDataLoss instead of serving garbage. Only
  /// meaningful at read-shaped points (InjectRead).
  kCorrupt,
};

struct FaultSpec {
  FaultKind kind = FaultKind::kFail;
  /// Fire on the nth eligible hit, 1-based. 0 = every eligible hit.
  int fail_nth = 1;
  /// Per-hit probability of being eligible (drawn from the injector's
  /// seeded Rng, so runs are reproducible).
  double probability = 1.0;
  /// kTornWrite: fraction of the payload that survives, in [0, 1).
  double keep_fraction = 0.5;
  /// kDelay: how long the guarded operation is stalled.
  double delay_ms = 0.0;
  /// When false (default) the spec disarms itself after firing once;
  /// when true it keeps firing on every eligible hit >= fail_nth.
  bool repeat = false;
};

/// Outcome of a fault check at a write-shaped fault point.
struct WriteFault {
  /// Caller must report an injected error after honoring the payload.
  bool fail = false;
  /// Caller should still write the (possibly mutated) payload — true
  /// for torn writes and bit flips, false for plain failures.
  bool write_payload = true;
};

/// Deterministic, seeded fault injector with named fault points.
///
/// Production code guards IO edges with `Faults().armed()` (a relaxed
/// atomic load — effectively free when nothing is armed) and then asks
/// the injector whether the named point fires. Tests arm points with
/// `Arm`/`ScopedFault` and drive crash/corruption scenarios without
/// touching real hardware.
///
/// Fault point names used by the platform are documented in DESIGN.md
/// ("Durability & failure model"): file.write, file.rename, file.read,
/// file.remove, file.dirsync, wal.open, wal.append, wal.sync,
/// sst.build, sst.open, serving.index_build, the latency-injectable
/// serving hot points ann.search, kv.read, graph.traverse, and the
/// read-side corruption points sstable.read_block, wal.replay,
/// embedding.load (see DESIGN.md "Integrity & versioned deployment").
///
/// Thread-safe; all state sits behind one mutex (fault paths are not
/// hot paths once armed).
class FaultInjector {
 public:
  FaultInjector() : rng_(0xFA17) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Reseeds the eligibility Rng (probability draws and torn/bit-flip
  /// positions), making randomized chaos runs reproducible.
  void Seed(uint64_t seed);

  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Arms a repeating latency fault: every hit of `point` stalls the
  /// calling thread for `ms` until the point is disarmed.
  void InjectDelay(const std::string& point, double ms);

  /// Cheap global check: true when at least one point is armed.
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Pure-failure fault points (rename, fsync, remove, open...).
  /// Returns the injected error when the point fires, OK otherwise.
  /// Torn-write/bit-flip specs on such points degrade to kFail; a
  /// kDelay spec sleeps (outside the injector lock) and returns OK.
  Status InjectOp(const std::string& point);

  /// Write-shaped fault points. May truncate (torn write) or bit-flip
  /// `payload` in place; see WriteFault for what the caller must do.
  WriteFault InjectWrite(const std::string& point, std::string* payload);

  /// Read-shaped fault points guarding bytes already in memory. A
  /// kCorrupt (or kBitFlip/kTornWrite, which degrade to it) spec flips
  /// one bit inside [data, data+len) and returns OK — the caller's
  /// checksum verification is what must notice. kFail returns the
  /// injected IOError; kDelay stalls then returns OK.
  Status InjectRead(const std::string& point, char* data, size_t len);

  /// Times the point was consulted / times it fired (for assertions).
  uint64_t hits(const std::string& point) const;
  uint64_t fires(const std::string& point) const;

 private:
  struct Armed {
    FaultSpec spec;
    uint64_t eligible_hits = 0;
  };

  /// Returns the spec if the point fires on this hit (and handles
  /// one-shot disarm); nullopt otherwise.
  std::optional<FaultSpec> Check(const std::string& point);

  mutable std::mutex mu_;
  std::map<std::string, Armed> points_;
  std::map<std::string, uint64_t> hits_;
  std::map<std::string, uint64_t> fires_;
  std::atomic<int> armed_points_{0};
  Rng rng_;
};

/// Process-wide injector instance shared by all guarded IO edges.
FaultInjector& Faults();

/// RAII arm/disarm of one fault point.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSpec spec) : point_(std::move(point)) {
    Faults().Arm(point_, spec);
  }
  ~ScopedFault() { Faults().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace saga

/// The subsystem is usually referred to as saga::common::FaultInjector
/// in design docs; keep that spelling valid.
namespace saga::common {
using ::saga::FaultInjector;
using ::saga::FaultKind;
using ::saga::FaultSpec;
using ::saga::ScopedFault;
}  // namespace saga::common

#endif  // SAGA_COMMON_FAULT_INJECTION_H_
