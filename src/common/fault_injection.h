#ifndef SAGA_COMMON_FAULT_INJECTION_H_
#define SAGA_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace saga {

/// What happens when an armed fault point fires.
enum class FaultKind {
  /// The guarded operation fails with an injected IOError before doing
  /// any work (e.g. a rename or fsync that never happens).
  kFail,
  /// The payload is truncated to a prefix, the truncated bytes still
  /// reach disk, and the operation then reports failure — models a
  /// crash/power-cut mid-write.
  kTornWrite,
  /// One payload bit is flipped and the operation "succeeds" — models
  /// silent media corruption discovered only at read time.
  kBitFlip,
  /// The calling thread sleeps for `delay_ms` and the operation then
  /// proceeds normally — models a slow dependency (GC pause, degraded
  /// disk, overloaded replica) rather than a failed one. The overload
  /// harness uses this to drive breakers and hedged reads.
  kDelay,
  /// Read-side corruption: one bit of the bytes just read is flipped
  /// and the operation "succeeds" — models bit rot (media decay, bad
  /// RAM, a flaky controller) surfacing between disk and the caller.
  /// The checksummed read path (integrity subsystem) is expected to
  /// catch it and answer kDataLoss instead of serving garbage. Only
  /// meaningful at read-shaped points (InjectRead).
  kCorrupt,
  /// Network kinds, meaningful at transport-shaped points
  /// (InjectTransport; the replication tier's SimTransport consults
  /// `transport.send`). At non-transport points they degrade to the
  /// nearest disk-shaped behavior (kFail).
  ///
  /// The message is silently lost in flight; the sender learns only
  /// through missing acks/timeouts.
  kDrop,
  /// The message is delivered twice — receivers must be idempotent.
  kDuplicate,
  /// The message is held back and delivered after later traffic on the
  /// same link (out-of-order delivery).
  kReorder,
  /// The link behaves as fully partitioned: every eligible message is
  /// dropped until the point is disarmed. Semantically kDrop with
  /// repeat, kept distinct so chaos schedules read naturally.
  kPartition,
  /// The device reports ENOSPC: the guarded operation fails with a
  /// storage-origin kResourceExhausted (Status::StorageExhausted)
  /// before any bytes reach disk. Meaningful at op- and write-shaped
  /// points (file.write, file.fsync, wal.append, sstable.flush,
  /// compaction.write); reads degrade to kFail, transports to kDrop.
  /// The resource subsystem's chaos tests use this to fill the "disk"
  /// deterministically mid-workload.
  kNoSpace,
};

struct FaultSpec {
  FaultKind kind = FaultKind::kFail;
  /// Fire on the nth eligible hit, 1-based. 0 = every eligible hit.
  int fail_nth = 1;
  /// Per-hit probability of being eligible (drawn from the injector's
  /// seeded Rng, so runs are reproducible).
  double probability = 1.0;
  /// kTornWrite: fraction of the payload that survives, in [0, 1).
  double keep_fraction = 0.5;
  /// kDelay: how long the guarded operation is stalled.
  double delay_ms = 0.0;
  /// When false (default) the spec disarms itself after firing once;
  /// when true it keeps firing on every eligible hit >= fail_nth.
  bool repeat = false;
};

/// What a transport-shaped fault point tells the caller to do with the
/// message it is about to deliver.
enum class TransportFaultAction {
  kNone,       // deliver normally
  kDrop,       // lose the message silently
  kDuplicate,  // deliver it twice
  kReorder,    // deliver it after later traffic on the link
  kDelay,      // deliver it `delay_ms` late
};

struct TransportFault {
  TransportFaultAction action = TransportFaultAction::kNone;
  /// kDelay: how late the message lands.
  double delay_ms = 0.0;
};

/// One entry in the static catalog of fault points the platform
/// exposes (see KnownFaultPoints). `shape` is which Inject* call
/// guards it: "op", "write", "read", or "transport".
struct FaultPointInfo {
  const char* name;
  const char* shape;
  const char* description;
};

/// Outcome of a fault check at a write-shaped fault point.
struct WriteFault {
  /// Caller must report an injected error after honoring the payload.
  bool fail = false;
  /// Caller should still write the (possibly mutated) payload — true
  /// for torn writes and bit flips, false for plain failures.
  bool write_payload = true;
  /// The injected failure is ENOSPC (kNoSpace): the caller must report
  /// Status::StorageExhausted instead of a generic IOError, so the
  /// retry layer's storage-origin gate and the disk-space governor's
  /// degraded-mode trip both see the right shape.
  bool no_space = false;
};

/// Deterministic, seeded fault injector with named fault points.
///
/// Production code guards IO edges with `Faults().armed()` (a relaxed
/// atomic load — effectively free when nothing is armed) and then asks
/// the injector whether the named point fires. Tests arm points with
/// `Arm`/`ScopedFault` and drive crash/corruption scenarios without
/// touching real hardware.
///
/// Fault point names used by the platform are documented in DESIGN.md
/// ("Durability & failure model"): file.write, file.rename, file.read,
/// file.remove, file.fsync, file.dirsync, wal.open, wal.append,
/// wal.sync, sst.build, sst.open, sstable.flush, compaction.write,
/// serving.index_build, the latency-injectable serving hot points
/// ann.search, kv.read, graph.traverse, and the read-side corruption
/// points sstable.read_block, wal.replay, embedding.load (see
/// DESIGN.md "Integrity & versioned deployment" and "Resource
/// exhaustion & degraded modes").
///
/// Thread-safe; all state sits behind one mutex (fault paths are not
/// hot paths once armed).
class FaultInjector {
 public:
  FaultInjector() : rng_(0xFA17) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Reseeds the eligibility Rng (probability draws and torn/bit-flip
  /// positions), making randomized chaos runs reproducible.
  void Seed(uint64_t seed);

  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Arms a repeating latency fault: every hit of `point` stalls the
  /// calling thread for `ms` until the point is disarmed.
  void InjectDelay(const std::string& point, double ms);

  /// Cheap global check: true when at least one point is armed.
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Pure-failure fault points (rename, fsync, remove, open...).
  /// Returns the injected error when the point fires, OK otherwise.
  /// Torn-write/bit-flip specs on such points degrade to kFail; a
  /// kDelay spec sleeps (outside the injector lock) and returns OK.
  Status InjectOp(const std::string& point);

  /// Write-shaped fault points. May truncate (torn write) or bit-flip
  /// `payload` in place; see WriteFault for what the caller must do.
  WriteFault InjectWrite(const std::string& point, std::string* payload);

  /// Read-shaped fault points guarding bytes already in memory. A
  /// kCorrupt (or kBitFlip/kTornWrite, which degrade to it) spec flips
  /// one bit inside [data, data+len) and returns OK — the caller's
  /// checksum verification is what must notice. kFail returns the
  /// injected IOError; kDelay stalls then returns OK.
  Status InjectRead(const std::string& point, char* data, size_t len);

  /// Transport-shaped fault points (message sends on the simulated
  /// network). Never sleeps — a kDelay spec is returned as a
  /// TransportFaultAction::kDelay so the transport can schedule the
  /// late delivery on its own logical clock instead of stalling the
  /// sender. kFail/kPartition degrade to kDrop (a frame that never
  /// arrives); kBitFlip/kCorrupt/kTornWrite also degrade to kDrop (a
  /// garbled frame fails its checksum and is discarded by the
  /// receiver).
  TransportFault InjectTransport(const std::string& point);

  /// Times the point was consulted / times it fired (for assertions).
  uint64_t hits(const std::string& point) const;
  uint64_t fires(const std::string& point) const;

  /// Currently armed point names, sorted (for `saga_cli faults list`).
  std::vector<std::string> ArmedPoints() const;

 private:
  struct Armed {
    FaultSpec spec;
    uint64_t eligible_hits = 0;
  };

  /// Returns the spec if the point fires on this hit (and handles
  /// one-shot disarm); nullopt otherwise.
  std::optional<FaultSpec> Check(const std::string& point);

  mutable std::mutex mu_;
  std::map<std::string, Armed> points_;
  std::map<std::string, uint64_t> hits_;
  std::map<std::string, uint64_t> fires_;
  std::atomic<int> armed_points_{0};
  Rng rng_;
};

/// Process-wide injector instance shared by all guarded IO edges.
FaultInjector& Faults();

/// Static catalog of every fault point the platform guards, so chaos
/// runs (and `saga_cli faults list`) can discover injection sites
/// without grepping the source. Kept in sync with the call sites by
/// fault_injection_test's catalog cross-check.
const std::vector<FaultPointInfo>& KnownFaultPoints();

/// RAII arm/disarm of one fault point.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSpec spec) : point_(std::move(point)) {
    Faults().Arm(point_, spec);
  }
  ~ScopedFault() { Faults().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace saga

/// The subsystem is usually referred to as saga::common::FaultInjector
/// in design docs; keep that spelling valid.
namespace saga::common {
using ::saga::FaultInjector;
using ::saga::FaultKind;
using ::saga::FaultSpec;
using ::saga::ScopedFault;
}  // namespace saga::common

#endif  // SAGA_COMMON_FAULT_INJECTION_H_
