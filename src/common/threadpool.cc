#include "common/threadpool.h"

#include <atomic>
#include <utility>

#include "common/trace.h"

namespace saga {

namespace {

/// Carries the submitter's trace context across the pool boundary:
/// the queued task re-installs it in the worker, so spans opened
/// inside re-parent under the submitting span (by id, as their own
/// fragment) instead of silently starting a disconnected trace.
/// Inline execution (zero workers) keeps the ambient context as-is.
std::function<void()> WrapWithTraceContext(std::function<void()> task) {
  if (!obs::TracingEnabled()) return task;
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (!ctx.valid()) return task;
  return [ctx, inner = std::move(task)] {
    obs::ScopedTraceContext scope(ctx);
    inner();
  };
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : ThreadPool(num_threads, 0) {}

ThreadPool::ThreadPool(int num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(WrapWithTraceContext(std::move(task)));
  }
  task_available_.notify_one();
}

Status ThreadPool::TrySubmit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return Status::OK();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_queue_ > 0 && queue_.size() >= max_queue_) {
      return Status::ResourceExhausted("threadpool queue full (" +
                                       std::to_string(queue_.size()) +
                                       " pending)");
    }
    queue_.push_back(WrapWithTraceContext(std::move(task)));
  }
  task_available_.notify_one();
  return Status::OK();
}

size_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t num_shards =
      std::min<size_t>(n, static_cast<size_t>(pool->num_threads()) * 4);
  if (num_shards == 0) return;
  std::atomic<size_t> next{0};
  for (size_t s = 0; s < num_shards; ++s) {
    pool->Submit([&next, n, &fn] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace saga
