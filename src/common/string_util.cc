#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace saga {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return FormatDouble(v, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

}  // namespace saga
