#ifndef SAGA_COMMON_HASH_H_
#define SAGA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace saga {

/// 64-bit FNV-1a over arbitrary bytes. Stable across platforms and runs;
/// used for blocking keys, feature hashing, and bloom filters, so it must
/// never change.
inline uint64_t Hash64(const void* data, size_t len,
                       uint64_t seed = 0xCBF29CE484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t Hash64(std::string_view s,
                       uint64_t seed = 0xCBF29CE484222325ULL) {
  return Hash64(s.data(), s.size(), seed);
}

/// Finalizer-style avalanche mix (from MurmurHash3), useful to derive
/// independent hash functions from one value.
inline uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace saga

#endif  // SAGA_COMMON_HASH_H_
