#ifndef SAGA_COMMON_FILE_UTIL_H_
#define SAGA_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace saga {

/// Reads an entire file into memory.
Result<std::string> ReadFileToString(const std::string& path);

/// Creates/truncates `path` and writes `data` atomically (write to a temp
/// file, then rename). With `durable` the temp file is fsync'd before the
/// rename and the parent directory after it, so the rename itself is
/// crash-safe. Fault points: `file.write` (payload), `file.rename`,
/// `file.dirsync` (crash between the rename and the directory fsync —
/// the rename may or may not survive power loss).
Status WriteStringToFile(const std::string& path, std::string_view data,
                         bool durable = false);

/// fsync(2) on an existing file (no-op success on platforms without it).
Status SyncFile(const std::string& path);

/// fsync(2) on a directory, making completed renames/creates durable.
Status SyncDir(const std::string& path);

/// Appends to an existing (or new) file without atomicity guarantees.
Status AppendToFile(const std::string& path, std::string_view data);

bool FileExists(const std::string& path);

Result<uint64_t> FileSize(const std::string& path);

Status CreateDirIfMissing(const std::string& path);

/// Removes a file; OK if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// Renames `from` to `to`, replacing `to` if present. Fault point:
/// `file.rename`.
Status RenameFile(const std::string& from, const std::string& to);

/// RenameFile + fsync of `to`'s parent directory, so the rename itself
/// survives power loss (a plain rename lives only in the dirty
/// directory page until the next sync). Fault points: `file.rename`,
/// `file.dirsync` (between the two steps).
Status RenameFileDurable(const std::string& from, const std::string& to);

/// Copies `from` to `to` atomically (tmp + rename; durable when asked).
Status CopyFile(const std::string& from, const std::string& to,
                bool durable = false);

/// Hard-links `from` as `to` (same inode — free and instant for
/// immutable files); falls back to an atomic copy on filesystems or
/// paths where linking fails. `to` must not exist.
Status HardLinkOrCopyFile(const std::string& from, const std::string& to);

/// Lists directory names (sorted) directly inside `dir`.
Result<std::vector<std::string>> ListSubdirs(const std::string& dir);

/// Truncates `path` to exactly `size` bytes (used by WAL recovery to cut
/// a torn tail before appending new records behind it).
Status TruncateFile(const std::string& path, uint64_t size);

/// Recursively removes a directory tree; OK if it does not exist.
Status RemoveDirRecursively(const std::string& path);

/// Lists regular files (names only, sorted) directly inside `dir`.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Creates a fresh unique directory under the system temp dir with the
/// given prefix. The caller owns cleanup.
Result<std::string> MakeTempDir(const std::string& prefix);

std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace saga

#endif  // SAGA_COMMON_FILE_UTIL_H_
