#include "common/history.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/string_util.h"
#include "common/trace.h"

namespace saga::obs {

namespace {

int64_t WallNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string FmtNs(double ns) {
  if (ns >= 1e9) return FormatDouble(ns / 1e9, 2) + "s";
  if (ns >= 1e6) return FormatDouble(ns / 1e6, 2) + "ms";
  if (ns >= 1e3) return FormatDouble(ns / 1e3, 2) + "us";
  return FormatDouble(ns, 0) + "ns";
}

/// Reset-tolerant counter delta for one interval.
int64_t IntervalDelta(int64_t newer, int64_t older) {
  return newer >= older ? newer - older : newer;
}

}  // namespace

History::History(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t History::Capture() {
  return CaptureAt(WallNowMs(), MonotonicNowNs());
}

uint64_t History::CaptureAt(int64_t unix_ms, uint64_t mono_ns) {
  Snapshot snap;
  snap.unix_ms = unix_ms;
  snap.mono_ns = mono_ns;
  const Registry& reg = Registry::Global();
  for (auto& [name, value] : reg.CountersWithPrefix("")) {
    snap.counters.emplace(std::move(name), value);
  }
  for (auto& [name, value] : reg.GaugesWithPrefix("")) {
    snap.gauges.emplace(std::move(name), value);
  }
  for (auto& latency : reg.LatencySnapshotsWithPrefix("")) {
    snap.latencies.emplace(std::move(latency.name), latency.dist);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(snap));
  while (ring_.size() > capacity_) ring_.pop_front();
  return ++total_captures_;
}

size_t History::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

Snapshot History::At(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return i < ring_.size() ? ring_[i] : Snapshot{};
}

Snapshot History::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? Snapshot{} : ring_.back();
}

int64_t History::DeltaOver(const std::string& counter, size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2 || window == 0) return 0;
  const size_t first =
      ring_.size() - 1 - std::min(window, ring_.size() - 1);
  int64_t total = 0;
  for (size_t i = first + 1; i < ring_.size(); ++i) {
    auto newer = ring_[i].counters.find(counter);
    if (newer == ring_[i].counters.end()) continue;
    auto older = ring_[i - 1].counters.find(counter);
    const int64_t prev =
        older == ring_[i - 1].counters.end() ? 0 : older->second;
    total += IntervalDelta(newer->second, prev);
  }
  return total;
}

double History::RatePerSec(const std::string& counter, size_t window) const {
  const int64_t delta = DeltaOver(counter, window);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2 || window == 0) return 0.0;
  const size_t first =
      ring_.size() - 1 - std::min(window, ring_.size() - 1);
  const uint64_t span_ns = ring_.back().mono_ns - ring_[first].mono_ns;
  if (span_ns == 0) return 0.0;
  return static_cast<double>(delta) * 1e9 / static_cast<double>(span_ns);
}

LatencyDist History::WindowDistLocked(const std::string& latency,
                                      size_t window) const {
  LatencyDist total;
  if (ring_.size() < 2 || window == 0) return total;
  const size_t first =
      ring_.size() - 1 - std::min(window, ring_.size() - 1);
  for (size_t i = first + 1; i < ring_.size(); ++i) {
    auto newer = ring_[i].latencies.find(latency);
    if (newer == ring_[i].latencies.end()) continue;
    auto older = ring_[i - 1].latencies.find(latency);
    const LatencyDist delta =
        older == ring_[i - 1].latencies.end()
            ? newer->second
            : newer->second.DeltaSince(older->second);
    for (size_t b = 0; b < total.buckets.size(); ++b) {
      total.buckets[b] += delta.buckets[b];
    }
    total.sum_ns += delta.sum_ns;
  }
  return total;
}

double History::PercentileOverWindowNs(const std::string& latency, double p,
                                       size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowDistLocked(latency, window).PercentileNs(p);
}

uint64_t History::CountOverWindow(const std::string& latency,
                                  size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowDistLocked(latency, window).count();
}

double History::LatestGauge(const std::string& gauge) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0.0;
  auto it = ring_.back().gauges.find(gauge);
  return it == ring_.back().gauges.end() ? 0.0 : it->second;
}

std::string History::Report(size_t window) const {
  Snapshot latest;
  size_t n;
  uint64_t captures;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = ring_.size();
    captures = total_captures_;
    if (!ring_.empty()) latest = ring_.back();
  }
  std::string out;
  char buf[256];
  if (n < 2) {
    return "history: " + std::to_string(n) +
           " snapshot(s) — need at least 2 for rates\n";
  }
  const size_t w = std::min(window, n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t first = ring_.size() - 1 - w;
    const double span_s =
        static_cast<double>(ring_.back().mono_ns - ring_[first].mono_ns) /
        1e9;
    std::snprintf(buf, sizeof(buf),
                  "history: %zu/%zu snapshots (%llu captures), window %zu "
                  "intervals spanning %.1fs\n",
                  n, capacity_, static_cast<unsigned long long>(captures), w,
                  span_s);
    out += buf;
  }
  out += "\ncounter                                     delta      rate/s\n";
  for (const auto& [name, value] : latest.counters) {
    const int64_t delta = DeltaOver(name, w);
    if (delta == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-40s %9lld %11.1f\n", name.c_str(),
                  static_cast<long long>(delta), RatePerSec(name, w));
    out += buf;
  }
  out += "\nlatency (window)                            n        p50        "
         "p99   p99 series\n";
  for (const auto& [name, dist] : latest.latencies) {
    const uint64_t count = CountOverWindow(name, w);
    if (count == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-40s %5llu %10s %10s   ", name.c_str(),
                  static_cast<unsigned long long>(count),
                  FmtNs(PercentileOverWindowNs(name, 50, w)).c_str(),
                  FmtNs(PercentileOverWindowNs(name, 99, w)).c_str());
    out += buf;
    // Per-interval p99 series, oldest first — the "is it getting
    // worse" glance.
    std::lock_guard<std::mutex> lock(mu_);
    const size_t first = ring_.size() - 1 - w;
    for (size_t i = first + 1; i < ring_.size(); ++i) {
      auto newer = ring_[i].latencies.find(name);
      if (newer == ring_[i].latencies.end()) {
        out += " -";
        continue;
      }
      auto older = ring_[i - 1].latencies.find(name);
      const LatencyDist delta =
          older == ring_[i - 1].latencies.end()
              ? newer->second
              : newer->second.DeltaSince(older->second);
      out += " " + (delta.count() == 0 ? std::string("-")
                                       : FmtNs(delta.PercentileNs(99)));
    }
    out += "\n";
  }
  return out;
}

void History::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_captures_ = 0;
}

History& GlobalHistory() {
  static History* g = new History(128);
  return *g;
}

}  // namespace saga::obs
