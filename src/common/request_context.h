#ifndef SAGA_COMMON_REQUEST_CONTEXT_H_
#define SAGA_COMMON_REQUEST_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "common/trace.h"

namespace saga {

/// Monotonic-clock request deadline. Value-semantic and cheap to copy;
/// the default-constructed deadline is infinite, so code that threads a
/// Deadline through unconditionally pays nothing for callers that never
/// set one (`expired()` on an infinite deadline is one comparison).
///
/// Budget arithmetic lives here too: a stage that wants to spend at
/// most a slice of the remaining budget derives a child deadline with
/// `WithBudgetMillis`, which can only tighten, never extend.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() : at_(Clock::time_point::max()) {}
  explicit Deadline(Clock::time_point at) : at_(at) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMillis(double ms) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms)));
  }
  /// The earlier of two deadlines (an infinite one never wins).
  static Deadline Min(Deadline a, Deadline b) {
    return a.at_ <= b.at_ ? a : b;
  }

  bool infinite() const { return at_ == Clock::time_point::max(); }
  bool expired() const { return !infinite() && Clock::now() >= at_; }

  /// Remaining budget in milliseconds. Negative once overdue; a very
  /// large positive value when infinite (callers usually guard with
  /// infinite() first).
  double RemainingMillis() const {
    if (infinite()) return kInfiniteMillis;
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

  /// Child deadline spending at most `ms` of the remaining budget:
  /// min(this, now + ms). Never later than the parent.
  Deadline WithBudgetMillis(double ms) const {
    return Min(*this, AfterMillis(ms));
  }

  Clock::time_point time_point() const { return at_; }

  static constexpr double kInfiniteMillis = 1e18;

 private:
  Clock::time_point at_;
};

/// Two serving priority classes (paper §6: interactive queries under
/// strict SLAs vs. background/bulk work). High-priority traffic keeps
/// its latency budget under overload; low-priority traffic is shed
/// first by the AdmissionController.
enum class Priority {
  kHigh = 0,
  kLow = 1,
};

inline std::string_view PriorityName(Priority p) {
  return p == Priority::kHigh ? "high" : "low";
}

/// Per-request context threaded through the serving tier: deadline,
/// priority class, and a shared cancellation flag. Copies share the
/// cancellation flag (a copy handed to a worker sees Cancel() from the
/// caller), so pass by value or const reference freely.
///
/// Long loops check cooperatively at loop boundaries:
///
///   for (...) {
///     if ((steps++ & 63) == 0) SAGA_RETURN_IF_ERROR(ctx.Check("ppr"));
///     ...
///   }
class RequestContext {
 public:
  /// Infinite deadline, high priority, never cancelled. Captures the
  /// ambient trace context of the constructing thread (invalid when no
  /// trace is active), so a context built inside a request span
  /// carries the trace wherever the request goes.
  RequestContext() : trace_(obs::CurrentTraceContext()) {}
  explicit RequestContext(Deadline deadline, Priority priority = Priority::kHigh)
      : deadline_(deadline),
        priority_(priority),
        trace_(obs::CurrentTraceContext()) {}

  static RequestContext WithTimeoutMillis(double ms,
                                          Priority priority = Priority::kHigh) {
    return RequestContext(Deadline::AfterMillis(ms), priority);
  }

  const Deadline& deadline() const { return deadline_; }
  Priority priority() const { return priority_; }
  void set_priority(Priority p) { priority_ = p; }

  /// Tighten the deadline (never extends; Deadline::Min semantics).
  void TightenDeadline(Deadline d) { deadline_ = Deadline::Min(deadline_, d); }

  /// Derived context for a sub-operation with its own budget slice.
  RequestContext WithBudgetMillis(double ms) const {
    RequestContext child = *this;
    child.deadline_ = deadline_.WithBudgetMillis(ms);
    return child;
  }

  /// Explicit cancellation (client disconnect, superseded request).
  /// Allocates the shared flag lazily on first Cancel.
  void Cancel() {
    if (cancelled_ == nullptr) {
      cancelled_ = std::make_shared<std::atomic<bool>>(true);
    } else {
      cancelled_->store(true, std::memory_order_relaxed);
    }
  }
  bool cancelled() const {
    return cancelled_ != nullptr &&
           cancelled_->load(std::memory_order_relaxed);
  }

  /// Shares one cancellation flag across copies made *after* this call.
  void EnableSharedCancel() {
    if (cancelled_ == nullptr) {
      cancelled_ = std::make_shared<std::atomic<bool>>(false);
    }
  }

  bool expired() const { return cancelled() || deadline_.expired(); }

  /// Cooperative cancellation point: OK while the request may keep
  /// running, DeadlineExceeded once the budget is spent (or the request
  /// was cancelled). `where` names the loop for the error message.
  Status Check(std::string_view where) const;

  /// Spelled-out alias used at API boundaries.
  Status CheckDeadline(std::string_view where) const { return Check(where); }

  /// Trace identity captured at construction (or set explicitly when a
  /// context is built away from the request thread). Install on the
  /// far side with obs::ScopedTraceContext to stitch cross-thread work
  /// into the originating trace.
  const obs::TraceContext& trace() const { return trace_; }
  void set_trace(const obs::TraceContext& trace) { trace_ = trace; }
  /// Re-captures the ambient trace context (e.g. after opening the
  /// request's root span with a pre-built context).
  void CaptureTrace() { trace_ = obs::CurrentTraceContext(); }

 private:
  Deadline deadline_;
  Priority priority_ = Priority::kHigh;
  std::shared_ptr<std::atomic<bool>> cancelled_;
  obs::TraceContext trace_;
};

}  // namespace saga

#endif  // SAGA_COMMON_REQUEST_CONTEXT_H_
