#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace saga {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load());
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetMinLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal_logging

}  // namespace saga
