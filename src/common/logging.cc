#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/metrics.h"
#include "common/trace.h"

namespace saga {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
/// True when SAGA_MIN_LOG_LEVEL is set: the env override wins over
/// programmatic SetMinLogLevel (so a user can force debug logs out of a
/// bench that quiets itself).
std::atomic<bool> g_env_forced{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

void InitFromEnvOnce() {
  static const bool initialized = [] {
    const char* env = std::getenv("SAGA_MIN_LOG_LEVEL");
    if (env == nullptr) return true;
    if (auto level = ParseLogLevel(env)) {
      g_min_level.store(static_cast<int>(*level));
      g_env_forced.store(true);
    }
    return true;
  }();
  (void)initialized;
}
}  // namespace

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

void SetMinLogLevel(LogLevel level) {
  InitFromEnvOnce();
  if (g_env_forced.load()) return;
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetMinLogLevel() {
  InitFromEnvOnce();
  return static_cast<LogLevel>(g_min_level.load());
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Monotonic seconds since process start + thread id, sharing the
  // trace timebase so log lines line up with span start/end times.
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%12.6f T%02u %-5s %s:%d] ",
                obs::MonotonicNowNs() / 1e9, obs::internal::ThreadId(),
                LevelName(level), Basename(file), line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  if (level_ >= GetMinLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal_logging

}  // namespace saga
