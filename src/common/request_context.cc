#include "common/request_context.h"

#include <cstdio>

namespace saga {

Status RequestContext::Check(std::string_view where) const {
  if (cancelled()) {
    return Status::DeadlineExceeded("request cancelled in " +
                                    std::string(where));
  }
  if (!deadline_.expired()) return Status::OK();
  char buf[160];
  std::snprintf(buf, sizeof(buf), "deadline exceeded in %.*s (%.2fms overdue)",
                static_cast<int>(where.size()), where.data(),
                -deadline_.RemainingMillis());
  return Status::DeadlineExceeded(buf);
}

}  // namespace saga
