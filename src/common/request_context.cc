#include "common/request_context.h"

#include <cstdio>

namespace saga {

Status RequestContext::Check(std::string_view where) const {
  if (cancelled()) {
    // Mark the open span so the tail sampler retains this trace.
    obs::MarkSpanError(StatusCode::kDeadlineExceeded);
    return Status::DeadlineExceeded("request cancelled in " +
                                    std::string(where));
  }
  if (!deadline_.expired()) return Status::OK();
  obs::MarkSpanError(StatusCode::kDeadlineExceeded);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "deadline exceeded in %.*s (%.2fms overdue)",
                static_cast<int>(where.size()), where.data(),
                -deadline_.RemainingMillis());
  return Status::DeadlineExceeded(buf);
}

}  // namespace saga
