#ifndef SAGA_COMMON_TRACE_SAMPLER_H_
#define SAGA_COMMON_TRACE_SAMPLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace saga::obs {

/// One trace retained by the tail sampler: every fragment recorded for
/// the trace (client thread, pool workers, remote replicas), plus the
/// retention verdict.
struct RetainedTrace {
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  std::string root_name;
  uint64_t root_duration_ns = 0;
  bool errored = false;  // a span carried a retained error code
  bool slow = false;     // root latency above the rolling percentile
  std::vector<std::unique_ptr<SpanNode>> fragments;

  std::string TraceIdHex() const;
};

/// Tail-based trace sampler: buffers the fragments of in-flight traces
/// and, when the trace-initiating span completes, decides retention —
/// keep traces that are *slow* (root duration at or above the rolling
/// percentile of same-named roots, once enough samples exist) or
/// *errored* (any span marked kDeadlineExceeded / kUnavailable /
/// kDataLoss); drop the fast, healthy majority. Retained traces live
/// in a fixed-size ring (oldest evicted) and export as Chrome
/// trace_event JSON (`saga_cli trace dump`).
///
/// Lock discipline: one mutex, taken only at fragment completion (per
/// request, not per span) — the per-span hot path never sees it.
/// Thread-safe; Offer may race from any number of request threads.
class TraceSampler {
 public:
  struct Options {
    /// Retained-trace ring capacity (oldest evicted).
    size_t capacity = 64;
    /// In-flight traces buffered at once; beyond this the oldest
    /// pending trace is dropped (a leak guard, not a policy knob).
    size_t max_pending_traces = 256;
    /// A completed root is "slow" when its duration reaches this
    /// percentile of prior same-named roots...
    double slow_percentile = 99.0;
    /// ...once at least this many same-named roots have completed
    /// (before that nothing is slow — the estimate is noise).
    uint64_t min_samples_for_slow = 32;
    /// Absolute floor: roots faster than this are never "slow".
    uint64_t slow_floor_ns = 0;
    /// Retain every completed trace regardless of verdict (CLI trace
    /// dumps, tests). Error/slow flags are still computed.
    bool keep_all = false;
  };

  struct Stats {
    uint64_t traces_decided = 0;
    uint64_t retained_slow = 0;
    uint64_t retained_error = 0;
    uint64_t retained_forced = 0;  // keep_all retentions
    uint64_t dropped = 0;
    uint64_t late_fragments = 0;  // arrived after their trace decided
    uint64_t evicted_pending = 0;
  };

  explicit TraceSampler(Options options);

  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  /// Fragment-completion entry point (wired via the trace module's
  /// fragment sink). `trace_complete` marks the trace-initiating
  /// fragment: it triggers the retention decision.
  void Offer(std::unique_ptr<SpanNode> fragment, bool trace_complete);

  size_t NumRetained() const;
  Stats stats() const;

  /// Visits retained traces oldest-first under the sampler lock.
  void VisitRetained(const std::function<void(const RetainedTrace&)>& fn) const;

  /// All retained traces as one Chrome trace_event JSON document.
  std::string DumpChromeTraceJson() const;

  /// Drops retained and pending traces (stats keep counting).
  void Clear();

  /// True for the error codes whose traces the sampler always keeps.
  static bool IsRetainedError(uint32_t code);

 private:
  struct Pending {
    std::vector<std::unique_ptr<SpanNode>> fragments;
  };

  void Decide(uint64_t hi, uint64_t lo, Pending pending,
              const SpanNode& root);

  Options options_;
  mutable std::mutex mu_;
  std::map<std::pair<uint64_t, uint64_t>, Pending> pending_;
  std::deque<std::pair<uint64_t, uint64_t>> pending_order_;
  /// Bounded memory of recently decided trace ids, so fragments that
  /// complete after their trace's verdict are counted and dropped
  /// instead of pooling in pending_ until eviction.
  std::set<std::pair<uint64_t, uint64_t>> decided_;
  std::deque<std::pair<uint64_t, uint64_t>> decided_order_;
  std::deque<RetainedTrace> retained_;
  /// Rolling latency distribution per root-span name — the "slow"
  /// threshold source. Bounded: one entry per distinct root name.
  std::map<std::string, LatencyHistogram> root_latency_;
  Stats stats_;
};

/// Installs a process-global tail sampler: completed fragments are
/// routed to it instead of the aggregate trace store (SpanReport /
/// AggregateSpans read the store and see nothing while a sampler is
/// installed — serving uses the sampler, benches use the store).
/// Replaces any previous sampler.
TraceSampler& EnableTailSampling(TraceSampler::Options options);
/// Uninstalls the sampler; fragments flow to the store again. The
/// sampler object (and its retained traces) stays valid until the next
/// EnableTailSampling.
void DisableTailSampling();
/// Installed sampler, or nullptr.
TraceSampler* GlobalTraceSampler();

}  // namespace saga::obs

#endif  // SAGA_COMMON_TRACE_SAMPLER_H_
