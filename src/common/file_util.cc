#include "common/file_util.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace saga {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::string data;
  in.seekg(0, std::ios::end);
  const std::streampos size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  data.resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0) in.read(data.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return data;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for write: " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("short write: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status AppendToFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open for append: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IOError("short append: " + path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return size;
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveDirRecursively(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::IOError("remove_all " + path + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const fs::path base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const uint64_t id =
        counter.fetch_add(1) * 1000003ULL + static_cast<uint64_t>(attempt) +
        static_cast<uint64_t>(::getpid()) * 7919ULL;
    fs::path candidate = base / (prefix + "_" + std::to_string(id));
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) {
      return candidate.string();
    }
  }
  return Status::IOError("could not create temp dir with prefix " + prefix);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  if (dir.empty()) return std::string(name);
  std::string out(dir);
  if (out.back() != '/') out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace saga
