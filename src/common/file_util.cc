#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"

namespace saga {

namespace fs = std::filesystem;

namespace {

Status FsyncPath(const std::string& path, int open_flags) {
  if (Faults().armed()) {
    // `file.fsync` models the device refusing the flush. Any injected
    // failure here maps to the fsync-gate below — a kNoSpace spec keeps
    // its storage origin so the governor's degraded-mode trip sees it.
    Status injected = Faults().InjectOp("file.fsync");
    if (!injected.ok()) {
      if (injected.IsStorageExhausted()) return injected;
      return Status::FsyncGate("injected fsync failure " + path + ": " +
                               injected.message());
    }
  }
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IOError("open for fsync " + path + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    // Fsync-gate: after a failed fsync the dirty pages may already be
    // dropped, so this path (and this fd) must never be silently
    // retried — callers rebuild the file or quarantine it.
    return Status::FsyncGate("fsync " + path + ": " +
                             std::strerror(saved_errno));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("file.read"));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::string data;
  in.seekg(0, std::ios::end);
  const std::streampos size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  data.resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0) in.read(data.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return data;
}

Status WriteStringToFile(const std::string& path, std::string_view data,
                         bool durable) {
  const std::string tmp = path + ".tmp";
  std::string_view payload = data;
  std::string mutated;
  bool fail_after_write = false;
  if (Faults().armed()) {
    mutated.assign(data);
    const WriteFault f = Faults().InjectWrite("file.write", &mutated);
    if (f.no_space) {
      return Status::StorageExhausted("injected ENOSPC: " + tmp);
    }
    if (f.fail && !f.write_payload) {
      return Status::IOError("injected write failure: " + tmp);
    }
    payload = mutated;
    fail_after_write = f.fail;
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for write: " + tmp);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) return Status::IOError("short write: " + tmp);
  }
  if (fail_after_write) {
    // Torn write: the prefix reached the temp file, as after a real
    // crash; the rename never happens so `path` is untouched.
    return Status::IOError("injected torn write: " + tmp);
  }
  if (durable) {
    Status sync = SyncFile(tmp);
    if (!sync.ok()) {
      // The tmp file's durability is indeterminate after a failed
      // fsync; discard it so any later attempt rebuilds on a fresh fd
      // (fsync-gate: never re-fsync the same file image).
      (void)RemoveFileIfExists(tmp);
      return sync;
    }
  }
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("file.rename"));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  if (durable) {
    if (Faults().armed()) {
      // Crash window between the rename and the directory fsync: the
      // rename is in the page cache but not yet on the platter.
      SAGA_RETURN_IF_ERROR(Faults().InjectOp("file.dirsync"));
    }
    const std::string parent = fs::path(path).parent_path().string();
    if (!parent.empty()) SAGA_RETURN_IF_ERROR(SyncDir(parent));
  }
  return Status::OK();
}

Status SyncFile(const std::string& path) {
  return FsyncPath(path, O_RDONLY);
}

Status SyncDir(const std::string& path) {
  return FsyncPath(path, O_RDONLY | O_DIRECTORY);
}

Status AppendToFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open for append: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IOError("short append: " + path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return size;
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("file.remove"));
  }
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("file.rename"));
  }
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status RenameFileDurable(const std::string& from, const std::string& to) {
  SAGA_RETURN_IF_ERROR(RenameFile(from, to));
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("file.dirsync"));
  }
  const std::string parent = fs::path(to).parent_path().string();
  if (!parent.empty()) SAGA_RETURN_IF_ERROR(SyncDir(parent));
  return Status::OK();
}

Status CopyFile(const std::string& from, const std::string& to,
                bool durable) {
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(from));
  return WriteStringToFile(to, data, durable);
}

Status HardLinkOrCopyFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::create_hard_link(from, to, ec);
  if (!ec) return Status::OK();
  return CopyFile(from, to, /*durable=*/true);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) {
    return Status::IOError("truncate " + path + " to " +
                           std::to_string(size) + ": " + ec.message());
  }
  return Status::OK();
}

Status RemoveDirRecursively(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::IOError("remove_all " + path + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<std::string>> ListSubdirs(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_directory()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const fs::path base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const uint64_t id =
        counter.fetch_add(1) * 1000003ULL + static_cast<uint64_t>(attempt) +
        static_cast<uint64_t>(::getpid()) * 7919ULL;
    fs::path candidate = base / (prefix + "_" + std::to_string(id));
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) {
      return candidate.string();
    }
  }
  return Status::IOError("could not create temp dir with prefix " + prefix);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  if (dir.empty()) return std::string(name);
  std::string out(dir);
  if (out.back() != '/') out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace saga
