#ifndef SAGA_COMMON_THREADPOOL_H_
#define SAGA_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace saga {

/// Fixed-size worker pool executing void() tasks FIFO. Used by the
/// embedding trainer and annotation pipeline for data parallelism;
/// degrades gracefully to inline execution with zero threads.
class ThreadPool {
 public:
  /// `num_threads == 0` runs every submitted task inline in Submit().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, n), distributing across the pool; blocks until
/// complete. With a zero-thread pool this is a plain loop.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace saga

#endif  // SAGA_COMMON_THREADPOOL_H_
