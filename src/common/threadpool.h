#ifndef SAGA_COMMON_THREADPOOL_H_
#define SAGA_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace saga {

/// Fixed-size worker pool executing void() tasks FIFO. Used by the
/// embedding trainer and annotation pipeline for data parallelism;
/// degrades gracefully to inline execution with zero threads.
///
/// Bounded-queue mode: constructed with `max_queue > 0`, TrySubmit
/// refuses work with Status::ResourceExhausted once that many tasks are
/// waiting, so a saturated service sheds load instead of queueing
/// unboundedly (queued work would only time out after its deadline
/// anyway). Submit() stays unbounded for legacy batch callers.
class ThreadPool {
 public:
  /// `num_threads == 0` runs every submitted task inline in Submit().
  explicit ThreadPool(int num_threads);
  /// Bounded-queue pool: `max_queue == 0` means unbounded.
  ThreadPool(int num_threads, size_t max_queue);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Like Submit, but sheds with ResourceExhausted instead of enqueueing
  /// when the pending queue is at `max_queue`. With zero workers the
  /// task runs inline (there is no queue to bound).
  Status TrySubmit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t max_queue() const { return max_queue_; }
  /// Tasks waiting for a worker right now (excludes running tasks).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t max_queue_ = 0;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, n), distributing across the pool; blocks until
/// complete. With a zero-thread pool this is a plain loop.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace saga

#endif  // SAGA_COMMON_THREADPOOL_H_
