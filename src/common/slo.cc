#include "common/slo.h"

#include <utility>

namespace saga::obs {

SloWatchdog::SloWatchdog(std::vector<SloSpec> specs)
    : specs_(std::move(specs)) {}

std::vector<SloVerdict> SloWatchdog::Evaluate(const History& history,
                                              size_t window) const {
  std::vector<SloVerdict> verdicts;
  verdicts.reserve(specs_.size());
  Registry& reg = Registry::Global();
  for (const SloSpec& spec : specs_) {
    SloVerdict v;
    v.name = spec.name;
    if (!spec.error_counter.empty()) {
      v.good_delta = spec.good_counter.empty()
                         ? 0
                         : history.DeltaOver(spec.good_counter, window);
      v.error_delta = history.DeltaOver(spec.error_counter, window);
      const int64_t total = v.good_delta + v.error_delta;
      if (total > 0) {
        const double error_fraction =
            static_cast<double>(v.error_delta) / static_cast<double>(total);
        const double budget = 1.0 - spec.availability_target;
        v.availability_burn =
            budget > 0.0 ? error_fraction / budget
                         : (error_fraction > 0.0 ? 1e9 : 0.0);
      }
    }
    if (!spec.latency_metric.empty() && spec.latency_p99_target_ms > 0.0) {
      if (history.CountOverWindow(spec.latency_metric, window) > 0) {
        v.window_p99_ms =
            history.PercentileOverWindowNs(spec.latency_metric, 99, window) /
            1e6;
        v.latency_burn = v.window_p99_ms / spec.latency_p99_target_ms;
      }
    }
    v.ok = v.availability_burn <= 1.0 && v.latency_burn <= 1.0;
    // Dynamic names (one gauge set per SLO); the metric-name lint
    // checks the literal "obs.slo." stem at this call site.
    reg.gauge("obs.slo." + spec.name + "_availability_burn")
        .Set(v.availability_burn);
    reg.gauge("obs.slo." + spec.name + "_latency_burn").Set(v.latency_burn);
    reg.gauge("obs.slo." + spec.name + "_ok").Set(v.ok ? 1.0 : 0.0);
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

std::vector<SloSpec> DefaultPlatformSlos() {
  std::vector<SloSpec> specs;
  {
    SloSpec s;
    s.name = "replication_write";
    s.good_counter = "replication.group.acked_puts";
    s.error_counter = "replication.group.rejected_puts";
    s.availability_target = 0.999;
    specs.push_back(std::move(s));
  }
  {
    SloSpec s;
    s.name = "kv_read";
    s.latency_metric = "storage.kv.get_ns";
    s.latency_p99_target_ms = 5.0;
    specs.push_back(std::move(s));
  }
  {
    // Write availability: rejections while the store is read-only
    // degraded (disk budget exhausted) burn this budget; successful
    // Put/Delete acks are the good events.
    SloSpec s;
    s.name = "kv_write";
    s.good_counter = "storage.kv.write_ok";
    s.error_counter = "storage.kv.write_rejected";
    s.availability_target = 0.999;
    specs.push_back(std::move(s));
  }
  {
    SloSpec s;
    s.name = "embedding_topk";
    s.latency_metric = "serving.embedding.topk_ns";
    s.latency_p99_target_ms = 50.0;
    specs.push_back(std::move(s));
  }
  {
    SloSpec s;
    s.name = "qa_ask";
    s.latency_metric = "serving.qa.ask_ns";
    s.latency_p99_target_ms = 100.0;
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace saga::obs
