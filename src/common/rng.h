#ifndef SAGA_COMMON_RNG_H_
#define SAGA_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace saga {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the platform draws from an
/// explicitly seeded Rng so experiments and tests are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent s (s > 0). Rank 0 is
  /// the most likely. Uses a precomputation-free rejection-inversion-lite
  /// approach adequate for workload generation.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Uniformly chosen element. v must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for giving each
  /// parallel worker its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace saga

#endif  // SAGA_COMMON_RNG_H_
