#ifndef SAGA_COMMON_RETRY_H_
#define SAGA_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"

namespace saga {

class CircuitBreaker;

/// Capped exponential backoff with seeded jitter. Used wherever a
/// transient IO failure should be absorbed instead of surfaced: KV
/// store open/flush, SSTable reads during recovery, and the serving
/// tier's ANN index build.
///
/// The sleep function is injectable so tests (and the chaos harness)
/// retry instantly while production callers actually back off.
class RetryPolicy {
 public:
  struct Options {
    /// Total tries, including the first. <= 1 disables retrying.
    int max_attempts = 3;
    double initial_backoff_ms = 1.0;
    double backoff_multiplier = 2.0;
    double max_backoff_ms = 50.0;
    /// Uniform jitter of +/- this fraction around the backoff.
    double jitter_fraction = 0.2;
    uint64_t jitter_seed = 42;
  };

  using SleepFn = std::function<void(double millis)>;
  using RetryablePredicate = std::function<bool(const Status&)>;

  RetryPolicy() : RetryPolicy(Options()) {}
  /// Null `sleep` means really sleep (std::this_thread).
  explicit RetryPolicy(Options options, SleepFn sleep = nullptr);

  /// Runs `op` until it succeeds, fails with a non-retryable status, or
  /// attempts are exhausted; returns the last status. Each retry (not
  /// first attempts) bumps the `retry.attempts` counter on `metrics`
  /// when provided. `retryable` defaults to IsRetryable.
  Status Run(const std::string& op_name, const std::function<Status()>& op,
             MetricsRegistry* metrics = nullptr,
             const RetryablePredicate& retryable = nullptr);

  /// Breaker-aware variant: every attempt (including retries) first
  /// consults `breaker->Allow()` and reports its outcome back. An open
  /// breaker short-circuits the whole retry loop with Unavailable —
  /// retrying against a tripped dependency would only deepen the
  /// overload the breaker exists to relieve. Unavailable is never
  /// retryable. Null `breaker` degrades to the plain Run above.
  Status Run(const std::string& op_name, const std::function<Status()>& op,
             CircuitBreaker* breaker, MetricsRegistry* metrics = nullptr,
             const RetryablePredicate& retryable = nullptr);

  /// Backoff for the given 1-based completed attempt, jitter included.
  /// Deterministic for a fixed jitter_seed and call sequence.
  double BackoffMs(int attempt);

  /// Default classification: IOError and ResourceExhausted are worth
  /// retrying; corruption and programmer errors are not. This is the
  /// complete retryable set — every other StatusCode (pinned by a unit
  /// test) is permanent from the retry layer's point of view. Note the
  /// NeverRetryable gate below still wins: a ResourceExhausted whose
  /// origin is storage (full disk) or an IOError whose origin is a
  /// failed fsync is code-retryable but origin-fatal.
  static bool IsRetryable(const Status& s) {
    return !NeverRetryable(s) &&
           (s.code() == StatusCode::kIOError ||
            s.code() == StatusCode::kResourceExhausted);
  }

  /// Statuses no predicate may override; checked inside Run() even
  /// when a custom RetryablePredicate says yes. kDataLoss: the same
  /// rotten bytes come back and retries mask real data loss.
  /// kStorageExhausted: a full disk stays full until something
  /// *reclaims* space — retrying burns CPU against a wall and delays
  /// the reclaim path that actually helps. kFsyncGate: after a failed
  /// fsync the kernel may have dropped the dirty pages, so a retried
  /// fsync on the same fd can report success for bytes that are gone.
  static bool NeverRetryable(const Status& s) {
    return s.code() == StatusCode::kDataLoss ||
           s.origin() == StatusOrigin::kStorageExhausted ||
           s.origin() == StatusOrigin::kFsyncGate;
  }

  /// Retries performed across all Run calls on this policy.
  uint64_t total_retries() const { return total_retries_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  SleepFn sleep_;
  Rng rng_;
  uint64_t total_retries_ = 0;
};

}  // namespace saga

#endif  // SAGA_COMMON_RETRY_H_
