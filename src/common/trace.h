#ifndef SAGA_COMMON_TRACE_H_
#define SAGA_COMMON_TRACE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace saga::obs {

/// Nanoseconds on the steady clock since process start — the shared
/// timebase for spans and log lines, so the two correlate.
uint64_t MonotonicNowNs();

/// Tracing is off by default (spans then cost one relaxed atomic load);
/// benches, saga_cli stats, and tests turn it on for the run.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Request-scoped trace identity, Dapper-style: a 128-bit trace id
/// naming the request end to end, plus the span id of the innermost
/// open span (the parent any new child — on this thread, a pool
/// worker, or a remote replica — attaches under).
///
/// The context travels three ways:
///  - same thread: ambient (thread-local), maintained by ScopedSpan;
///  - across ThreadPool::Submit: captured at submit time and installed
///    in the worker via ScopedTraceContext, so pool-hopped spans
///    re-parent instead of silently starting a disconnected tree;
///  - across the wire: serialized into replication Messages; the
///    receiving replica adopts it, so a quorum write's spans stitch
///    into one trace across SimTransport.
struct TraceContext {
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  /// Innermost open span — the parent for new spans. 0 at the trace
  /// root (the span that initiated the trace has no parent).
  uint64_t span_id = 0;
  /// Head-sampling verdict carried with the trace. Spans of an
  /// unsampled trace are not recorded at all (the tail sampler only
  /// ever sees sampled traces).
  bool sampled = true;

  bool valid() const { return (trace_id_hi | trace_id_lo) != 0; }
  /// 32 lowercase hex chars, e.g. for Chrome trace args and exemplars.
  std::string TraceIdHex() const;
};

/// Ambient context of the calling thread (invalid when no trace is
/// active). Capture this before handing work to another thread or
/// serializing a message; the far side installs it with
/// ScopedTraceContext.
TraceContext CurrentTraceContext();

/// Installs `ctx` as the ambient context for the current scope and
/// opens a new trace *segment*: spans created inside are recorded as a
/// separate fragment (parented by ctx.span_id through ids, not by the
/// thread's enclosing span objects). This is what a pool worker or a
/// message handler wraps around its work — even when, as in the
/// simulated transport, the "remote" handler happens to run on the
/// same OS thread as the client.
///
/// Installing an invalid context is allowed and simply detaches: spans
/// inside start a fresh trace of their own.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_ctx_;
  size_t saved_boundary_ = 0;
  bool active_ = false;
};

/// One completed timed region. Trees (fragments) are owned by the
/// global trace store — or the tail sampler, when one is installed —
/// once their fragment root finishes.
struct SpanNode {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;
  /// Trace identity: every span carries the full linkage so fragments
  /// recorded on different threads/replicas stitch back together.
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  uint64_t span_id = 0;
  /// 0 for the span that initiated the trace.
  uint64_t parent_span_id = 0;
  /// StatusCode of the first error marked on this span (0 = OK); set
  /// by MarkSpanError from deadline checks and failure paths, read by
  /// the tail sampler's retention policy.
  uint32_t error_code = 0;
  std::vector<std::unique_ptr<SpanNode>> children;
};

/// RAII tracing span. Spans started while another span is open in the
/// same segment of the same thread nest under it; when a segment-root
/// span closes, its finished fragment moves into the process-global
/// trace store (or the installed TraceSampler), where the export
/// functions below read it. The span that finds no ambient context
/// starts a new trace.
///
/// Span names follow the metric scheme: `subsystem.component.stage`.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanNode* node_ = nullptr;          // null when tracing was disabled
  std::unique_ptr<SpanNode> root_;    // set only for segment roots
  uint64_t prev_parent_span_id_ = 0;  // ambient span id to restore
  bool started_trace_ = false;        // this span initiated the trace
};

/// Marks the innermost open span of this thread as failed with `code`.
/// No-op when no span is open, when tracing is off, or (the Status
/// overload) when the status is OK. Wired into RequestContext::Check
/// and the serving failure paths so errored requests are retained by
/// the tail sampler without per-call-site plumbing.
void MarkSpanError(StatusCode code);
void MarkSpanError(const Status& status);

/// Aggregated per-name timing across all collected span trees.
/// Exclusive time is inclusive minus the inclusive time of direct
/// children — "where did the time actually go".
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  uint64_t inclusive_ns = 0;
  uint64_t exclusive_ns = 0;
};

/// Sorted by inclusive time, descending.
std::vector<SpanStats> AggregateSpans();

/// Fixed-width inclusive/exclusive-time table of AggregateSpans().
std::string SpanReport();

/// Chrome trace_event JSON ("X" complete events, ts/dur in us, trace
/// linkage in args). Load in chrome://tracing or Perfetto.
std::string ChromeTraceJson();

/// Visits every collected fragment root under the store lock (tests /
/// export tooling; do not re-enter the trace API from `fn`).
void VisitCollectedTraces(const std::function<void(const SpanNode&)>& fn);

/// Drops all collected span trees (not in-flight spans).
void ClearTraces();

/// Number of completed fragment roots currently collected.
size_t NumCollectedTraces();

namespace internal {
/// Hook for the tail sampler: when set, completed fragments are routed
/// to it instead of the aggregate store. `trace_complete` is true when
/// the finishing fragment is the trace-initiating one.
using FragmentSink = void (*)(std::unique_ptr<SpanNode> fragment,
                              bool trace_complete);
void SetFragmentSink(FragmentSink sink);
/// Fresh random-ish ids (SplitMix over a global counter + thread id).
uint64_t NewId();
/// Appends the Chrome trace_event objects of one fragment (shared by
/// ChromeTraceJson and the tail sampler's dump).
void AppendChromeEvents(const SpanNode& root, bool* first, std::string* out);
}  // namespace internal

}  // namespace saga::obs

#endif  // SAGA_COMMON_TRACE_H_
