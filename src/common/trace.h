#ifndef SAGA_COMMON_TRACE_H_
#define SAGA_COMMON_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace saga::obs {

/// Nanoseconds on the steady clock since process start — the shared
/// timebase for spans and log lines, so the two correlate.
uint64_t MonotonicNowNs();

/// Tracing is off by default (spans then cost one relaxed atomic load);
/// benches, saga_cli stats, and tests turn it on for the run.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// One completed timed region. Trees are owned by the global trace
/// store once their root span finishes.
struct SpanNode {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;
  std::vector<std::unique_ptr<SpanNode>> children;
};

/// RAII tracing span. Spans started while another span is open on the
/// same thread nest under it (thread-local span stack); when a root
/// span closes, its finished tree moves into the process-global trace
/// store, where the export functions below read it.
///
/// Span names follow the metric scheme: `subsystem.component.stage`.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanNode* node_ = nullptr;          // null when tracing was disabled
  std::unique_ptr<SpanNode> root_;    // set only for root spans
};

/// Aggregated per-name timing across all collected span trees.
/// Exclusive time is inclusive minus the inclusive time of direct
/// children — "where did the time actually go".
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  uint64_t inclusive_ns = 0;
  uint64_t exclusive_ns = 0;
};

/// Sorted by inclusive time, descending.
std::vector<SpanStats> AggregateSpans();

/// Fixed-width inclusive/exclusive-time table of AggregateSpans().
std::string SpanReport();

/// Chrome trace_event JSON ("X" complete events, ts/dur in us). Load in
/// chrome://tracing or Perfetto.
std::string ChromeTraceJson();

/// Drops all collected span trees (not in-flight spans).
void ClearTraces();

/// Number of completed root trees currently collected.
size_t NumCollectedTraces();

}  // namespace saga::obs

#endif  // SAGA_COMMON_TRACE_H_
