#ifndef SAGA_COMMON_SERIALIZATION_H_
#define SAGA_COMMON_SERIALIZATION_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace saga {

/// Appends little-endian / varint-encoded primitives to a byte buffer.
/// The encoding is the on-disk format for the KV store, WAL, embedding
/// files, and KG snapshots, so it must stay stable.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutVarint64(uint64_t v);
  /// ZigZag-encoded signed varint.
  void PutVarint64Signed(int64_t v);
  void PutFloat(float v);
  void PutDouble(double v);
  /// Varint length prefix followed by raw bytes.
  void PutString(std::string_view s);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutFloatVector(const std::vector<float>& v);

 private:
  std::string* out_;
};

/// Reads values written by BinaryWriter. All getters return
/// Status::Corruption on truncated or malformed input.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status GetU8(uint8_t* v);
  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetVarint64Signed(int64_t* v);
  Status GetFloat(float* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);
  Status GetBool(bool* v);
  Status GetFloatVector(std::vector<float>* v);

  /// Advances past n bytes without decoding them.
  Status Skip(size_t n);

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace saga

#endif  // SAGA_COMMON_SERIALIZATION_H_
