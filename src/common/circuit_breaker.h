#ifndef SAGA_COMMON_CIRCUIT_BREAKER_H_
#define SAGA_COMMON_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace saga {

/// Classic closed / open / half-open circuit breaker guarding a
/// dependency (ANN index, KvStore reads). While closed, calls flow and
/// consecutive failures are counted; at `failure_threshold` the breaker
/// opens and Allow() fails fast with Status::Unavailable — callers fall
/// back (exact search, cache miss) instead of piling onto a struggling
/// dependency. After `open_ms` of cool-down the breaker lets a bounded
/// number of half-open probes through; `close_threshold` consecutive
/// probe successes close it again, any probe failure re-opens it and
/// restarts the cool-down.
///
/// Observability: the breaker registers three process-global metrics
/// derived from its metric stem (which must follow the
/// `subsystem.breaker.name` scheme, e.g. "serving.breaker.ann"):
///   <stem>_state     gauge    0 closed / 1 open / 2 half-open
///   <stem>_opened    counter  times the breaker tripped
///   <stem>_rejected  counter  calls fast-failed while open
///
/// Thread-safe: all state behind one mutex; the expected call pattern
/// (Allow, run the op, RecordSuccess/RecordFailure) never holds the
/// lock across the guarded operation. The clock is injectable so tests
/// drive the state machine without sleeping.
class CircuitBreaker {
 public:
  enum class State : int {
    kClosed = 0,
    kOpen = 1,
    kHalfOpen = 2,
  };

  struct Options {
    /// Consecutive failures (while closed) that trip the breaker.
    int failure_threshold = 5;
    /// Cool-down while open before half-open probes are admitted.
    double open_ms = 1000.0;
    /// Probes allowed in flight at once while half-open.
    int half_open_max_probes = 1;
    /// Consecutive probe successes that close the breaker.
    int close_threshold = 1;
    /// Which statuses count as dependency failures. Defaults to
    /// IsFailure: business outcomes (NotFound, InvalidArgument, ...)
    /// are successes; infrastructure trouble (IOError, Corruption,
    /// ResourceExhausted, DeadlineExceeded, Internal) is a failure.
    std::function<bool(const Status&)> failure_predicate;
    /// Injectable monotonic clock (nanoseconds) for tests.
    std::function<uint64_t()> now_ns;
  };

  /// `metric_stem` names the exported metrics (see class comment) and
  /// appears in fast-fail error messages.
  explicit CircuitBreaker(std::string metric_stem)
      : CircuitBreaker(std::move(metric_stem), Options()) {}
  CircuitBreaker(std::string metric_stem, Options options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Gatekeeper: OK when the call may proceed (closed, or admitted as a
  /// half-open probe), Unavailable when the caller must fail fast.
  Status Allow();

  /// Report the outcome of a call that Allow() admitted.
  void RecordSuccess();
  void RecordFailure();

  /// Convenience: Allow + op + Record{Success,Failure} with the
  /// configured failure predicate. Returns the op's status, or
  /// Unavailable without running it when open.
  Status Run(const std::function<Status()>& op);

  State state() const;
  const std::string& name() const { return stem_; }

  /// Default failure classification (see Options::failure_predicate).
  static bool IsFailure(const Status& s);

  struct Stats {
    uint64_t opened = 0;        // transitions into kOpen
    uint64_t rejected = 0;      // fast-failed calls while open
    uint64_t failures = 0;      // recorded failures
    uint64_t successes = 0;     // recorded successes
  };
  Stats stats() const;

 private:
  uint64_t NowNs() const;
  /// Transitions with mu_ held; updates the state gauge.
  void TransitionLocked(State next, uint64_t now);

  const std::string stem_;
  Options options_;
  obs::Gauge& state_gauge_;
  obs::Counter& opened_counter_;
  obs::Counter& rejected_counter_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int half_open_in_flight_ = 0;
  uint64_t opened_at_ns_ = 0;
  Stats stats_;
};

}  // namespace saga

#endif  // SAGA_COMMON_CIRCUIT_BREAKER_H_
