#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace saga {

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return Sum() / static_cast<double>(samples_.size());
}

double Histogram::Sum() const {
  double s = 0.0;
  for (double v : samples_) s += v;
  return s;
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::Summary() const {
  return "n=" + std::to_string(count()) + " mean=" + FormatDouble(Mean(), 3) +
         " p50=" + FormatDouble(Percentile(50), 3) +
         " p95=" + FormatDouble(Percentile(95), 3) +
         " p99=" + FormatDouble(Percentile(99), 3) +
         " max=" + FormatDouble(Max(), 3);
}

std::string MetricsRegistry::Report() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += name + " : " + hist.Summary() + "\n";
  }
  return out;
}

}  // namespace saga
