#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/trace.h"

namespace saga {

// ---------------------------------------------------------------------------
// Legacy per-run Histogram.

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return Sum() / static_cast<double>(samples_.size());
}

double Histogram::Sum() const {
  double s = 0.0;
  for (double v : samples_) s += v;
  return s;
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  // Sort a copy: const accessors must not mutate shared state (readers
  // may call this concurrently on an immutable snapshot).
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string Histogram::Summary() const {
  return "n=" + std::to_string(count()) + " mean=" + FormatDouble(Mean(), 3) +
         " p50=" + FormatDouble(Percentile(50), 3) +
         " p95=" + FormatDouble(Percentile(95), 3) +
         " p99=" + FormatDouble(Percentile(99), 3) +
         " max=" + FormatDouble(Max(), 3);
}

// ---------------------------------------------------------------------------
// obs core.

namespace obs {

namespace internal {

std::atomic<bool> g_enabled{true};

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1,
                                                  std::memory_order_relaxed);
  return id;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return internal::EnabledFast(); }

uint64_t LatencyHistogram::BucketLowerNs(int idx) {
  if (idx < (1 << kSubBits)) return static_cast<uint64_t>(idx);
  const int msb = (idx >> kSubBits) + 1;
  const uint64_t sub = static_cast<uint64_t>(idx & ((1 << kSubBits) - 1));
  return (uint64_t{1} << msb) + (sub << (msb - kSubBits));
}

uint64_t LatencyHistogram::Count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

uint64_t LatencyHistogram::SumNs() const {
  return sum_ns_.load(std::memory_order_relaxed);
}

double LatencyHistogram::MeanNs() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(SumNs()) / static_cast<double>(n);
}

std::array<uint64_t, LatencyHistogram::kNumBuckets>
LatencyHistogram::SnapshotBuckets() const {
  std::array<uint64_t, kNumBuckets> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyHistogram::PercentileFromBuckets(
    const std::array<uint64_t, kNumBuckets>& buckets, double p) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const double target = (p / 100.0) * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && buckets[i] > 0) {
      const uint64_t lo = BucketLowerNs(i);
      const uint64_t hi = i + 1 < kNumBuckets ? BucketLowerNs(i + 1) : lo;
      return static_cast<double>(lo + hi) / 2.0;
    }
  }
  return static_cast<double>(BucketLowerNs(kNumBuckets - 1));
}

double LatencyHistogram::PercentileNs(double p) const {
  return PercentileFromBuckets(SnapshotBuckets(), p);
}

void LatencyHistogram::RecordExemplarSlow(uint64_t ns) {
  // Tiny test-and-set spinlock: held for a handful of stores, and only
  // contended when two threads set a new high-water mark at once.
  while (exemplar_lock_.exchange(true, std::memory_order_acquire)) {
  }
  if (ns > exemplar_ns_.load(std::memory_order_relaxed)) {
    const TraceContext ctx = CurrentTraceContext();
    exemplar_hi_.store(ctx.trace_id_hi, std::memory_order_relaxed);
    exemplar_lo_.store(ctx.trace_id_lo, std::memory_order_relaxed);
    exemplar_ns_.store(ns, std::memory_order_relaxed);
  }
  exemplar_lock_.store(false, std::memory_order_release);
}

Exemplar LatencyHistogram::exemplar() const {
  while (exemplar_lock_.exchange(true, std::memory_order_acquire)) {
  }
  Exemplar out;
  out.ns = exemplar_ns_.load(std::memory_order_relaxed);
  out.trace_id_hi = exemplar_hi_.load(std::memory_order_relaxed);
  out.trace_id_lo = exemplar_lo_.load(std::memory_order_relaxed);
  exemplar_lock_.store(false, std::memory_order_release);
  return out;
}

LatencyDist LatencyDist::DeltaSince(const LatencyDist& older) const {
  LatencyDist out;
  for (size_t i = 0; i < buckets.size(); ++i) {
    // Clamp instead of wrapping: after a ResetAll the newer capture is
    // smaller, and the honest answer is "what we have seen since".
    out.buckets[i] =
        buckets[i] >= older.buckets[i] ? buckets[i] - older.buckets[i]
                                       : buckets[i];
  }
  out.sum_ns = sum_ns >= older.sum_ns ? sum_ns - older.sum_ns : sum_ns;
  return out;
}

namespace {
std::string FormatNs(double ns) {
  if (ns >= 1e9) return FormatDouble(ns / 1e9, 2) + "s";
  if (ns >= 1e6) return FormatDouble(ns / 1e6, 2) + "ms";
  if (ns >= 1e3) return FormatDouble(ns / 1e3, 2) + "us";
  return FormatDouble(ns, 0) + "ns";
}
}  // namespace

std::string LatencyHistogram::Summary() const {
  return "n=" + std::to_string(Count()) + " mean=" + FormatNs(MeanNs()) +
         " p50=" + FormatNs(PercentileNs(50)) +
         " p95=" + FormatNs(PercentileNs(95)) +
         " p99=" + FormatNs(PercentileNs(99));
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  while (exemplar_lock_.exchange(true, std::memory_order_acquire)) {
  }
  exemplar_ns_.store(0, std::memory_order_relaxed);
  exemplar_hi_.store(0, std::memory_order_relaxed);
  exemplar_lo_.store(0, std::memory_order_relaxed);
  exemplar_lock_.store(false, std::memory_order_release);
}

Registry& Registry::Global() {
  // Intentionally leaked: metrics may be touched from destructors of
  // other statics; the registry must outlive them all.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& Registry::latency(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    it = latencies_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, int64_t>> Registry::CountersWithPrefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [name, c] : counters_) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      out.emplace_back(name, c->Value());
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugesWithPrefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, g] : gauges_) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      out.emplace_back(name, g->Value());
    }
  }
  return out;
}

std::vector<LatencySnapshot> Registry::LatencySnapshotsWithPrefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LatencySnapshot> out;
  for (const auto& [name, h] : latencies_) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    LatencySnapshot snap;
    snap.name = name;
    snap.dist.buckets = h->SnapshotBuckets();
    snap.dist.sum_ns = h->SumNs();
    snap.exemplar = h->exemplar();
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : latencies_) h->Reset();
}

namespace {
/// Prometheus metric names use '_' where ours use '.'.
std::string PromName(const std::string& name) {
  std::string out = "saga_" + name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

std::string JsonEscapeKey(const std::string& s) {
  // Metric names are [a-z0-9_.]; no escaping needed beyond quoting.
  return "\"" + s + "\"";
}

std::string FormatGaugeValue(double v) {
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}
}  // namespace

std::string Registry::DumpPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " " + FormatGaugeValue(g->Value()) + "\n";
  }
  for (const auto& [name, h] : latencies_) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " summary\n";
    for (double q : {0.5, 0.95, 0.99}) {
      out += pn + "{quantile=\"" + FormatDouble(q, 2) + "\"} " +
             FormatDouble(h->PercentileNs(q * 100.0), 1) + "\n";
    }
    out += pn + "_sum " + std::to_string(h->SumNs()) + "\n";
    out += pn + "_count " + std::to_string(h->Count()) + "\n";
  }
  return out;
}

std::string Registry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += JsonEscapeKey(name) + ":" + std::to_string(c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += JsonEscapeKey(name) + ":" + FormatGaugeValue(g->Value());
  }
  out += "},\"latency_ns\":{";
  first = true;
  for (const auto& [name, h] : latencies_) {
    if (!first) out += ",";
    first = false;
    out += JsonEscapeKey(name) + ":{\"count\":" + std::to_string(h->Count()) +
           ",\"sum\":" + std::to_string(h->SumNs()) +
           ",\"p50\":" + FormatDouble(h->PercentileNs(50), 1) +
           ",\"p95\":" + FormatDouble(h->PercentileNs(95), 1) +
           ",\"p99\":" + FormatDouble(h->PercentileNs(99), 1);
    const Exemplar ex = h->exemplar();
    if (ex.valid()) {
      TraceContext id;
      id.trace_id_hi = ex.trace_id_hi;
      id.trace_id_lo = ex.trace_id_lo;
      out += ",\"exemplar\":{\"ns\":" + std::to_string(ex.ns) +
             ",\"trace_id\":\"" + id.TraceIdHex() + "\"}";
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::string DumpAll(DumpFormat format) {
  return format == DumpFormat::kPrometheus
             ? Registry::Global().DumpPrometheus()
             : Registry::Global().DumpJson();
}

}  // namespace obs

// ---------------------------------------------------------------------------
// MetricsRegistry: per-run thin view over the global subsystem.

void MetricsRegistry::IncrCounter(const std::string& name, int64_t delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }
  // Mirror into the platform-wide surface so per-run robustness
  // counters show up in obs::DumpAll(). Legacy two-segment names are
  // grandfathered (the lint only checks obs macro call sites).
  obs::Registry::Global().counter(name).Add(delta);
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[name];
}

void MetricsRegistry::MergeHistogram(const std::string& name,
                                     const Histogram& h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Merge(h);
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += name + " : " + hist.Summary() + "\n";
  }
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

}  // namespace saga
