#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/metrics.h"

namespace saga::obs {

namespace {

std::atomic<bool> g_tracing{false};

/// Completed root span trees, in completion order.
struct TraceStore {
  std::mutex mu;
  std::vector<std::unique_ptr<SpanNode>> roots;
};

TraceStore& Store() {
  static TraceStore* store = new TraceStore();
  return *store;
}

/// Open spans of the current thread, outermost first. Raw pointers:
/// ownership sits with the parent's children vector (or with the
/// ScopedSpan for roots) until completion.
thread_local std::vector<SpanNode*> t_span_stack;

uint64_t ProcessStartNs() {
  static const uint64_t start = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return start;
}

}  // namespace

uint64_t MonotonicNowNs() {
  // Capture the timebase first: on the very first call ProcessStartNs()
  // initializes its static *after* any clock read made before it, and a
  // now-before-start order would wrap the delta through uint64.
  const uint64_t start = ProcessStartNs();
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - start;
}

void SetTracingEnabled(bool enabled) {
  ProcessStartNs();  // pin the timebase before the first span
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!TracingEnabled()) return;
  auto node = std::make_unique<SpanNode>();
  node->name = std::string(name);
  node->start_ns = MonotonicNowNs();
  node->thread_id = internal::ThreadId();
  node_ = node.get();
  if (t_span_stack.empty()) {
    root_ = std::move(node);  // tree ownership until completion
  } else {
    t_span_stack.back()->children.push_back(std::move(node));
  }
  t_span_stack.push_back(node_);
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  node_->duration_ns = MonotonicNowNs() - node_->start_ns;
  // Tracing may have been toggled mid-span; only pop if we are still
  // the innermost open span of this thread.
  if (!t_span_stack.empty() && t_span_stack.back() == node_) {
    t_span_stack.pop_back();
  }
  if (root_ != nullptr) {
    TraceStore& store = Store();
    std::lock_guard<std::mutex> lock(store.mu);
    store.roots.push_back(std::move(root_));
  }
}

namespace {

void Accumulate(const SpanNode& node,
                std::map<std::string, SpanStats>& by_name) {
  SpanStats& s = by_name[node.name];
  s.name = node.name;
  s.count += 1;
  s.inclusive_ns += node.duration_ns;
  uint64_t child_ns = 0;
  for (const auto& child : node.children) {
    child_ns += child->duration_ns;
    Accumulate(*child, by_name);
  }
  s.exclusive_ns +=
      node.duration_ns > child_ns ? node.duration_ns - child_ns : 0;
}

void EmitChromeEvents(const SpanNode& node, bool* first, std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"pid\":1,\"tid\":%u}",
                node.name.c_str(), node.start_ns / 1e3, node.duration_ns / 1e3,
                node.thread_id);
  *out += buf;
  for (const auto& child : node.children) {
    EmitChromeEvents(*child, first, out);
  }
}

}  // namespace

std::vector<SpanStats> AggregateSpans() {
  std::map<std::string, SpanStats> by_name;
  {
    TraceStore& store = Store();
    std::lock_guard<std::mutex> lock(store.mu);
    for (const auto& root : store.roots) Accumulate(*root, by_name);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(), [](const SpanStats& a,
                                       const SpanStats& b) {
    return a.inclusive_ns > b.inclusive_ns;
  });
  return out;
}

std::string SpanReport() {
  const std::vector<SpanStats> stats = AggregateSpans();
  if (stats.empty()) return "(no spans collected)\n";
  size_t name_width = 4;
  for (const auto& s : stats) name_width = std::max(name_width, s.name.size());
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-*s %10s %14s %14s %8s\n",
                static_cast<int>(name_width), "span", "count", "incl ms",
                "excl ms", "excl %");
  out += buf;
  uint64_t total_excl = 0;
  for (const auto& s : stats) total_excl += s.exclusive_ns;
  for (const auto& s : stats) {
    std::snprintf(buf, sizeof(buf), "%-*s %10llu %14.3f %14.3f %7.1f%%\n",
                  static_cast<int>(name_width), s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  s.inclusive_ns / 1e6, s.exclusive_ns / 1e6,
                  total_excl == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(s.exclusive_ns) /
                            static_cast<double>(total_excl));
    out += buf;
  }
  return out;
}

std::string ChromeTraceJson() {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  {
    TraceStore& store = Store();
    std::lock_guard<std::mutex> lock(store.mu);
    for (const auto& root : store.roots) {
      EmitChromeEvents(*root, &first, &out);
    }
  }
  out += "]}";
  return out;
}

void ClearTraces() {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  store.roots.clear();
}

size_t NumCollectedTraces() {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  return store.roots.size();
}

}  // namespace saga::obs
