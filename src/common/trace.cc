#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/metrics.h"

namespace saga::obs {

namespace {

std::atomic<bool> g_tracing{false};

/// Completed fragment roots, in completion order.
struct TraceStore {
  std::mutex mu;
  std::vector<std::unique_ptr<SpanNode>> roots;
};

TraceStore& Store() {
  static TraceStore* store = new TraceStore();
  return *store;
}

std::atomic<internal::FragmentSink> g_fragment_sink{nullptr};

/// Open spans of the current thread, outermost first. Raw pointers:
/// ownership sits with the parent's children vector (or with the
/// ScopedSpan for segment roots) until completion.
thread_local std::vector<SpanNode*> t_span_stack;

/// Ambient trace context of the current thread. span_id tracks the
/// innermost open span; ScopedSpan maintains it.
thread_local TraceContext t_ctx;

/// Spans below this stack index belong to an enclosing segment and are
/// invisible to new spans: a ScopedTraceContext raises the boundary so
/// adopted-context work records its own fragment instead of nesting
/// under whatever the thread happened to have open (the simulated
/// transport delivers "remote" messages on the caller's thread).
thread_local size_t t_stack_boundary = 0;

uint64_t ProcessStartNs() {
  static const uint64_t start = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return start;
}

void CollectFragment(std::unique_ptr<SpanNode> fragment) {
  const bool trace_complete = fragment->parent_span_id == 0;
  if (internal::FragmentSink sink =
          g_fragment_sink.load(std::memory_order_acquire)) {
    sink(std::move(fragment), trace_complete);
    return;
  }
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  store.roots.push_back(std::move(fragment));
}

}  // namespace

uint64_t MonotonicNowNs() {
  // Capture the timebase first: on the very first call ProcessStartNs()
  // initializes its static *after* any clock read made before it, and a
  // now-before-start order would wrap the delta through uint64.
  const uint64_t start = ProcessStartNs();
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - start;
}

void SetTracingEnabled(bool enabled) {
  ProcessStartNs();  // pin the timebase before the first span
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

std::string TraceContext::TraceIdHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(trace_id_hi),
                static_cast<unsigned long long>(trace_id_lo));
  return buf;
}

TraceContext CurrentTraceContext() { return t_ctx; }

namespace internal {

uint64_t NewId() {
  // SplitMix64 over a process-global counter, salted per thread. Not
  // cryptographic — ids only need to be unique within a trace horizon.
  static std::atomic<uint64_t> g_counter{0x9E3779B97F4A7C15ull};
  uint64_t z = g_counter.fetch_add(0x9E3779B97F4A7C15ull,
                                   std::memory_order_relaxed) +
               (static_cast<uint64_t>(ThreadId()) << 32);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return (z ^ (z >> 31)) | 1;  // never 0: 0 means "no id"
}

void SetFragmentSink(FragmentSink sink) {
  g_fragment_sink.store(sink, std::memory_order_release);
}

}  // namespace internal

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  if (!TracingEnabled()) return;
  active_ = true;
  saved_ctx_ = t_ctx;
  saved_boundary_ = t_stack_boundary;
  t_ctx = ctx;
  t_stack_boundary = t_span_stack.size();
}

ScopedTraceContext::~ScopedTraceContext() {
  if (!active_) return;
  // Every span opened inside the segment must have closed (RAII
  // scoping guarantees it; a violation would corrupt the stack).
  t_ctx = saved_ctx_;
  t_stack_boundary = saved_boundary_;
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!TracingEnabled()) return;
  if (t_ctx.valid() && !t_ctx.sampled) return;  // head-unsampled trace
  auto node = std::make_unique<SpanNode>();
  node->name = std::string(name);
  node->start_ns = MonotonicNowNs();
  node->thread_id = internal::ThreadId();
  if (!t_ctx.valid()) {
    // No ambient context: this span initiates a new trace.
    t_ctx.trace_id_hi = internal::NewId();
    t_ctx.trace_id_lo = internal::NewId();
    t_ctx.span_id = 0;
    t_ctx.sampled = true;
    started_trace_ = true;
  }
  node->trace_id_hi = t_ctx.trace_id_hi;
  node->trace_id_lo = t_ctx.trace_id_lo;
  node->span_id = internal::NewId();
  node->parent_span_id = t_ctx.span_id;
  prev_parent_span_id_ = t_ctx.span_id;
  t_ctx.span_id = node->span_id;
  node_ = node.get();
  if (t_span_stack.size() <= t_stack_boundary) {
    root_ = std::move(node);  // fragment ownership until completion
  } else {
    t_span_stack.back()->children.push_back(std::move(node));
  }
  t_span_stack.push_back(node_);
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  node_->duration_ns = MonotonicNowNs() - node_->start_ns;
  // Tracing may have been toggled mid-span; only pop if we are still
  // the innermost open span of this thread.
  if (!t_span_stack.empty() && t_span_stack.back() == node_) {
    t_span_stack.pop_back();
  }
  t_ctx.span_id = prev_parent_span_id_;
  if (root_ != nullptr) {
    CollectFragment(std::move(root_));
  }
  if (started_trace_) t_ctx = TraceContext{};
}

void MarkSpanError(StatusCode code) {
  if (code == StatusCode::kOk) return;
  if (t_span_stack.size() <= t_stack_boundary) return;  // no open span
  SpanNode* node = t_span_stack.back();
  if (node->error_code == 0) {
    node->error_code = static_cast<uint32_t>(code);
  }
}

void MarkSpanError(const Status& status) {
  if (!status.ok()) MarkSpanError(status.code());
}

namespace {

void Accumulate(const SpanNode& node,
                std::map<std::string, SpanStats>& by_name) {
  SpanStats& s = by_name[node.name];
  s.name = node.name;
  s.count += 1;
  s.inclusive_ns += node.duration_ns;
  uint64_t child_ns = 0;
  for (const auto& child : node.children) {
    child_ns += child->duration_ns;
    Accumulate(*child, by_name);
  }
  s.exclusive_ns +=
      node.duration_ns > child_ns ? node.duration_ns - child_ns : 0;
}

void EmitChromeEvents(const SpanNode& node, bool* first, std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  char buf[352];
  TraceContext id;
  id.trace_id_hi = node.trace_id_hi;
  id.trace_id_lo = node.trace_id_lo;
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
      "\"pid\":1,\"tid\":%u,\"args\":{\"trace_id\":\"%s\","
      "\"span_id\":\"%llx\",\"parent_span_id\":\"%llx\",\"error\":%u}}",
      node.name.c_str(), node.start_ns / 1e3, node.duration_ns / 1e3,
      node.thread_id, id.TraceIdHex().c_str(),
      static_cast<unsigned long long>(node.span_id),
      static_cast<unsigned long long>(node.parent_span_id),
      node.error_code);
  *out += buf;
  for (const auto& child : node.children) {
    EmitChromeEvents(*child, first, out);
  }
}

}  // namespace

namespace internal {
void AppendChromeEvents(const SpanNode& root, bool* first, std::string* out) {
  EmitChromeEvents(root, first, out);
}
}  // namespace internal

std::vector<SpanStats> AggregateSpans() {
  std::map<std::string, SpanStats> by_name;
  {
    TraceStore& store = Store();
    std::lock_guard<std::mutex> lock(store.mu);
    for (const auto& root : store.roots) Accumulate(*root, by_name);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(), [](const SpanStats& a,
                                       const SpanStats& b) {
    return a.inclusive_ns > b.inclusive_ns;
  });
  return out;
}

std::string SpanReport() {
  const std::vector<SpanStats> stats = AggregateSpans();
  if (stats.empty()) return "(no spans collected)\n";
  size_t name_width = 4;
  for (const auto& s : stats) name_width = std::max(name_width, s.name.size());
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-*s %10s %14s %14s %8s\n",
                static_cast<int>(name_width), "span", "count", "incl ms",
                "excl ms", "excl %");
  out += buf;
  uint64_t total_excl = 0;
  for (const auto& s : stats) total_excl += s.exclusive_ns;
  for (const auto& s : stats) {
    std::snprintf(buf, sizeof(buf), "%-*s %10llu %14.3f %14.3f %7.1f%%\n",
                  static_cast<int>(name_width), s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  s.inclusive_ns / 1e6, s.exclusive_ns / 1e6,
                  total_excl == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(s.exclusive_ns) /
                            static_cast<double>(total_excl));
    out += buf;
  }
  return out;
}

std::string ChromeTraceJson() {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  {
    TraceStore& store = Store();
    std::lock_guard<std::mutex> lock(store.mu);
    for (const auto& root : store.roots) {
      EmitChromeEvents(*root, &first, &out);
    }
  }
  out += "]}";
  return out;
}

void VisitCollectedTraces(const std::function<void(const SpanNode&)>& fn) {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  for (const auto& root : store.roots) fn(*root);
}

void ClearTraces() {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  store.roots.clear();
}

size_t NumCollectedTraces() {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  return store.roots.size();
}

}  // namespace saga::obs
