#ifndef SAGA_COMMON_RESULT_H_
#define SAGA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace saga {

/// Holds either a value of type T or a non-OK Status, in the style of
/// absl::StatusOr / arrow::Result. Accessing the value of an errored
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, so `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status, so
  /// `return Status::NotFound(...)` works. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an errored Result to the caller; otherwise assigns the
/// value to `lhs`. Usable in functions returning Status or Result.
#define SAGA_ASSIGN_OR_RETURN(lhs, expr)        \
  SAGA_ASSIGN_OR_RETURN_IMPL(                   \
      SAGA_RESULT_CONCAT(_saga_result, __LINE__), lhs, expr)

#define SAGA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SAGA_RESULT_CONCAT_INNER(a, b) a##b
#define SAGA_RESULT_CONCAT(a, b) SAGA_RESULT_CONCAT_INNER(a, b)

}  // namespace saga

#endif  // SAGA_COMMON_RESULT_H_
