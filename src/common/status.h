#ifndef SAGA_COMMON_STATUS_H_
#define SAGA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace saga {

/// Error categories used across the platform. Mirrors the usual
/// database-system status taxonomy (RocksDB / Arrow style): operations
/// return a Status instead of throwing, since exceptions are disabled
/// by convention in this codebase.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
  /// A request ran out of its latency budget (serving-tier deadline
  /// propagation). Not retryable: the budget is gone.
  kDeadlineExceeded,
  /// A dependency is temporarily refusing work (open circuit breaker,
  /// draining shard). Callers should fall back or fail fast, not queue.
  kUnavailable,
  /// A checksum-verified read found bytes that do not match their
  /// recorded CRC: unrecoverable corruption reached the read path.
  /// Never retryable (re-reading rotten media yields the same bytes);
  /// the remedy is quarantine + repair from a snapshot, not a retry.
  kDataLoss,
};

/// Returns a short human-readable name such as "NotFound".
std::string_view StatusCodeToString(StatusCode code);

/// Where an error came from, when the code alone is ambiguous. The
/// retry layer keys off this: a kResourceExhausted from admission
/// control is a load signal worth retrying after backoff, while the
/// same code from a full disk is permanent until space is reclaimed —
/// hammering it burns CPU against a wall (see RetryPolicy).
enum class StatusOrigin : uint8_t {
  kNone = 0,
  /// Disk-space exhaustion (real ENOSPC, a refused DiskSpaceGovernor
  /// reservation, or an injected kNoSpace fault). Never retryable:
  /// only reclaim frees space, not repetition.
  kStorageExhausted,
  /// A failed fsync. After fsync reports failure the kernel may have
  /// dropped the dirty pages, so retrying the same fd can "succeed"
  /// while the bytes are gone (the classic fsyncgate hole). Never
  /// retryable; the file must be rebuilt on a fresh fd or quarantined.
  kFsyncGate,
};

std::string_view StatusOriginToString(StatusOrigin origin);

/// Value-semantic status object. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  Status(StatusCode code, std::string message, StatusOrigin origin)
      : code_(code), origin_(origin), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// Disk-space exhaustion from the storage layer (ENOSPC / refused
  /// byte-budget reservation). Same code as ResourceExhausted so
  /// existing code()-based handling still sees it, but the origin
  /// makes it permanently non-retryable.
  static Status StorageExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg),
                  StatusOrigin::kStorageExhausted);
  }
  /// A failed fsync (see StatusOrigin::kFsyncGate). IOError-coded but
  /// never retryable on the same fd.
  static Status FsyncGate(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg),
                  StatusOrigin::kFsyncGate);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  StatusOrigin origin() const { return origin_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsStorageExhausted() const {
    return origin_ == StatusOrigin::kStorageExhausted;
  }
  bool IsFsyncGate() const { return origin_ == StatusOrigin::kFsyncGate; }

  /// "OK" or "<Code>[origin]: <message>" (origin tag only when set).
  std::string ToString() const;

 private:
  StatusCode code_;
  StatusOrigin origin_ = StatusOrigin::kNone;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define SAGA_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::saga::Status _saga_status = (expr);          \
    if (!_saga_status.ok()) return _saga_status;   \
  } while (0)

}  // namespace saga

#endif  // SAGA_COMMON_STATUS_H_
