#ifndef SAGA_COMMON_HEALTH_SECTION_H_
#define SAGA_COMMON_HEALTH_SECTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace saga::obs {

/// One titled block of key/value rows in `saga_cli stats --health`,
/// rendered identically for every subsystem (SLO verdicts,
/// replication, integrity, breakers): rows are stable-sorted by key so
/// text and JSON come out in the same deterministic order regardless
/// of which subsystem built the section or in what order it added
/// rows. Values are typed at Row() time so the JSON stays typed
/// (numbers/bools unquoted) while the text view gets aligned columns.
class HealthSection {
 public:
  explicit HealthSection(std::string title);

  HealthSection& Row(std::string key, const std::string& value);
  HealthSection& Row(std::string key, const char* value);
  HealthSection& Row(std::string key, int64_t value);
  HealthSection& Row(std::string key, uint64_t value);
  HealthSection& Row(std::string key, int value);
  HealthSection& Row(std::string key, double value, int precision = 3);
  HealthSection& Row(std::string key, bool value);
  /// Renders 0 as "never" in text (and 0 in JSON).
  HealthSection& RowUnixMs(std::string key, int64_t unix_ms);
  /// Free-text line appended after the rows (text view only).
  HealthSection& Note(std::string note);

  const std::string& title() const { return title_; }
  bool empty() const { return rows_.empty() && notes_.empty(); }

  /// "== title ==" header + aligned "  key: value" rows + notes.
  std::string Text() const;
  /// `"title":{"key":value,...}` — an object *member* the caller
  /// joins with commas inside a surrounding JSON object.
  std::string Json() const;

 private:
  struct RowEntry {
    std::string key;
    std::string text_value;
    std::string json_value;
  };

  HealthSection& Add(std::string key, std::string text_value,
                     std::string json_value);
  /// Rows stable-sorted by key — the shared deterministic order.
  std::vector<RowEntry> SortedRows() const;

  std::string title_;
  std::vector<RowEntry> rows_;
  std::vector<std::string> notes_;
};

/// Renders sections as one text report / one JSON object.
std::string RenderHealthText(const std::vector<HealthSection>& sections);
std::string RenderHealthJson(const std::vector<HealthSection>& sections);

}  // namespace saga::obs

#endif  // SAGA_COMMON_HEALTH_SECTION_H_
