#ifndef SAGA_COMMON_SLO_H_
#define SAGA_COMMON_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/history.h"

namespace saga::obs {

/// One service-level objective over the metric surface. Either half
/// may be absent: an availability-only SLO leaves latency_metric
/// empty, a latency-only SLO leaves the counters empty.
struct SloSpec {
  /// Short lower_snake_case id; becomes the obs.slo.<name>_* gauge
  /// stem and the row label in stats --health.
  std::string name;
  /// Availability: good/error event counters (registry names).
  std::string good_counter;
  std::string error_counter;
  /// e.g. 0.999 — error budget is 1 - target.
  double availability_target = 0.999;
  /// Latency: histogram metric (registry name, *_ns) + p99 target.
  std::string latency_metric;
  double latency_p99_target_ms = 0.0;
};

/// Burn rates over one evaluation window. A burn of 1.0 means the
/// window consumed its budget exactly; > 1.0 means the SLO is burning
/// too fast (availability: error fraction over budget; latency: window
/// p99 over target). 0 when the window has no data for that half.
struct SloVerdict {
  std::string name;
  double availability_burn = 0.0;
  double latency_burn = 0.0;
  bool ok = true;
  // Evidence behind the burns, for the health view.
  int64_t good_delta = 0;
  int64_t error_delta = 0;
  double window_p99_ms = 0.0;
};

/// Evaluates a set of SLOs against a History window and exports the
/// verdicts as obs.slo.<name>_availability_burn / _latency_burn /
/// _ok gauges — the machine-readable alert surface; `saga_cli stats
/// --health` renders the same verdicts as text.
class SloWatchdog {
 public:
  explicit SloWatchdog(std::vector<SloSpec> specs);

  /// Burn rates over the last `window` intervals of `history`,
  /// exported to gauges as a side effect. Deterministic and cheap;
  /// call after each History::Capture.
  std::vector<SloVerdict> Evaluate(const History& history,
                                   size_t window) const;

  const std::vector<SloSpec>& specs() const { return specs_; }

 private:
  std::vector<SloSpec> specs_;
};

/// The platform's built-in SLOs: replication write availability, KV
/// write availability (degraded-mode rejections burn it), plus latency
/// objectives for the serving-path histograms (kv get, embedding topk,
/// QA ask).
std::vector<SloSpec> DefaultPlatformSlos();

}  // namespace saga::obs

#endif  // SAGA_COMMON_SLO_H_
