#include "common/serialization.h"

namespace saga {

void BinaryWriter::PutFixed32(uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out_->append(buf, 4);
}

void BinaryWriter::PutFixed64(uint64_t v) {
  PutFixed32(static_cast<uint32_t>(v & 0xFFFFFFFFULL));
  PutFixed32(static_cast<uint32_t>(v >> 32));
}

void BinaryWriter::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_->push_back(static_cast<char>(v));
}

void BinaryWriter::PutVarint64Signed(int64_t v) {
  // ZigZag keeps small magnitudes small regardless of sign.
  uint64_t encoded =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint64(encoded);
}

void BinaryWriter::PutFloat(float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed32(bits);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint64(s.size());
  out_->append(s.data(), s.size());
}

void BinaryWriter::PutFloatVector(const std::vector<float>& v) {
  PutVarint64(v.size());
  for (float f : v) PutFloat(f);
}

Status BinaryReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::Corruption("truncated input: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_));
  }
  return Status::OK();
}

Status BinaryReader::Skip(size_t n) {
  SAGA_RETURN_IF_ERROR(Need(n));
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::GetU8(uint8_t* v) {
  SAGA_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status BinaryReader::GetFixed32(uint32_t* v) {
  SAGA_RETURN_IF_ERROR(Need(4));
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_.data() + pos_);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  pos_ += 4;
  return Status::OK();
}

Status BinaryReader::GetFixed64(uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  SAGA_RETURN_IF_ERROR(GetFixed32(&lo));
  SAGA_RETURN_IF_ERROR(GetFixed32(&hi));
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::OK();
}

Status BinaryReader::GetVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    SAGA_RETURN_IF_ERROR(Need(1));
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint64 too long");
}

Status BinaryReader::GetVarint64Signed(int64_t* v) {
  uint64_t encoded = 0;
  SAGA_RETURN_IF_ERROR(GetVarint64(&encoded));
  *v = static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
  return Status::OK();
}

Status BinaryReader::GetFloat(float* v) {
  uint32_t bits = 0;
  SAGA_RETURN_IF_ERROR(GetFixed32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status BinaryReader::GetDouble(double* v) {
  uint64_t bits = 0;
  SAGA_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status BinaryReader::GetString(std::string* s) {
  uint64_t len = 0;
  SAGA_RETURN_IF_ERROR(GetVarint64(&len));
  SAGA_RETURN_IF_ERROR(Need(len));
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::GetBool(bool* v) {
  uint8_t b = 0;
  SAGA_RETURN_IF_ERROR(GetU8(&b));
  *v = (b != 0);
  return Status::OK();
}

Status BinaryReader::GetFloatVector(std::vector<float>* v) {
  uint64_t n = 0;
  SAGA_RETURN_IF_ERROR(GetVarint64(&n));
  SAGA_RETURN_IF_ERROR(Need(n * 4));
  v->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    SAGA_RETURN_IF_ERROR(GetFloat(&(*v)[i]));
  }
  return Status::OK();
}

}  // namespace saga
