#include "common/circuit_breaker.h"

#include <algorithm>
#include <chrono>

namespace saga {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

CircuitBreaker::CircuitBreaker(std::string metric_stem, Options options)
    : stem_(std::move(metric_stem)),
      options_(std::move(options)),
      state_gauge_(obs::Registry::Global().gauge(stem_ + "_state")),
      opened_counter_(obs::Registry::Global().counter(stem_ + "_opened")),
      rejected_counter_(obs::Registry::Global().counter(stem_ + "_rejected")) {
  state_gauge_.Set(static_cast<double>(State::kClosed));
}

bool CircuitBreaker::IsFailure(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

uint64_t CircuitBreaker::NowNs() const {
  return options_.now_ns ? options_.now_ns() : SteadyNowNs();
}

void CircuitBreaker::TransitionLocked(State next, uint64_t now) {
  if (state_ == next) return;
  state_ = next;
  state_gauge_.Set(static_cast<double>(next));
  switch (next) {
    case State::kOpen:
      opened_at_ns_ = now;
      ++stats_.opened;
      opened_counter_.Add();
      break;
    case State::kHalfOpen:
      half_open_successes_ = 0;
      half_open_in_flight_ = 0;
      break;
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
  }
}

Status CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t now = NowNs();
  if (state_ == State::kOpen) {
    const uint64_t open_ns =
        static_cast<uint64_t>(std::max(0.0, options_.open_ms) * 1e6);
    if (now - opened_at_ns_ >= open_ns) {
      TransitionLocked(State::kHalfOpen, now);
    } else {
      ++stats_.rejected;
      rejected_counter_.Add();
      return Status::Unavailable("circuit breaker " + stem_ + " is open");
    }
  }
  if (state_ == State::kHalfOpen) {
    if (half_open_in_flight_ >= options_.half_open_max_probes) {
      ++stats_.rejected;
      rejected_counter_.Add();
      return Status::Unavailable("circuit breaker " + stem_ +
                                 " half-open probe limit reached");
    }
    ++half_open_in_flight_;
  }
  return Status::OK();
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.successes;
  switch (state_) {
    case State::kHalfOpen:
      half_open_in_flight_ = std::max(0, half_open_in_flight_ - 1);
      if (++half_open_successes_ >= options_.close_threshold) {
        TransitionLocked(State::kClosed, NowNs());
      }
      break;
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      break;  // straggler from before the trip
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failures;
  const uint64_t now = NowNs();
  switch (state_) {
    case State::kHalfOpen:
      half_open_in_flight_ = std::max(0, half_open_in_flight_ - 1);
      TransitionLocked(State::kOpen, now);
      break;
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionLocked(State::kOpen, now);
      }
      break;
    case State::kOpen:
      break;  // straggler from before the trip
  }
}

Status CircuitBreaker::Run(const std::function<Status()>& op) {
  SAGA_RETURN_IF_ERROR(Allow());
  const Status s = op();
  const bool failed =
      options_.failure_predicate ? options_.failure_predicate(s) : IsFailure(s);
  if (failed) {
    RecordFailure();
  } else {
    RecordSuccess();
  }
  return s;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace saga
