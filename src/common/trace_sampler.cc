#include "common/trace_sampler.h"

#include <atomic>
#include <utility>

#include "common/status.h"

namespace saga::obs {

namespace {

/// Installed sampler for the process-global fragment sink. Plain
/// atomic pointer: the sink hook is a stateless function pointer, so
/// the sampler itself is looked up per call.
std::atomic<TraceSampler*> g_sampler{nullptr};
std::mutex g_sampler_mu;  // serializes Enable/Disable
std::unique_ptr<TraceSampler> g_sampler_owner;

void SamplerSink(std::unique_ptr<SpanNode> fragment, bool trace_complete) {
  TraceSampler* sampler = g_sampler.load(std::memory_order_acquire);
  if (sampler == nullptr) return;  // torn down between check and call
  sampler->Offer(std::move(fragment), trace_complete);
}

bool AnyRetainedError(const SpanNode& node) {
  if (TraceSampler::IsRetainedError(node.error_code)) return true;
  for (const auto& child : node.children) {
    if (AnyRetainedError(*child)) return true;
  }
  return false;
}

}  // namespace

std::string RetainedTrace::TraceIdHex() const {
  TraceContext ctx;
  ctx.trace_id_hi = trace_id_hi;
  ctx.trace_id_lo = trace_id_lo;
  return ctx.TraceIdHex();
}

TraceSampler::TraceSampler(Options options) : options_(options) {}

bool TraceSampler::IsRetainedError(uint32_t code) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

void TraceSampler::Offer(std::unique_ptr<SpanNode> fragment,
                         bool trace_complete) {
  SAGA_COUNTER("obs.sampler.fragments").Add();
  const std::pair<uint64_t, uint64_t> key{fragment->trace_id_hi,
                                          fragment->trace_id_lo};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(key);
  if (trace_complete) {
    Pending pending;
    if (it != pending_.end()) {
      pending = std::move(it->second);
      pending_.erase(it);
    }
    const SpanNode& root = *fragment;
    pending.fragments.push_back(std::move(fragment));
    Decide(key.first, key.second, std::move(pending), root);
    return;
  }
  if (decided_.count(key) > 0) {
    stats_.late_fragments += 1;
    SAGA_COUNTER("obs.sampler.late_fragments").Add();
    return;
  }
  if (it == pending_.end()) {
    if (pending_.size() >= options_.max_pending_traces) {
      // Leak guard: drop the oldest still-pending trace. Entries whose
      // trace already completed were erased from the map; skip them.
      while (!pending_order_.empty()) {
        auto victim = pending_order_.front();
        pending_order_.pop_front();
        if (pending_.erase(victim) > 0) {
          stats_.evicted_pending += 1;
          SAGA_COUNTER("obs.sampler.evicted_pending").Add();
          break;
        }
      }
    }
    it = pending_.emplace(key, Pending{}).first;
    pending_order_.push_back(key);
  }
  it->second.fragments.push_back(std::move(fragment));
}

void TraceSampler::Decide(uint64_t hi, uint64_t lo, Pending pending,
                          const SpanNode& root) {
  stats_.traces_decided += 1;
  SAGA_COUNTER("obs.sampler.traces_decided").Add();
  constexpr size_t kDecidedMemory = 1024;
  decided_.insert({hi, lo});
  decided_order_.push_back({hi, lo});
  while (decided_order_.size() > kDecidedMemory) {
    decided_.erase(decided_order_.front());
    decided_order_.pop_front();
  }

  bool errored = false;
  for (const auto& frag : pending.fragments) {
    if (AnyRetainedError(*frag)) {
      errored = true;
      break;
    }
  }

  // Slow verdict against *prior* same-named roots, so a single outlier
  // cannot raise the bar on itself; the sample is folded in after.
  bool slow = false;
  LatencyHistogram& dist = root_latency_.try_emplace(root.name).first->second;
  if (dist.Count() >= options_.min_samples_for_slow) {
    const double threshold = dist.PercentileNs(options_.slow_percentile);
    slow = static_cast<double>(root.duration_ns) >= threshold &&
           root.duration_ns >= options_.slow_floor_ns;
  }
  dist.Record(root.duration_ns);

  const bool keep = errored || slow || options_.keep_all;
  if (!keep) {
    stats_.dropped += 1;
    SAGA_COUNTER("obs.sampler.dropped").Add();
    return;
  }
  if (errored) {
    stats_.retained_error += 1;
    SAGA_COUNTER("obs.sampler.retained_error").Add();
  } else if (slow) {
    stats_.retained_slow += 1;
    SAGA_COUNTER("obs.sampler.retained_slow").Add();
  } else {
    stats_.retained_forced += 1;
  }

  RetainedTrace trace;
  trace.trace_id_hi = hi;
  trace.trace_id_lo = lo;
  trace.root_name = root.name;
  trace.root_duration_ns = root.duration_ns;
  trace.errored = errored;
  trace.slow = slow;
  trace.fragments = std::move(pending.fragments);
  retained_.push_back(std::move(trace));
  while (retained_.size() > options_.capacity) retained_.pop_front();
}

size_t TraceSampler::NumRetained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_.size();
}

TraceSampler::Stats TraceSampler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TraceSampler::VisitRetained(
    const std::function<void(const RetainedTrace&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RetainedTrace& trace : retained_) fn(trace);
}

std::string TraceSampler::DumpChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const RetainedTrace& trace : retained_) {
      for (const auto& frag : trace.fragments) {
        internal::AppendChromeEvents(*frag, &first, &out);
      }
    }
  }
  out += "]}";
  return out;
}

void TraceSampler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  pending_order_.clear();
  decided_.clear();
  decided_order_.clear();
  retained_.clear();
}

TraceSampler& EnableTailSampling(TraceSampler::Options options) {
  std::lock_guard<std::mutex> lock(g_sampler_mu);
  // Detach the sink before swapping the sampler so a racing fragment
  // never reaches a half-torn-down instance.
  internal::SetFragmentSink(nullptr);
  g_sampler.store(nullptr, std::memory_order_release);
  g_sampler_owner = std::make_unique<TraceSampler>(options);
  g_sampler.store(g_sampler_owner.get(), std::memory_order_release);
  internal::SetFragmentSink(&SamplerSink);
  return *g_sampler_owner;
}

void DisableTailSampling() {
  std::lock_guard<std::mutex> lock(g_sampler_mu);
  internal::SetFragmentSink(nullptr);
  g_sampler.store(nullptr, std::memory_order_release);
  // g_sampler_owner intentionally kept alive: callers may still hold a
  // reference from EnableTailSampling to read retained traces.
}

TraceSampler* GlobalTraceSampler() {
  return g_sampler.load(std::memory_order_acquire);
}

}  // namespace saga::obs
