#ifndef SAGA_COMMON_HISTORY_H_
#define SAGA_COMMON_HISTORY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace saga::obs {

/// One whole-registry capture at a point in time: every counter, gauge
/// and latency distribution, stamped with both clocks (wall for
/// display, monotonic for rate math).
struct Snapshot {
  int64_t unix_ms = 0;
  uint64_t mono_ns = 0;
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencyDist> latencies;
};

/// Fixed-capacity ring of registry snapshots — the in-process
/// time-series store behind `saga_cli stats --history`, `saga_cli top`
/// and the SLO watchdog. Capture() appends (evicting the oldest once
/// full); the window accessors compute rates, deltas and percentile
/// series from consecutive-pair differences, so a Registry::ResetAll
/// between captures degrades to "seen since reset" instead of an
/// unsigned wraparound. Thread-safe; captures are mutex-serialized.
class History {
 public:
  explicit History(size_t capacity = 128);

  /// Snapshots the global registry now. Returns the snapshot index
  /// space position (total captures so far, monotonically increasing).
  uint64_t Capture();
  /// Test hook: capture with caller-provided timestamps.
  uint64_t CaptureAt(int64_t unix_ms, uint64_t mono_ns);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// i = 0 is the oldest retained snapshot. Copies (the ring mutates).
  Snapshot At(size_t i) const;
  Snapshot Latest() const;

  /// Counter increase over the last `window` intervals (clamped to
  /// what the ring holds), reset-tolerant per interval.
  int64_t DeltaOver(const std::string& counter, size_t window) const;
  /// DeltaOver divided by the monotonic span of the same window, in
  /// events/second. 0 when fewer than two snapshots.
  double RatePerSec(const std::string& counter, size_t window) const;
  /// Percentile of the latency distribution accumulated over the last
  /// `window` intervals (consecutive-pair bucket deltas, summed).
  double PercentileOverWindowNs(const std::string& latency, double p,
                                size_t window) const;
  /// Sample count behind PercentileOverWindowNs for the same window.
  uint64_t CountOverWindow(const std::string& latency, size_t window) const;
  /// Latest gauge value (0 when absent).
  double LatestGauge(const std::string& gauge) const;

  /// Human-readable series over the last `window` intervals: per-metric
  /// rate / percentile columns, one row per captured snapshot.
  std::string Report(size_t window = 12) const;

  void Clear();

 private:
  /// Distribution accumulated over the last `window` intervals.
  LatencyDist WindowDistLocked(const std::string& latency,
                               size_t window) const;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Snapshot> ring_;
  uint64_t total_captures_ = 0;
};

/// Process-global history used by saga_cli and the SLO watchdog.
History& GlobalHistory();

}  // namespace saga::obs

#endif  // SAGA_COMMON_HISTORY_H_
