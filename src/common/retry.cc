#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/circuit_breaker.h"
#include "common/logging.h"

namespace saga {

RetryPolicy::RetryPolicy(Options options, SleepFn sleep)
    : options_(options),
      sleep_(std::move(sleep)),
      rng_(options.jitter_seed) {}

double RetryPolicy::BackoffMs(int attempt) {
  double base = options_.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) base *= options_.backoff_multiplier;
  base = std::min(base, options_.max_backoff_ms);
  const double jitter =
      rng_.UniformDouble(-options_.jitter_fraction, options_.jitter_fraction);
  return std::max(0.0, base * (1.0 + jitter));
}

Status RetryPolicy::Run(const std::string& op_name,
                        const std::function<Status()>& op,
                        MetricsRegistry* metrics,
                        const RetryablePredicate& retryable) {
  const int attempts = std::max(1, options_.max_attempts);
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok()) return last;
    const bool worth_retry =
        !NeverRetryable(last) && (retryable ? retryable(last) : IsRetryable(last));
    if (!worth_retry || attempt == attempts) return last;
    ++total_retries_;
    if (metrics != nullptr) metrics->IncrCounter("retry.attempts");
    const double backoff = BackoffMs(attempt);
    SAGA_LOG(Warning) << op_name << " attempt " << attempt << "/" << attempts
                      << " failed (" << last.ToString() << "); retrying in "
                      << backoff << "ms";
    if (sleep_) {
      sleep_(backoff);
    } else if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff));
    }
  }
  return last;
}

Status RetryPolicy::Run(const std::string& op_name,
                        const std::function<Status()>& op,
                        CircuitBreaker* breaker, MetricsRegistry* metrics,
                        const RetryablePredicate& retryable) {
  if (breaker == nullptr) return Run(op_name, op, metrics, retryable);
  const RetryablePredicate base =
      retryable ? retryable : RetryablePredicate(&RetryPolicy::IsRetryable);
  return Run(
      op_name, [&] { return breaker->Run(op); }, metrics,
      [&base](const Status& s) {
        // An open breaker means "stop calling" — never retry through it.
        return !s.IsUnavailable() && base(s);
      });
}

}  // namespace saga
