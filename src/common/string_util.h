#ifndef SAGA_COMMON_STRING_UTIL_H_
#define SAGA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace saga {

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

std::string ToLower(std::string_view s);

std::string_view Trim(std::string_view s);

/// ASCII-only case-insensitive equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats a double with the given number of decimals (locale-free).
std::string FormatDouble(double v, int decimals);

/// Human-readable byte count, e.g. "1.5 MiB".
std::string FormatBytes(uint64_t bytes);

}  // namespace saga

#endif  // SAGA_COMMON_STRING_UTIL_H_
