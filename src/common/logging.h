#ifndef SAGA_COMMON_LOGGING_H_
#define SAGA_COMMON_LOGGING_H_

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace saga {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Benches raise this to keep output clean. The SAGA_MIN_LOG_LEVEL
/// environment variable ("debug"/"info"/"warning"/"error" or 0-3),
/// when set, overrides all programmatic calls.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

/// Parses a level name or digit; nullopt when unrecognized.
std::optional<LogLevel> ParseLogLevel(std::string_view name);

namespace internal_logging {

/// Collects one message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define SAGA_LOG(level)                                                  \
  (::saga::LogLevel::k##level < ::saga::GetMinLogLevel())                \
      ? void(0)                                                          \
      : ::saga::internal_logging::Voidify() &                            \
            ::saga::internal_logging::LogMessage(                        \
                ::saga::LogLevel::k##level, __FILE__, __LINE__)          \
                .stream()

namespace internal_logging {
/// Lowest-precedence operator making the ternary above type-check.
struct Voidify {
  void operator&(std::ostream&) {}
};
}  // namespace internal_logging

}  // namespace saga

#endif  // SAGA_COMMON_LOGGING_H_
