#include "common/status.h"

namespace saga {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string_view StatusOriginToString(StatusOrigin origin) {
  switch (origin) {
    case StatusOrigin::kNone:
      return "none";
    case StatusOrigin::kStorageExhausted:
      return "storage";
    case StatusOrigin::kFsyncGate:
      return "fsync";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (origin_ != StatusOrigin::kNone) {
    out += '[';
    out += StatusOriginToString(origin_);
    out += ']';
  }
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace saga
