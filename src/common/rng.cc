#include "common/rng.h"

#include <algorithm>
#include <cassert>

namespace saga {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
  has_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_gaussian_ = true;
  return r * std::cos(theta);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF on the integrable bounding function of the zipf pmf
  // (power-law between 1 and n+1), then clamp. Accurate enough for
  // synthetic workload skew.
  const double u = NextDouble();
  double rank;
  if (std::abs(s - 1.0) < 1e-9) {
    rank = std::exp(u * std::log(static_cast<double>(n) + 1.0));
  } else {
    const double t = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
    rank = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
  }
  uint64_t k = static_cast<uint64_t>(rank);
  if (k >= 1) k -= 1;
  if (k >= n) k = n - 1;
  return k;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm for k << n; falls back to shuffle for dense samples.
  if (k * 4 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = Uniform(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  Shuffle(&out);
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace saga
