#include "common/health_section.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <utility>

#include "common/string_util.h"

namespace saga::obs {

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

}  // namespace

HealthSection::HealthSection(std::string title) : title_(std::move(title)) {}

HealthSection& HealthSection::Add(std::string key, std::string text_value,
                                  std::string json_value) {
  rows_.push_back(
      {std::move(key), std::move(text_value), std::move(json_value)});
  return *this;
}

HealthSection& HealthSection::Row(std::string key, const std::string& value) {
  return Add(std::move(key), value, JsonQuote(value));
}

HealthSection& HealthSection::Row(std::string key, const char* value) {
  return Row(std::move(key), std::string(value));
}

HealthSection& HealthSection::Row(std::string key, int64_t value) {
  const std::string s = std::to_string(value);
  return Add(std::move(key), s, s);
}

HealthSection& HealthSection::Row(std::string key, uint64_t value) {
  const std::string s = std::to_string(value);
  return Add(std::move(key), s, s);
}

HealthSection& HealthSection::Row(std::string key, int value) {
  return Row(std::move(key), static_cast<int64_t>(value));
}

HealthSection& HealthSection::Row(std::string key, double value,
                                  int precision) {
  const std::string s = FormatDouble(value, precision);
  return Add(std::move(key), s, s);
}

HealthSection& HealthSection::Row(std::string key, bool value) {
  return Add(std::move(key), value ? "yes" : "no",
             value ? "true" : "false");
}

HealthSection& HealthSection::RowUnixMs(std::string key, int64_t unix_ms) {
  std::string text = "never";
  if (unix_ms > 0) {
    const time_t secs = static_cast<time_t>(unix_ms / 1000);
    struct tm tm_buf;
    char buf[64];
    if (localtime_r(&secs, &tm_buf) != nullptr &&
        std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_buf) > 0) {
      text = buf;
    } else {
      text = std::to_string(unix_ms) + "ms";
    }
  }
  return Add(std::move(key), std::move(text), std::to_string(unix_ms));
}

HealthSection& HealthSection::Note(std::string note) {
  notes_.push_back(std::move(note));
  return *this;
}

std::vector<HealthSection::RowEntry> HealthSection::SortedRows() const {
  std::vector<RowEntry> sorted = rows_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RowEntry& a, const RowEntry& b) {
                     return a.key < b.key;
                   });
  return sorted;
}

std::string HealthSection::Text() const {
  std::string out = "== " + title_ + " ==\n";
  const std::vector<RowEntry> rows = SortedRows();
  size_t key_width = 0;
  for (const RowEntry& row : rows) {
    key_width = std::max(key_width, row.key.size());
  }
  char buf[320];
  for (const RowEntry& row : rows) {
    std::snprintf(buf, sizeof(buf), "  %-*s %s\n",
                  static_cast<int>(key_width + 1),
                  (row.key + ":").c_str(), row.text_value.c_str());
    out += buf;
  }
  for (const std::string& note : notes_) {
    out += "  " + note + "\n";
  }
  return out;
}

std::string HealthSection::Json() const {
  std::string out = JsonQuote(title_) + ":{";
  bool first = true;
  for (const RowEntry& row : SortedRows()) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(row.key) + ":" + row.json_value;
  }
  out += "}";
  return out;
}

std::string RenderHealthText(const std::vector<HealthSection>& sections) {
  std::string out;
  for (const HealthSection& section : sections) {
    if (!out.empty()) out += "\n";
    out += section.Text();
  }
  return out;
}

std::string RenderHealthJson(const std::vector<HealthSection>& sections) {
  std::string out = "{";
  bool first = true;
  for (const HealthSection& section : sections) {
    if (!first) out += ",";
    first = false;
    out += section.Json();
  }
  out += "}";
  return out;
}

}  // namespace saga::obs
