#ifndef SAGA_COMMON_METRICS_H_
#define SAGA_COMMON_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace saga {

/// Wall-clock stopwatch used by benchmarks and pipeline stage timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates samples and reports count/mean/min/max/percentiles.
/// Not thread-safe; each worker should own one and merge.
class Histogram {
 public:
  void Add(double v) { samples_.push_back(v); }
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  /// e.g. "n=100 mean=1.2 p50=1.1 p99=3.0 max=3.2".
  std::string Summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// Named counters + histograms for a pipeline run. Passive container:
/// components increment; benches print.
class MetricsRegistry {
 public:
  void IncrCounter(const std::string& name, int64_t delta = 1) {
    counters_[name] += delta;
  }
  int64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  Histogram* histogram(const std::string& name) { return &histograms_[name]; }
  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  std::string Report() const;
  void Clear() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace saga

#endif  // SAGA_COMMON_METRICS_H_
