#ifndef SAGA_COMMON_METRICS_H_
#define SAGA_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace saga {

/// Wall-clock stopwatch used by benchmarks and pipeline stage timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates samples and reports count/mean/min/max/percentiles.
///
/// Threading contract (single-writer): Add()/Merge() must come from one
/// thread at a time — each worker owns a private Histogram and the
/// owner merges them. Once writes have quiesced, the accessors
/// (Mean/Min/Max/Percentile/Summary) are safe to call concurrently from
/// any number of reader threads: they never mutate state (an earlier
/// version lazily sorted a `mutable` sample buffer inside const
/// accessors, which raced under concurrent readers).
class Histogram {
 public:
  void Add(double v) { samples_.push_back(v); }
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  /// e.g. "n=100 mean=1.2 p50=1.1 p99=3.0 max=3.2".
  std::string Summary() const;

 private:
  std::vector<double> samples_;
};

namespace obs {

/// Process-wide kill switch: when disabled, counter/gauge/latency
/// recording and span creation become cheap no-ops (one relaxed atomic
/// load). Enabled by default.
void SetEnabled(bool enabled);
bool Enabled();

namespace internal {
extern std::atomic<bool> g_enabled;
/// Small dense id for the calling thread (assigned on first use);
/// shards counters and labels spans/log lines.
uint32_t ThreadId();
inline bool EnabledFast() {
  return g_enabled.load(std::memory_order_relaxed);
}
}  // namespace internal

/// Monotonically increasing counter. The hot path is one relaxed
/// `fetch_add` on a cache-line-padded shard picked by thread id — no
/// mutex, and no cross-core contention until more threads than shards
/// touch the same counter.
class Counter {
 public:
  static constexpr uint32_t kShards = 8;

  void Add(int64_t delta = 1) {
    if (!internal::EnabledFast()) return;
    shards_[internal::ThreadId() & (kShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins instantaneous value (cache occupancy, hit rate, ...).
class Gauge {
 public:
  void Set(double v) {
    if (!internal::EnabledFast()) return;
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// High-water latency sample with the trace that produced it: links a
/// histogram's tail directly to a dumpable trace (`saga_cli trace
/// dump`). Trace ids are zero when the sample was recorded outside a
/// sampled trace.
struct Exemplar {
  uint64_t ns = 0;
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  /// An exemplar exists only when a traced request produced the
  /// sample: untraced records advance the high-water mark but carry no
  /// trace to point at.
  bool valid() const { return ns != 0 && (trace_id_hi | trace_id_lo) != 0; }
};

/// Fixed-bucket log-scale latency histogram over nanoseconds: 4
/// sub-buckets per power of two (<= 25% relative quantile error), all
/// updates lock-free relaxed `fetch_add` — safe to Record() from any
/// thread with no mutex on the sample path. The exemplar slow path (a
/// tiny spinlock) only runs when a sample sets a new high-water mark.
class LatencyHistogram {
 public:
  /// 2 sub-bucket bits -> 4 sub-buckets per octave.
  static constexpr int kSubBits = 2;
  /// Values up to 2^40 ns (~18 min); larger clamps into the top bucket.
  static constexpr int kNumBuckets = 40 << kSubBits;

  void Record(uint64_t ns) {
    if (!internal::EnabledFast()) return;
    buckets_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (ns > exemplar_ns_.load(std::memory_order_relaxed)) {
      RecordExemplarSlow(ns);
    }
  }

  uint64_t Count() const;
  uint64_t SumNs() const;
  double MeanNs() const;
  /// p in [0, 100]; bucket-midpoint estimate. 0 when empty.
  double PercentileNs(double p) const;

  /// Highest-latency sample seen since the last Reset, with the trace
  /// id active when it was recorded (zero ids = untraced sample).
  Exemplar exemplar() const;

  /// Immutable bucket snapshot (counts per bucket) for merging and
  /// export without holding up writers.
  std::array<uint64_t, kNumBuckets> SnapshotBuckets() const;
  /// Inclusive lower bound in ns of bucket `idx`.
  static uint64_t BucketLowerNs(int idx);
  /// Bucket-midpoint percentile over a standalone bucket array — the
  /// shared math behind PercentileNs and obs::History window
  /// percentiles (which subtract snapshots before calling this).
  static double PercentileFromBuckets(
      const std::array<uint64_t, kNumBuckets>& buckets, double p);

  /// e.g. "n=100 mean=1.2us p50=1.1us p99=3.0us".
  std::string Summary() const;
  void Reset();

  static int BucketFor(uint64_t ns) {
    if (ns < (1u << kSubBits)) return static_cast<int>(ns);
    const int msb = 63 - std::countl_zero(ns);
    const int sub =
        static_cast<int>((ns >> (msb - kSubBits)) & ((1u << kSubBits) - 1));
    const int idx = ((msb - 1) << kSubBits) + sub;
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
  }

 private:
  /// High-water slow path: takes the spinlock, re-checks the mark, and
  /// attaches the calling thread's trace id. Out of line so the common
  /// Record() stays a pair of relaxed fetch_adds plus one load.
  void RecordExemplarSlow(uint64_t ns);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
  /// Exemplar triple; exemplar_ns_ doubles as the lock-free high-water
  /// gate, the spinlock keeps the triple coherent for readers.
  std::atomic<uint64_t> exemplar_ns_{0};
  std::atomic<uint64_t> exemplar_hi_{0};
  std::atomic<uint64_t> exemplar_lo_{0};
  mutable std::atomic<bool> exemplar_lock_{false};
};

/// Plain-value distribution snapshot: bucket counts + sum at one point
/// in time. Subtractable (History computes per-window distributions as
/// clamped bucket deltas between two captures) and percentile-capable
/// via LatencyHistogram::PercentileFromBuckets.
struct LatencyDist {
  std::array<uint64_t, LatencyHistogram::kNumBuckets> buckets{};
  uint64_t sum_ns = 0;

  uint64_t count() const {
    uint64_t n = 0;
    for (uint64_t c : buckets) n += c;
    return n;
  }
  double PercentileNs(double p) const {
    return LatencyHistogram::PercentileFromBuckets(buckets, p);
  }
  double MeanNs() const {
    const uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_ns) / static_cast<double>(n);
  }
  /// this - older, clamped at zero per bucket (reset-tolerant: a
  /// counter that went backwards contributes its new value, not a
  /// huge unsigned wraparound).
  LatencyDist DeltaSince(const LatencyDist& older) const;
};

/// One named latency metric captured whole: distribution + exemplar.
struct LatencySnapshot {
  std::string name;
  LatencyDist dist;
  Exemplar exemplar;
};

/// RAII latency sample: records elapsed ns into a histogram on scope
/// exit. Near-free when the subsystem is disabled.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram& hist)
      : hist_(internal::EnabledFast() ? &hist : nullptr),
        start_(hist_ ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point()) {}
  ~ScopedLatency() {
    if (hist_ == nullptr) return;
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

enum class DumpFormat { kPrometheus, kJson };

/// Process-global metric registry. Lookup takes a mutex; call sites
/// cache the returned reference (the SAGA_COUNTER / SAGA_GAUGE /
/// SAGA_LATENCY macros do this with a function-local static), so the
/// steady-state hot path never locks. Registered metrics live for the
/// process lifetime — references never dangle.
///
/// Naming scheme (enforced by scripts/check_metric_names.sh):
/// `subsystem.component.metric`, lower_snake_case segments, latency
/// histograms end in `_ns`.
class Registry {
 public:
  static Registry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& latency(std::string_view name);

  /// Registered counters / gauges whose name starts with `prefix`, with
  /// their current values, sorted by name. Powers targeted stats views
  /// (saga_cli stats --health) without parsing the full text dump.
  std::vector<std::pair<std::string, int64_t>> CountersWithPrefix(
      std::string_view prefix) const;
  std::vector<std::pair<std::string, double>> GaugesWithPrefix(
      std::string_view prefix) const;
  /// Full latency snapshots (buckets + sum + exemplar) for metrics
  /// whose name starts with `prefix`, sorted by name. "" = all; feeds
  /// obs::History captures and the exemplar view in stats dumps.
  std::vector<LatencySnapshot> LatencySnapshotsWithPrefix(
      std::string_view prefix) const;

  /// Prometheus-style text exposition: counters, gauges, and histogram
  /// count/sum/quantile lines, sorted by name ('.' -> '_').
  std::string DumpPrometheus() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"latency":{...}}.
  std::string DumpJson() const;

  /// Zeroes every registered metric (addresses stay valid). For tests
  /// and per-run bench sessions.
  void ResetAll();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      latencies_;
};

/// Platform-wide stats surface: the global registry in the requested
/// format (benches, saga_cli stats, tests).
std::string DumpAll(DumpFormat format = DumpFormat::kPrometheus);

}  // namespace obs

/// Named counters + histograms for one pipeline run. Since the obs
/// rewrite this is a thin per-run view over the process-global
/// subsystem: counter increments also land in `obs::Registry::Global()`
/// (same name), so robustness counters from PR 1 show up in DumpAll()
/// while per-run assertions keep reading the local copy. All mutating
/// entry points are mutex-guarded; the accessors returning references
/// are for after-run reporting once writers have quiesced.
class MetricsRegistry {
 public:
  void IncrCounter(const std::string& name, int64_t delta = 1);
  int64_t counter(const std::string& name) const;

  /// Per-run histogram handle. The returned Histogram follows the
  /// single-writer contract above; workers should own a local Histogram
  /// and aggregate through MergeHistogram instead of sharing one.
  Histogram* histogram(const std::string& name);
  /// Merge-based aggregation path: folds a worker-local histogram into
  /// the named per-run histogram under the registry lock.
  void MergeHistogram(const std::string& name, const Histogram& h);

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  std::string Report() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace saga

/// Cached global-metric accessors: first evaluation registers the
/// metric, later ones reuse the reference (thread-safe function-local
/// static). `name` must be a string literal following the
/// `subsystem.component.metric` scheme.
#define SAGA_COUNTER(name)                                       \
  ([]() -> ::saga::obs::Counter& {                               \
    static ::saga::obs::Counter& counter_ref =                   \
        ::saga::obs::Registry::Global().counter(name);           \
    return counter_ref;                                          \
  }())

#define SAGA_GAUGE(name)                                         \
  ([]() -> ::saga::obs::Gauge& {                                 \
    static ::saga::obs::Gauge& gauge_ref =                       \
        ::saga::obs::Registry::Global().gauge(name);             \
    return gauge_ref;                                            \
  }())

#define SAGA_LATENCY(name)                                       \
  ([]() -> ::saga::obs::LatencyHistogram& {                      \
    static ::saga::obs::LatencyHistogram& latency_ref =          \
        ::saga::obs::Registry::Global().latency(name);           \
    return latency_ref;                                          \
  }())

#endif  // SAGA_COMMON_METRICS_H_
