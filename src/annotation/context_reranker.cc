#include "annotation/context_reranker.h"

#include <algorithm>

namespace saga::annotation {

ContextReranker::ContextReranker(const kg::KnowledgeGraph* kg)
    : ContextReranker(kg, Options()) {}

ContextReranker::ContextReranker(const kg::KnowledgeGraph* kg,
                                 Options options)
    : kg_(kg), options_(options) {}

std::string ContextReranker::EntityProfileText(kg::EntityId id) const {
  const kg::EntityRecord& rec = kg_->catalog().record(id);
  std::string profile = rec.canonical_name;
  profile += " ";
  profile += rec.description;
  for (kg::TypeId t : rec.types) {
    profile += " ";
    profile += kg_->ontology().type_name(t);
  }
  if (options_.name_only_profiles) return profile;  // distilled tier
  // Graph neighborhood: names of linked entities carry exactly the
  // context words that disambiguate namesakes (team names for the
  // player, university names for the professor).
  size_t neighbors = 0;
  for (kg::TripleIdx idx : kg_->triples().BySubject(id)) {
    const kg::Triple& t = kg_->triples().triple(idx);
    profile += " ";
    profile += kg_->ontology().predicate(t.predicate).surface_form;
    if (t.object.is_entity()) {
      profile += " ";
      profile += kg_->catalog().name(t.object.entity());
    }
    if (++neighbors >= 24) break;
  }
  return profile;
}

std::vector<float> ContextReranker::ProfileVector(kg::EntityId id) const {
  return vectorizer_.Embed(EntityProfileText(id));
}

Status ContextReranker::PrecomputeProfiles(
    serving::EmbeddingKvCache* cache) const {
  for (const auto& rec : kg_->catalog().records()) {
    SAGA_RETURN_IF_ERROR(cache->Put(rec.id, ProfileVector(rec.id)));
  }
  SAGA_RETURN_IF_ERROR(cache->kv()->Flush());
  return Status::OK();
}

std::string ContextReranker::ContextText(std::string_view document_text,
                                         const Mention& mention) const {
  const size_t window = options_.context_window;
  const size_t begin = mention.begin > window ? mention.begin - window : 0;
  const size_t end =
      std::min(document_text.size(), mention.end + window);
  return std::string(document_text.substr(begin, end - begin));
}

std::vector<ContextReranker::Scored> ContextReranker::Rerank(
    const std::vector<Candidate>& candidates,
    std::string_view document_text, const Mention& mention,
    serving::EmbeddingKvCache* cache) const {
  const std::vector<float> context_vec =
      vectorizer_.Embed(ContextText(document_text, mention));

  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    Scored s;
    s.candidate = c;
    std::vector<float> profile;
    if (cache != nullptr) {
      auto cached = cache->Get(c.entity);
      profile = cached.ok() ? std::move(cached).value()
                            : ProfileVector(c.entity);
    } else {
      profile = ProfileVector(c.entity);
    }
    s.context_similarity =
        text::HashingVectorizer::Cosine(context_vec, profile);
    s.score = options_.context_weight * s.context_similarity +
              options_.prior_weight * c.prior;
    scored.push_back(std::move(s));
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.candidate.entity < b.candidate.entity;
  });
  return scored;
}

}  // namespace saga::annotation
