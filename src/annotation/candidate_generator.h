#ifndef SAGA_ANNOTATION_CANDIDATE_GENERATOR_H_
#define SAGA_ANNOTATION_CANDIDATE_GENERATOR_H_

#include <string_view>
#include <vector>

#include "annotation/types.h"
#include "kg/entity_catalog.h"

namespace saga::annotation {

/// Alias-table candidate generation: maps a mention surface to KG
/// entities sharing that alias, with a popularity-normalized prior.
class CandidateGenerator {
 public:
  explicit CandidateGenerator(const kg::EntityCatalog* catalog)
      : catalog_(catalog) {}

  /// Candidates sorted by descending prior. Empty when the surface is
  /// unknown (NIL mention).
  std::vector<Candidate> Candidates(std::string_view surface) const;

 private:
  const kg::EntityCatalog* catalog_;
};

}  // namespace saga::annotation

#endif  // SAGA_ANNOTATION_CANDIDATE_GENERATOR_H_
