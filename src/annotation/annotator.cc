#include "annotation/annotator.h"

#include "common/metrics.h"

namespace saga::annotation {

std::string_view DeploymentPresetName(DeploymentPreset preset) {
  switch (preset) {
    case DeploymentPreset::kFast:
      return "fast";
    case DeploymentPreset::kBalanced:
      return "balanced";
    case DeploymentPreset::kAccurate:
      return "accurate";
  }
  return "?";
}

Annotator::Annotator(const kg::KnowledgeGraph* kg,
                     serving::EmbeddingKvCache* cache)
    : Annotator(kg, cache, Options()) {}

Annotator::Annotator(const kg::KnowledgeGraph* kg,
                     serving::EmbeddingKvCache* cache, Options options)
    : kg_(kg),
      cache_(cache),
      options_(options),
      detector_(&kg->catalog()),
      candidates_(&kg->catalog()),
      reranker_(kg),
      cheap_reranker_(kg, [] {
        ContextReranker::Options cheap;
        cheap.name_only_profiles = true;
        cheap.context_window = 60;
        return cheap;
      }()) {}

void Annotator::RefreshGazetteer() {
  detector_ = MentionDetector(&kg_->catalog());
}

kg::TypeId Annotator::MostSpecificType(kg::EntityId id) const {
  // Most specific = the type with no subtype also present.
  const auto& types = kg_->catalog().record(id).types;
  kg::TypeId best = kg::TypeId::Invalid();
  for (kg::TypeId t : types) {
    bool has_more_specific = false;
    for (kg::TypeId other : types) {
      if (other != t && kg_->ontology().IsSubtypeOf(other, t)) {
        has_more_specific = true;
        break;
      }
    }
    if (!has_more_specific) best = t;
  }
  return best;
}

std::vector<Annotation> Annotator::Annotate(std::string_view text) const {
  obs::ScopedLatency timer(SAGA_LATENCY("annotation.annotator.annotate_ns"));
  std::vector<Annotation> out;
  for (const Mention& mention : detector_.Detect(text)) {
    SAGA_COUNTER("annotation.annotator.mentions").Add();
    std::vector<Candidate> cands = candidates_.Candidates(mention.surface);
    if (cands.empty()) continue;  // NIL mention

    Annotation ann;
    ann.mention = mention;
    switch (options_.preset) {
      case DeploymentPreset::kFast: {
        ann.entity = cands[0].entity;
        ann.score = cands[0].prior;
        break;
      }
      case DeploymentPreset::kBalanced: {
        if (cands[0].prior < options_.min_prior) continue;
        if (cands.size() == 1) {
          ann.entity = cands[0].entity;
          ann.score = cands[0].prior;
          break;
        }
        // Distilled reranker: no profile cache (profiles are cheap).
        const auto scored =
            cheap_reranker_.Rerank(cands, text, mention, nullptr);
        ann.entity = scored[0].candidate.entity;
        ann.score = scored[0].score;
        break;
      }
      case DeploymentPreset::kAccurate: {
        if (options_.rerank_only_ambiguous && cands.size() == 1) {
          ann.entity = cands[0].entity;
          ann.score = cands[0].prior;
          break;
        }
        const auto scored =
            reranker_.Rerank(cands, text, mention, cache_);
        ann.entity = scored[0].candidate.entity;
        ann.score = scored[0].score;
        break;
      }
    }
    if (ann.score < options_.min_score) continue;
    ann.type = MostSpecificType(ann.entity);
    SAGA_COUNTER("annotation.annotator.annotations").Add();
    out.push_back(std::move(ann));
  }
  return out;
}

}  // namespace saga::annotation
