#ifndef SAGA_ANNOTATION_WEB_LINKER_H_
#define SAGA_ANNOTATION_WEB_LINKER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "annotation/annotator.h"
#include "annotation/types.h"
#include "common/threadpool.h"
#include "kg/knowledge_graph.h"
#include "websim/corpus_generator.h"

namespace saga::annotation {

/// The entity->document edge set produced by "linking the Web" (§3.1):
/// every annotation becomes an edge from a KG entity to a Web document.
class AnnotationIndex {
 public:
  void Set(const AnnotatedDocument& doc);
  void Remove(websim::DocId doc);

  const std::vector<websim::DocId>& DocsMentioning(kg::EntityId e) const;
  const AnnotatedDocument* ForDoc(websim::DocId doc) const;
  size_t num_annotated_docs() const { return by_doc_.size(); }
  size_t num_entity_doc_edges() const { return num_edges_; }

 private:
  void RebuildEntityIndex();

  std::unordered_map<websim::DocId, AnnotatedDocument> by_doc_;
  mutable std::unordered_map<kg::EntityId, std::vector<websim::DocId>>
      by_entity_;
  mutable bool entity_index_valid_ = false;
  size_t num_edges_ = 0;
  std::vector<websim::DocId> empty_;
};

/// Incremental web-scale annotation driver (§3.1 "rate of change"): the
/// first pass annotates everything; later passes re-annotate only
/// documents whose version changed, updating the index in place.
/// Annotation is embarrassingly parallel per document; pass a
/// ThreadPool to fan out (KG/index updates stay on the calling thread).
class IncrementalWebLinker {
 public:
  struct PassStats {
    size_t docs_scanned = 0;
    size_t docs_annotated = 0;   // actually processed this pass
    size_t docs_skipped = 0;     // unchanged, reused
    size_t annotations = 0;      // produced this pass
  };

  IncrementalWebLinker(const Annotator* annotator, kg::KnowledgeGraph* kg);
  IncrementalWebLinker(const Annotator* annotator, kg::KnowledgeGraph* kg,
                       ThreadPool* pool);

  /// Annotates (changed) documents, updates the index, and records
  /// entity->document edges in the KG via the `mentioned_in` predicate.
  PassStats AnnotateCorpus(const websim::WebCorpus& corpus);

  const AnnotationIndex& index() const { return index_; }
  kg::PredicateId mentioned_in_predicate() const { return mentioned_in_; }

 private:
  const Annotator* annotator_;
  kg::KnowledgeGraph* kg_;
  ThreadPool* pool_;  // nullable: annotate inline
  kg::PredicateId mentioned_in_;
  kg::SourceId source_;
  AnnotationIndex index_;
  std::unordered_map<websim::DocId, uint32_t> seen_versions_;
  /// Entity-doc pairs already edged into the KG (avoid duplicates).
  std::unordered_set<uint64_t> kg_edges_;
};

}  // namespace saga::annotation

#endif  // SAGA_ANNOTATION_WEB_LINKER_H_
