#ifndef SAGA_ANNOTATION_TYPES_H_
#define SAGA_ANNOTATION_TYPES_H_

#include <string>
#include <vector>

#include "kg/ids.h"
#include "websim/web_document.h"

namespace saga::annotation {

/// A detected surface span that may refer to a KG entity.
struct Mention {
  size_t begin = 0;
  size_t end = 0;
  std::string surface;
};

/// One candidate entity for a mention with its context-free prior.
struct Candidate {
  kg::EntityId entity;
  /// Prior from alias popularity before contextual reranking.
  double prior = 0.0;
};

/// A resolved entity link.
struct Annotation {
  Mention mention;
  kg::EntityId entity;
  double score = 0.0;
  /// Most specific entity type, for typed downstream consumers.
  kg::TypeId type;
};

struct AnnotatedDocument {
  websim::DocId doc = 0;
  uint32_t doc_version = 0;
  std::vector<Annotation> annotations;
};

}  // namespace saga::annotation

#endif  // SAGA_ANNOTATION_TYPES_H_
