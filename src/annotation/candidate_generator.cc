#include "annotation/candidate_generator.h"

#include <algorithm>

namespace saga::annotation {

std::vector<Candidate> CandidateGenerator::Candidates(
    std::string_view surface) const {
  const std::vector<kg::EntityId>& ids = catalog_->LookupAlias(surface);
  double total_pop = 0.0;
  for (kg::EntityId id : ids) {
    total_pop += catalog_->popularity(id);
  }
  std::vector<Candidate> out;
  out.reserve(ids.size());
  for (kg::EntityId id : ids) {
    Candidate c;
    c.entity = id;
    // Popularity share among namesakes (smoothed so zero-popularity
    // entities stay reachable).
    c.prior = (catalog_->popularity(id) + 0.01) /
              (total_pop + 0.01 * static_cast<double>(ids.size()));
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.prior != b.prior) return a.prior > b.prior;
    return a.entity < b.entity;
  });
  return out;
}

}  // namespace saga::annotation
