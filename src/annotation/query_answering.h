#ifndef SAGA_ANNOTATION_QUERY_ANSWERING_H_
#define SAGA_ANNOTATION_QUERY_ANSWERING_H_

#include <string>
#include <string_view>
#include <vector>

#include "annotation/annotator.h"
#include "common/request_context.h"
#include "common/result.h"
#include "kg/knowledge_graph.h"
#include "serving/fact_ranker.h"

namespace saga::annotation {

/// Answers entity-centric queries — the paper's §1 motivating example:
/// "benicio del toro movies" is semantically annotated as
/// ("benicio del toro" -> entity, "movies" -> relation surface form),
/// then resolved against the KG with importance-ranked facts.
class QueryAnswerer {
 public:
  struct Answer {
    bool answered = false;
    /// The linked subject entity of the query.
    kg::EntityId subject;
    double subject_score = 0.0;
    /// The relation resolved from the non-entity query tokens.
    kg::PredicateId predicate;
    /// Ranked objects (entity facts ranked by the fact ranker; literal
    /// facts in KG order).
    std::vector<serving::FactRanker::RankedFact> facts;
    /// Human-readable derivation, e.g.
    /// `"benicio del toro" -> E123 | "movies" -> acted_in`.
    std::string explanation;
  };

  /// `ranker` may be null: facts then keep KG order.
  QueryAnswerer(const kg::KnowledgeGraph* kg,
                const serving::FactRanker* ranker);

  Answer Ask(std::string_view query) const;

  /// Deadline-aware variant: checks the budget between pipeline stages
  /// (annotate -> resolve relation -> retrieve/rank) and returns
  /// DeadlineExceeded rather than a half-computed answer. Annotation is
  /// the expensive stage; a budget that survives it usually finishes.
  Result<Answer> Ask(std::string_view query, const RequestContext& ctx) const;

 private:
  /// Shared pipeline; `ctx` null for the deadline-less overload.
  Status AskImpl(std::string_view query, const RequestContext* ctx,
                 Answer* answer) const;
  /// Best predicate whose surface form / name tokens appear in the
  /// query remainder; ties break toward longer surface matches and
  /// predicates the subject actually holds. Invalid() if none match.
  kg::PredicateId ResolvePredicate(const std::vector<std::string>& tokens,
                                   kg::EntityId subject) const;

  const kg::KnowledgeGraph* kg_;
  const serving::FactRanker* ranker_;
  Annotator annotator_;
};

}  // namespace saga::annotation

#endif  // SAGA_ANNOTATION_QUERY_ANSWERING_H_
