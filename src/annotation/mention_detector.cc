#include "annotation/mention_detector.h"

#include <algorithm>
#include <cctype>

namespace saga::annotation {

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

MentionDetector::MentionDetector(const kg::EntityCatalog* catalog)
    : MentionDetector(catalog, Options()) {}

MentionDetector::MentionDetector(const kg::EntityCatalog* catalog,
                                 Options options)
    : options_(options) {
  for (const std::string& alias : catalog->AllAliases()) {
    if (alias.size() >= options_.min_surface_length) {
      automaton_.AddPattern(alias);
    }
  }
  automaton_.Build();
}

std::vector<Mention> MentionDetector::Detect(std::string_view text) const {
  // Aliases are stored lowercased; scan a lowercased copy (byte-level
  // tolower preserves offsets).
  std::string lowered(text);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  std::vector<text::AhoCorasick::Match> matches =
      automaton_.FindAll(lowered);

  if (options_.word_boundaries) {
    matches.erase(
        std::remove_if(matches.begin(), matches.end(),
                       [&](const text::AhoCorasick::Match& m) {
                         const bool left_ok =
                             m.begin == 0 || !IsWordChar(lowered[m.begin - 1]);
                         const bool right_ok = m.end >= lowered.size() ||
                                               !IsWordChar(lowered[m.end]);
                         return !(left_ok && right_ok);
                       }),
        matches.end());
  }

  // Longest-first greedy selection, leftmost on ties, no overlaps.
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) {
              const size_t la = a.end - a.begin;
              const size_t lb = b.end - b.begin;
              if (la != lb) return la > lb;
              return a.begin < b.begin;
            });
  std::vector<std::pair<size_t, size_t>> taken;
  std::vector<Mention> mentions;
  for (const auto& m : matches) {
    bool overlaps = false;
    for (const auto& [b, e] : taken) {
      if (m.begin < e && b < m.end) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    taken.emplace_back(m.begin, m.end);
    Mention mention;
    mention.begin = m.begin;
    mention.end = m.end;
    mention.surface = std::string(text.substr(m.begin, m.end - m.begin));
    mentions.push_back(std::move(mention));
  }
  std::sort(mentions.begin(), mentions.end(),
            [](const Mention& a, const Mention& b) {
              return a.begin < b.begin;
            });
  return mentions;
}

}  // namespace saga::annotation
