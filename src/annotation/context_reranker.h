#ifndef SAGA_ANNOTATION_CONTEXT_RERANKER_H_
#define SAGA_ANNOTATION_CONTEXT_RERANKER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "annotation/types.h"
#include "common/result.h"
#include "kg/knowledge_graph.h"
#include "serving/kv_cache.h"
#include "text/hashing_vectorizer.h"

namespace saga::annotation {

/// Contextual entity disambiguation (§3): "Michael Jordan stats" links
/// to the basketball player, "Michael Jordan students" to the
/// professor. Each entity gets a textual-profile embedding built from
/// its name, description, types, and graph neighborhood; candidates are
/// scored by similarity between that profile and the mention's textual
/// context, blended with the popularity prior.
class ContextReranker {
 public:
  struct Options {
    double context_weight = 1.0;
    double prior_weight = 0.35;
    /// Characters of document text around the mention used as context.
    size_t context_window = 200;
    /// Distilled profile: name + type names only, skipping the graph
    /// neighborhood — the cheap model tier of §3.2 ("model distillation
    /// and compression ... to meet different price/performance SLAs").
    bool name_only_profiles = false;
  };

  struct Scored {
    Candidate candidate;
    double score = 0.0;
    double context_similarity = 0.0;
  };

  ContextReranker(const kg::KnowledgeGraph* kg);
  ContextReranker(const kg::KnowledgeGraph* kg, Options options);

  /// Builds the textual profile text of an entity (name + description +
  /// type names + neighbor names + literal facts).
  std::string EntityProfileText(kg::EntityId id) const;

  /// Precomputes every entity's profile embedding into the given cache
  /// (the §3.2 "precompute and cache in a low-latency KV store" step).
  Status PrecomputeProfiles(serving::EmbeddingKvCache* cache) const;

  /// Reranks candidates for a mention given the surrounding document
  /// text. When `cache` is non-null, profile vectors are fetched from
  /// it; otherwise they are computed on the fly (the expensive path the
  /// Fig-4 ablation measures).
  std::vector<Scored> Rerank(const std::vector<Candidate>& candidates,
                             std::string_view document_text,
                             const Mention& mention,
                             serving::EmbeddingKvCache* cache) const;

  const text::HashingVectorizer& vectorizer() const { return vectorizer_; }

 private:
  std::vector<float> ProfileVector(kg::EntityId id) const;
  std::string ContextText(std::string_view document_text,
                          const Mention& mention) const;

  const kg::KnowledgeGraph* kg_;
  Options options_;
  text::HashingVectorizer vectorizer_;
};

}  // namespace saga::annotation

#endif  // SAGA_ANNOTATION_CONTEXT_RERANKER_H_
