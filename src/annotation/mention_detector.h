#ifndef SAGA_ANNOTATION_MENTION_DETECTOR_H_
#define SAGA_ANNOTATION_MENTION_DETECTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "annotation/types.h"
#include "kg/entity_catalog.h"
#include "text/aho_corasick.h"

namespace saga::annotation {

/// Gazetteer-based mention detection: compiles every catalog alias into
/// one Aho-Corasick automaton and scans documents in a single pass.
/// Overlapping matches resolve longest-first (then leftmost).
class MentionDetector {
 public:
  struct Options {
    /// Drop candidate spans shorter than this many bytes (single
    /// letters and other noise).
    size_t min_surface_length = 3;
    /// Require non-alphanumeric (or boundary) characters around the
    /// match.
    bool word_boundaries = true;
  };

  explicit MentionDetector(const kg::EntityCatalog* catalog);
  MentionDetector(const kg::EntityCatalog* catalog, Options options);

  /// Non-overlapping mentions in reading order.
  std::vector<Mention> Detect(std::string_view text) const;

 private:
  Options options_;
  text::AhoCorasick automaton_;
};

}  // namespace saga::annotation

#endif  // SAGA_ANNOTATION_MENTION_DETECTOR_H_
