#ifndef SAGA_ANNOTATION_ANNOTATOR_H_
#define SAGA_ANNOTATION_ANNOTATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "annotation/candidate_generator.h"
#include "annotation/context_reranker.h"
#include "annotation/mention_detector.h"
#include "annotation/types.h"
#include "kg/knowledge_graph.h"
#include "serving/kv_cache.h"

namespace saga::annotation {

/// Modular deployment presets trading quality for cost (§3.2: services
/// are "modular, allowing custom deployments ... to balance quality
/// (precision and recall) and performance (latency and throughput)").
enum class DeploymentPreset {
  /// Mention detection + top-prior candidate. Cheapest.
  kFast,
  /// + distilled reranker for ambiguous mentions: name/type-only
  /// profiles over a narrow context window (§3.2 distillation).
  kBalanced,
  /// + full contextual reranking (graph-neighborhood profiles, wide
  /// window, cached embeddings). Best quality, highest cost.
  kAccurate,
};

std::string_view DeploymentPresetName(DeploymentPreset preset);

/// End-to-end semantic annotator: detect -> candidates -> (rerank) ->
/// threshold.
class Annotator {
 public:
  struct Options {
    DeploymentPreset preset = DeploymentPreset::kAccurate;
    /// Annotations scoring below this are dropped (NIL).
    double min_score = 0.0;
    /// kBalanced: skip mentions whose best prior is under this.
    double min_prior = 0.15;
    /// kAccurate: skip reranking for unambiguous mentions (1 candidate).
    bool rerank_only_ambiguous = true;
  };

  /// `cache` may be null; kAccurate then computes profiles on the fly.
  Annotator(const kg::KnowledgeGraph* kg, serving::EmbeddingKvCache* cache);
  Annotator(const kg::KnowledgeGraph* kg, serving::EmbeddingKvCache* cache,
            Options options);

  /// Annotates free text.
  std::vector<Annotation> Annotate(std::string_view text) const;

  /// Rebuilds the mention gazetteer from the current catalog so newly
  /// added entities and aliases become detectable (§3.2: annotations
  /// are "dynamic, i.e. able to surface new and updated entities from
  /// the KG"). Candidate generation and reranking always read the live
  /// catalog; only the compiled automaton needs refreshing.
  void RefreshGazetteer();

  const Options& options() const { return options_; }
  const ContextReranker& reranker() const { return reranker_; }

 private:
  kg::TypeId MostSpecificType(kg::EntityId id) const;

  const kg::KnowledgeGraph* kg_;
  serving::EmbeddingKvCache* cache_;
  Options options_;
  MentionDetector detector_;
  CandidateGenerator candidates_;
  ContextReranker reranker_;
  /// Cheap distilled reranker used by the balanced preset.
  ContextReranker cheap_reranker_;
};

}  // namespace saga::annotation

#endif  // SAGA_ANNOTATION_ANNOTATOR_H_
