#include "annotation/web_linker.h"

#include "common/hash.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace saga::annotation {

void AnnotationIndex::Set(const AnnotatedDocument& doc) {
  auto it = by_doc_.find(doc.doc);
  if (it != by_doc_.end()) {
    num_edges_ -= it->second.annotations.size();
  }
  num_edges_ += doc.annotations.size();
  by_doc_[doc.doc] = doc;
  entity_index_valid_ = false;
}

void AnnotationIndex::Remove(websim::DocId doc) {
  auto it = by_doc_.find(doc);
  if (it == by_doc_.end()) return;
  num_edges_ -= it->second.annotations.size();
  by_doc_.erase(it);
  entity_index_valid_ = false;
}

void AnnotationIndex::RebuildEntityIndex() {
  by_entity_.clear();
  for (const auto& [doc, annotated] : by_doc_) {
    std::unordered_set<kg::EntityId> seen;
    for (const Annotation& a : annotated.annotations) {
      if (seen.insert(a.entity).second) {
        by_entity_[a.entity].push_back(doc);
      }
    }
  }
  entity_index_valid_ = true;
}

const std::vector<websim::DocId>& AnnotationIndex::DocsMentioning(
    kg::EntityId e) const {
  if (!entity_index_valid_) {
    const_cast<AnnotationIndex*>(this)->RebuildEntityIndex();
  }
  auto it = by_entity_.find(e);
  return it == by_entity_.end() ? empty_ : it->second;
}

const AnnotatedDocument* AnnotationIndex::ForDoc(websim::DocId doc) const {
  auto it = by_doc_.find(doc);
  return it == by_doc_.end() ? nullptr : &it->second;
}

IncrementalWebLinker::IncrementalWebLinker(const Annotator* annotator,
                                           kg::KnowledgeGraph* kg)
    : IncrementalWebLinker(annotator, kg, nullptr) {}

IncrementalWebLinker::IncrementalWebLinker(const Annotator* annotator,
                                           kg::KnowledgeGraph* kg,
                                           ThreadPool* pool)
    : annotator_(annotator), kg_(kg), pool_(pool) {
  kg::PredicateMeta meta;
  meta.name = "mentioned_in";
  meta.range_kind = kg::Value::Kind::kString;  // document URL
  meta.functional = false;
  meta.embedding_relevant = false;
  meta.surface_form = "mentioned in";
  mentioned_in_ = kg_->ontology().AddPredicate(std::move(meta));
  source_ = kg_->AddSource("web_annotation", 0.7);
}

IncrementalWebLinker::PassStats IncrementalWebLinker::AnnotateCorpus(
    const websim::WebCorpus& corpus) {
  obs::ScopedSpan pass_span("annotation.linker.pass");
  PassStats stats;
  // Phase 1: decide what changed.
  std::vector<websim::DocId> work;
  {
    obs::ScopedSpan span("annotation.linker.diff");
    for (websim::DocId id = 0; id < corpus.size(); ++id) {
      ++stats.docs_scanned;
      auto seen = seen_versions_.find(id);
      if (seen != seen_versions_.end() &&
          seen->second == corpus.doc(id).version) {
        ++stats.docs_skipped;
      } else {
        work.push_back(id);
      }
    }
  }

  // Phase 2: annotate — per-document, independent, parallelizable.
  std::vector<AnnotatedDocument> results(work.size());
  {
    obs::ScopedSpan span("annotation.linker.annotate");
    ParallelFor(pool_, work.size(), [&](size_t i) {
      const websim::WebDocument& doc = corpus.doc(work[i]);
      results[i].doc = work[i];
      results[i].doc_version = doc.version;
      results[i].annotations = annotator_->Annotate(doc.body);
    });
  }
  SAGA_COUNTER("annotation.linker.docs_annotated").Add(
      static_cast<int64_t>(work.size()));
  SAGA_COUNTER("annotation.linker.docs_skipped").Add(
      static_cast<int64_t>(stats.docs_skipped));

  // Phase 3: apply to the index and KG on this thread.
  obs::ScopedSpan apply_span("annotation.linker.apply");
  for (AnnotatedDocument& annotated : results) {
    const websim::WebDocument& doc = corpus.doc(annotated.doc);
    stats.annotations += annotated.annotations.size();
    ++stats.docs_annotated;
    for (const Annotation& a : annotated.annotations) {
      const uint64_t edge_key =
          HashCombine(a.entity.value(), Hash64(doc.url));
      if (kg_edges_.insert(edge_key).second) {
        kg_->AddFact(a.entity, mentioned_in_, kg::Value::String(doc.url),
                     source_, a.score);
      }
    }
    seen_versions_[annotated.doc] = annotated.doc_version;
    index_.Set(std::move(annotated));
  }
  return stats;
}

}  // namespace saga::annotation
