#include "annotation/query_answering.h"

#include <algorithm>
#include <set>

#include "common/metrics.h"
#include "common/trace.h"
#include "text/tokenizer.h"

namespace saga::annotation {

QueryAnswerer::QueryAnswerer(const kg::KnowledgeGraph* kg,
                             const serving::FactRanker* ranker)
    : kg_(kg), ranker_(ranker), annotator_(kg, nullptr) {}

kg::PredicateId QueryAnswerer::ResolvePredicate(
    const std::vector<std::string>& tokens, kg::EntityId subject) const {
  const std::set<std::string> token_set(tokens.begin(), tokens.end());
  kg::PredicateId best;
  double best_score = 0.0;
  for (const kg::PredicateMeta& meta : kg_->ontology().predicates()) {
    // Base score: fraction of the predicate's surface-form tokens
    // present in the query remainder (raw name as a fallback).
    double score = 0.0;
    size_t hits = 0;
    const auto surface_tokens = text::Tokenize(meta.surface_form);
    if (!surface_tokens.empty()) {
      for (const auto& t : surface_tokens) {
        if (token_set.count(t.text)) ++hits;
      }
      score = static_cast<double>(hits) /
              static_cast<double>(surface_tokens.size());
    }
    for (const auto& t : text::Tokenize(meta.name)) {
      if (token_set.count(t.text)) score = std::max(score, 0.9);
    }
    if (score < 0.99) continue;
    // Tiebreakers among full matches: prefer longer surface matches
    // ("movies directed" beats "movies") and relations the linked
    // subject actually holds.
    score += 0.01 * static_cast<double>(hits);
    if (subject.valid() &&
        !kg_->triples().BySubjectPredicate(subject, meta.id).empty()) {
      score += 0.005;
    }
    if (score > best_score) {
      best_score = score;
      best = meta.id;
    }
  }
  return best_score >= 0.99 ? best : kg::PredicateId::Invalid();
}

QueryAnswerer::Answer QueryAnswerer::Ask(std::string_view query) const {
  Answer answer;
  (void)AskImpl(query, nullptr, &answer);
  return answer;
}

Result<QueryAnswerer::Answer> QueryAnswerer::Ask(
    std::string_view query, const RequestContext& ctx) const {
  Answer answer;
  SAGA_RETURN_IF_ERROR(AskImpl(query, &ctx, &answer));
  return answer;
}

Status QueryAnswerer::AskImpl(std::string_view query,
                              const RequestContext* ctx,
                              Answer* out) const {
  obs::ScopedSpan span("serving.qa.ask");
  obs::ScopedLatency timer(SAGA_LATENCY("serving.qa.ask_ns"));
  SAGA_COUNTER("serving.qa.queries").Add();
  Answer& answer = *out;
  if (ctx != nullptr) {
    SAGA_RETURN_IF_ERROR(ctx->Check("serving.qa.annotate"));
  }

  // 1. Link the entity mention with full contextual annotation (the
  //    query text itself is the disambiguation context: "michael
  //    jordan stats" vs "michael jordan students").
  const std::vector<Annotation> annotations = annotator_.Annotate(query);
  if (annotations.empty()) {
    answer.explanation = "no entity mention recognized";
    return Status::OK();
  }
  const Annotation* subject_ann = &annotations[0];
  for (const Annotation& a : annotations) {
    if (a.mention.surface.size() > subject_ann->mention.surface.size()) {
      subject_ann = &a;
    }
  }
  answer.subject = subject_ann->entity;
  answer.subject_score = subject_ann->score;
  if (ctx != nullptr) {
    // Stage boundary: annotation (the expensive stage) is done.
    SAGA_RETURN_IF_ERROR(ctx->Check("serving.qa.resolve"));
  }

  // 2. Resolve the relation from the tokens outside the mention span.
  std::vector<std::string> remainder;
  for (const text::Token& t : text::Tokenize(query)) {
    if (t.begin >= subject_ann->mention.begin &&
        t.end <= subject_ann->mention.end) {
      continue;
    }
    remainder.push_back(t.text);
  }
  answer.predicate = ResolvePredicate(remainder, answer.subject);
  answer.explanation = "\"" + subject_ann->mention.surface + "\" -> " +
                       kg_->catalog().name(answer.subject);
  if (!answer.predicate.valid()) {
    answer.explanation += " | no relation resolved";
    return Status::OK();
  }
  answer.explanation +=
      " | relation: " + kg_->ontology().predicate_name(answer.predicate);
  if (ctx != nullptr) {
    SAGA_RETURN_IF_ERROR(ctx->Check("serving.qa.rank"));
  }

  // 3. Retrieve + rank facts.
  if (ranker_ != nullptr) {
    answer.facts = ranker_->Rank(answer.subject, answer.predicate);
  }
  if (answer.facts.empty()) {
    for (const kg::Value& v :
         kg_->ObjectsOf(answer.subject, answer.predicate)) {
      serving::FactRanker::RankedFact f;
      f.object = v;
      answer.facts.push_back(std::move(f));
    }
  }
  answer.answered = !answer.facts.empty();
  return Status::OK();
}

}  // namespace saga::annotation
