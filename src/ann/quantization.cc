#include "ann/quantization.h"

#include <algorithm>
#include <cmath>

namespace saga::ann {

QuantizedVector QuantizeInt8(const std::vector<float>& x) {
  QuantizedVector out;
  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::abs(v));
  out.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  out.q.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const float scaled = x[i] / out.scale;
    out.q[i] = static_cast<int8_t>(
        std::clamp(std::lround(scaled), -127L, 127L));
  }
  return out;
}

std::vector<float> DequantizeInt8(const QuantizedVector& v) {
  std::vector<float> out(v.q.size());
  for (size_t i = 0; i < v.q.size(); ++i) {
    out[i] = static_cast<float>(v.q[i]) * v.scale;
  }
  return out;
}

double DotQuantized(const std::vector<float>& query,
                    const QuantizedVector& v) {
  double s = 0.0;
  const size_t n = std::min(query.size(), v.q.size());
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<double>(query[i]) * v.q[i];
  }
  return s * v.scale;
}

}  // namespace saga::ann
