#ifndef SAGA_ANN_QUANTIZATION_H_
#define SAGA_ANN_QUANTIZATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace saga::ann {

/// Per-vector symmetric int8 scalar quantization: x ~ scale * q with
/// q in [-127, 127]. Used for the on-device / price-performance
/// configurations (§3.2 model compression, §5 resource constraints):
/// 4x smaller embeddings at a small recall cost.
struct QuantizedVector {
  std::vector<int8_t> q;
  float scale = 1.0f;
};

QuantizedVector QuantizeInt8(const std::vector<float>& x);
std::vector<float> DequantizeInt8(const QuantizedVector& v);

/// Approximate dot product between a float query and a quantized vector
/// without dequantizing to a temporary.
double DotQuantized(const std::vector<float>& query,
                    const QuantizedVector& v);

/// Bytes used by a quantized vector vs its float form.
inline size_t QuantizedBytes(const QuantizedVector& v) {
  return v.q.size() + sizeof(float);
}

}  // namespace saga::ann

#endif  // SAGA_ANN_QUANTIZATION_H_
