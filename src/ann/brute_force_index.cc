#include "ann/brute_force_index.h"

#include <algorithm>
#include <cassert>

namespace saga::ann {

void BruteForceIndex::Add(uint64_t label, const std::vector<float>& vec) {
  assert(static_cast<int>(vec.size()) == dim_);
  labels_.push_back(label);
  data_.insert(data_.end(), vec.begin(), vec.end());
}

std::vector<Neighbor> BruteForceIndex::Search(const std::vector<float>& query,
                                              size_t k) const {
  std::vector<Neighbor> heap;  // min-heap on similarity
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.similarity > b.similarity;
  };
  for (size_t i = 0; i < labels_.size(); ++i) {
    const double sim =
        Similarity(metric_, query.data(), data_.data() + i * dim_, dim_);
    if (heap.size() < k) {
      heap.push_back(Neighbor{labels_[i], sim});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && sim > heap.front().similarity) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = Neighbor{labels_[i], sim};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  // The heap is a min-heap under `cmp`; sort_heap yields highest
  // similarity first.
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

}  // namespace saga::ann
