#ifndef SAGA_ANN_IVF_INDEX_H_
#define SAGA_ANN_IVF_INDEX_H_

#include <vector>

#include "ann/index.h"
#include "common/rng.h"

namespace saga::ann {

/// Inverted-file approximate k-NN: k-means coarse quantizer over the
/// corpus, one posting list per centroid; a query scans only the
/// `nprobe` nearest lists. The knob behind the paper's §3.2
/// price/performance curve for the related-entities / reranker cache.
class IvfIndex : public VectorIndex {
 public:
  struct Options {
    int num_lists = 16;
    int nprobe = 2;
    int kmeans_iters = 8;
    uint64_t seed = 11;
  };

  IvfIndex(int dim, Metric metric);
  IvfIndex(int dim, Metric metric, Options options);

  void Add(uint64_t label, const std::vector<float>& vec) override;
  void Build() override;
  std::vector<Neighbor> Search(const std::vector<float>& query,
                               size_t k) const override;
  size_t size() const override { return labels_.size(); }
  Metric metric() const override { return metric_; }

  void set_nprobe(int nprobe) { options_.nprobe = nprobe; }
  int nprobe() const { return options_.nprobe; }
  int num_lists() const { return options_.num_lists; }

 private:
  const float* Vec(size_t i) const { return data_.data() + i * dim_; }

  int dim_;
  Metric metric_;
  Options options_;
  std::vector<uint64_t> labels_;
  std::vector<float> data_;
  std::vector<float> centroids_;            // num_lists x dim
  std::vector<std::vector<uint32_t>> lists_;  // item indexes per centroid
  bool built_ = false;
};

}  // namespace saga::ann

#endif  // SAGA_ANN_IVF_INDEX_H_
