#ifndef SAGA_ANN_QUANTIZED_INDEX_H_
#define SAGA_ANN_QUANTIZED_INDEX_H_

#include <vector>

#include "ann/index.h"
#include "ann/quantization.h"

namespace saga::ann {

/// Exact k-NN over int8-quantized vectors: 4x smaller than float
/// storage at a small similarity-error cost. The on-device / compressed
/// serving configuration (§3.2 model compression, §5 resource
/// constraints).
///
/// Cosine is implemented by L2-normalizing vectors at Add() time, so
/// the quantized dot product approximates cosine similarity directly.
class QuantizedBruteForceIndex : public VectorIndex {
 public:
  /// `metric` must be kDot or kCosine (L2 is not supported in the
  /// asymmetric int8 scheme).
  QuantizedBruteForceIndex(int dim, Metric metric);

  void Add(uint64_t label, const std::vector<float>& vec) override;
  void Build() override {}
  std::vector<Neighbor> Search(const std::vector<float>& query,
                               size_t k) const override;
  size_t size() const override { return labels_.size(); }
  Metric metric() const override { return metric_; }

  /// Bytes used by the quantized payload (vs dim*4 per float vector).
  size_t PayloadBytes() const;

 private:
  int dim_;
  Metric metric_;
  std::vector<uint64_t> labels_;
  std::vector<QuantizedVector> vectors_;
};

}  // namespace saga::ann

#endif  // SAGA_ANN_QUANTIZED_INDEX_H_
