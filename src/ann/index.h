#ifndef SAGA_ANN_INDEX_H_
#define SAGA_ANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "ann/distance.h"

namespace saga::ann {

/// One k-NN hit: item label (caller-assigned, e.g. EntityId value) and
/// its similarity under the index metric (higher = closer).
struct Neighbor {
  uint64_t label = 0;
  double similarity = 0.0;
};

/// Abstract k-nearest-neighbour index over fixed-dim float vectors.
/// The embedding service builds one per embedding space.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual void Add(uint64_t label, const std::vector<float>& vec) = 0;

  /// Call after all Add()s; idempotent.
  virtual void Build() = 0;

  /// Top-k most similar items, most similar first.
  virtual std::vector<Neighbor> Search(const std::vector<float>& query,
                                       size_t k) const = 0;

  virtual size_t size() const = 0;
  virtual Metric metric() const = 0;
};

}  // namespace saga::ann

#endif  // SAGA_ANN_INDEX_H_
