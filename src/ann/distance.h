#ifndef SAGA_ANN_DISTANCE_H_
#define SAGA_ANN_DISTANCE_H_

#include <cmath>
#include <cstddef>

namespace saga::ann {

enum class Metric {
  kDot,     // maximize inner product
  kCosine,  // maximize cosine similarity
  kL2,      // minimize squared euclidean distance
};

inline double Dot(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

inline double L2Sq(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

inline double Norm(const float* a, size_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

inline double CosineSim(const float* a, const float* b, size_t dim) {
  const double na = Norm(a, dim);
  const double nb = Norm(b, dim);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b, dim) / (na * nb);
}

/// Unified "higher is better" similarity under a metric (L2 is negated).
inline double Similarity(Metric metric, const float* a, const float* b,
                         size_t dim) {
  switch (metric) {
    case Metric::kDot:
      return Dot(a, b, dim);
    case Metric::kCosine:
      return CosineSim(a, b, dim);
    case Metric::kL2:
      return -L2Sq(a, b, dim);
  }
  return 0.0;
}

}  // namespace saga::ann

#endif  // SAGA_ANN_DISTANCE_H_
