#include "ann/ivf_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace saga::ann {

IvfIndex::IvfIndex(int dim, Metric metric)
    : IvfIndex(dim, metric, Options()) {}

IvfIndex::IvfIndex(int dim, Metric metric, Options options)
    : dim_(dim), metric_(metric), options_(options) {}

void IvfIndex::Add(uint64_t label, const std::vector<float>& vec) {
  assert(static_cast<int>(vec.size()) == dim_);
  assert(!built_);
  labels_.push_back(label);
  data_.insert(data_.end(), vec.begin(), vec.end());
}

void IvfIndex::Build() {
  if (built_) return;
  built_ = true;
  const size_t n = labels_.size();
  const int k = std::max(1, std::min<int>(options_.num_lists,
                                          static_cast<int>(n)));
  options_.num_lists = k;
  centroids_.assign(static_cast<size_t>(k) * dim_, 0.0f);
  lists_.assign(k, {});
  if (n == 0) return;

  // k-means++ -lite init: random distinct points.
  Rng rng(options_.seed);
  std::vector<size_t> seeds = rng.SampleWithoutReplacement(n, k);
  for (int c = 0; c < k; ++c) {
    std::copy(Vec(seeds[c]), Vec(seeds[c]) + dim_,
              centroids_.begin() + static_cast<size_t>(c) * dim_);
  }

  std::vector<int> assign(n, 0);
  for (int iter = 0; iter < options_.kmeans_iters; ++iter) {
    // Assign: nearest centroid by L2 (standard for coarse quantizers
    // regardless of the search metric).
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double d =
            L2Sq(Vec(i), centroids_.data() + static_cast<size_t>(c) * dim_,
                 dim_);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assign[i] != best_c) {
        assign[i] = best_c;
        changed = true;
      }
    }
    // Update.
    std::vector<double> sums(static_cast<size_t>(k) * dim_, 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const int c = assign[i];
      ++counts[c];
      for (int d = 0; d < dim_; ++d) {
        sums[static_cast<size_t>(c) * dim_ + d] += Vec(i)[d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep previous centroid
      for (int d = 0; d < dim_; ++d) {
        centroids_[static_cast<size_t>(c) * dim_ + d] = static_cast<float>(
            sums[static_cast<size_t>(c) * dim_ + d] /
            static_cast<double>(counts[c]));
      }
    }
    if (!changed) break;
  }
  for (size_t i = 0; i < n; ++i) {
    lists_[assign[i]].push_back(static_cast<uint32_t>(i));
  }
}

std::vector<Neighbor> IvfIndex::Search(const std::vector<float>& query,
                                       size_t k) const {
  assert(built_);
  const int nprobe =
      std::max(1, std::min(options_.nprobe, options_.num_lists));
  // Rank centroids by distance to query.
  std::vector<std::pair<double, int>> centroid_order;
  centroid_order.reserve(options_.num_lists);
  for (int c = 0; c < options_.num_lists; ++c) {
    centroid_order.emplace_back(
        L2Sq(query.data(),
             centroids_.data() + static_cast<size_t>(c) * dim_, dim_),
        c);
  }
  std::sort(centroid_order.begin(), centroid_order.end());

  std::vector<Neighbor> heap;
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.similarity > b.similarity;
  };
  for (int p = 0; p < nprobe; ++p) {
    for (uint32_t i : lists_[centroid_order[p].second]) {
      const double sim = Similarity(metric_, query.data(), Vec(i), dim_);
      if (heap.size() < k) {
        heap.push_back(Neighbor{labels_[i], sim});
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (!heap.empty() && sim > heap.front().similarity) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = Neighbor{labels_[i], sim};
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

}  // namespace saga::ann
