#ifndef SAGA_ANN_BRUTE_FORCE_INDEX_H_
#define SAGA_ANN_BRUTE_FORCE_INDEX_H_

#include <vector>

#include "ann/index.h"

namespace saga::ann {

/// Exact k-NN by full scan. The recall=1.0 baseline the IVF index is
/// benchmarked against.
class BruteForceIndex : public VectorIndex {
 public:
  BruteForceIndex(int dim, Metric metric) : dim_(dim), metric_(metric) {}

  void Add(uint64_t label, const std::vector<float>& vec) override;
  void Build() override {}
  std::vector<Neighbor> Search(const std::vector<float>& query,
                               size_t k) const override;
  size_t size() const override { return labels_.size(); }
  Metric metric() const override { return metric_; }

 private:
  int dim_;
  Metric metric_;
  std::vector<uint64_t> labels_;
  std::vector<float> data_;  // row-major
};

}  // namespace saga::ann

#endif  // SAGA_ANN_BRUTE_FORCE_INDEX_H_
