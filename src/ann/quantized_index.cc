#include "ann/quantized_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saga::ann {

QuantizedBruteForceIndex::QuantizedBruteForceIndex(int dim, Metric metric)
    : dim_(dim), metric_(metric) {
  assert(metric != Metric::kL2 && "L2 unsupported for int8 index");
}

void QuantizedBruteForceIndex::Add(uint64_t label,
                                   const std::vector<float>& vec) {
  assert(static_cast<int>(vec.size()) == dim_);
  std::vector<float> prepared = vec;
  if (metric_ == Metric::kCosine) {
    const double norm = Norm(prepared.data(), prepared.size());
    if (norm > 0.0) {
      const float inv = static_cast<float>(1.0 / norm);
      for (float& x : prepared) x *= inv;
    }
  }
  labels_.push_back(label);
  vectors_.push_back(QuantizeInt8(prepared));
}

std::vector<Neighbor> QuantizedBruteForceIndex::Search(
    const std::vector<float>& query, size_t k) const {
  std::vector<float> prepared = query;
  if (metric_ == Metric::kCosine) {
    const double norm = Norm(prepared.data(), prepared.size());
    if (norm > 0.0) {
      const float inv = static_cast<float>(1.0 / norm);
      for (float& x : prepared) x *= inv;
    }
  }
  std::vector<Neighbor> heap;
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.similarity > b.similarity;
  };
  for (size_t i = 0; i < labels_.size(); ++i) {
    const double sim = DotQuantized(prepared, vectors_[i]);
    if (heap.size() < k) {
      heap.push_back(Neighbor{labels_[i], sim});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && sim > heap.front().similarity) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = Neighbor{labels_[i], sim};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

size_t QuantizedBruteForceIndex::PayloadBytes() const {
  size_t bytes = 0;
  for (const auto& v : vectors_) bytes += QuantizedBytes(v);
  return bytes;
}

}  // namespace saga::ann
