#ifndef SAGA_STORAGE_KV_STORE_H_
#define SAGA_STORAGE_KV_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/request_context.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "resource/disk_space_governor.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace saga::storage {

/// Log-structured KV store: WAL + memtable + a stack of SSTables with
/// bloom filters and full compaction. Serves as (a) the low-latency
/// embedding cache behind the semantic-annotation reranker (§3.2) and
/// (b) the spill/checkpoint target for on-device construction (§5).
///
/// Crash safety: every SSTable is built in a temp file and atomically
/// renamed in; the set of live tables is committed in a small CRC'd
/// MANIFEST written after each flush/compaction (before the covering
/// WAL segments are deleted), so a crash at any point leaves either
/// the old or the new table set — never a torn mix. Recover()
/// quarantines corrupt or orphaned tables (renames them aside and
/// counts them) and degrades a bad WAL tail to "stop replay there"
/// instead of refusing to open. See DESIGN.md, "Durability & failure
/// model".
///
/// Threading model (DESIGN.md, "KvStore threading model"): the store
/// is safe for concurrent readers and writers. Reads take an
/// immutable superversion snapshot — {active memtable, sealed
/// immutable memtables, SSTable set} — published as a shared_ptr
/// under a small mutex (RCU-style: readers copy the pointer and then
/// probe lock-free; only the active-memtable probe takes a shared
/// lock, since writers still mutate it). Writers are serialized with
/// each other; a full memtable is sealed (made immutable, its WAL
/// rotated into a segment) and either flushed inline (default) or
/// handed to a background maintenance thread
/// (Options::background_maintenance) so Put never waits on a flush or
/// compaction. When maintenance falls behind, writes shed with
/// kResourceExhausted instead of blocking (see
/// Options::max_immutable_memtables / l0_stall_tables).
class KvStore {
 public:
  struct Options {
    /// Flush the memtable to an SSTable once it exceeds this budget.
    /// The on-device pipeline tunes this down to run in tens of KiB.
    size_t memtable_max_bytes = 4 << 20;
    int bloom_bits_per_key = 10;
    int index_interval = 16;
    /// Disable to trade durability for ingest speed (bulk loads).
    bool use_wal = true;
    /// fsync after every write: an OK Put/Delete is durable.
    bool sync_every_write = false;
    /// Per-block CRC verification on the SSTable read path (see
    /// ReadVerifyMode). kFirstRead memoizes per block, so steady-state
    /// cost is one relaxed atomic load; corruption surfaces as
    /// kDataLoss instead of a silent miss or garbage value.
    ReadVerifyMode read_verify = ReadVerifyMode::kFirstRead;
    /// When > 0, a flush that leaves more than this many SSTables
    /// triggers CompactAll automatically (simple tiered compaction,
    /// bounding read amplification).
    int auto_compact_trigger = 0;
    /// Backoff schedule for transient IO failures during open, flush
    /// and compaction.
    RetryPolicy::Options retry;
    /// Guard the read path with a circuit breaker: repeated read
    /// failures (or injected `kv.read` faults / stalls blowing request
    /// deadlines) trip it, and deadline-carrying Gets then fail fast
    /// with Unavailable instead of piling onto a struggling store.
    /// Serving-tier callers (the embedding cache) opt in.
    bool enable_read_breaker = false;
    CircuitBreaker::Options read_breaker;
    /// Metric stem for the read breaker (see CircuitBreaker docs);
    /// overridable when several stores coexist in one process.
    std::string read_breaker_stem = "serving.breaker.kv";
    /// Optional sink for robustness counters (sst.quarantined,
    /// wal.records_dropped, wal.bytes_dropped, retry.attempts). Not
    /// owned; must outlive the store.
    MetricsRegistry* metrics = nullptr;
    /// Optional disk-space governor. When set, every write path
    /// reserves bytes before touching disk (WAL append, memtable
    /// flush, compaction output), ENOSPC-shaped failures trip the
    /// governor's read-only degraded mode, and Put/Delete fail fast
    /// with a storage-origin kResourceExhausted while degraded — reads
    /// keep serving. Not owned; must outlive the store. Background
    /// jobs take their reservations (and trip degraded mode) from the
    /// maintenance thread with identical semantics.
    resource::DiskSpaceGovernor* governor = nullptr;
    /// Move flush and compaction off the write path onto a dedicated
    /// maintenance thread: Put seals the full memtable and schedules
    /// work instead of flushing inline. Off by default — single-thread
    /// embedded users (on-device pipeline, ODKE spill) keep the
    /// synchronous contract where a returned Put already flushed.
    bool background_maintenance = false;
    /// Write-stall gate: with background maintenance on, a Put that
    /// would seal while this many memtables are already sealed and
    /// unflushed sheds with kResourceExhausted instead of blocking
    /// behind the maintenance thread.
    int max_immutable_memtables = 4;
    /// Second stall gate, off by default: when > 0, a Put that would
    /// seal while this many SSTables are live sheds until compaction
    /// catches up (bounds read amplification under sustained ingest).
    int l0_stall_tables = 0;
    /// Admission hook for background jobs, ticketed like the scrubber:
    /// invoked before each maintenance run; returning false sheds the
    /// run, which backs off and retries (bg_admit_retries times, then
    /// proceeds anyway — a flush that never runs would wedge writes).
    /// The serving tier wires this to its AdmissionController at
    /// low priority; storage itself stays serving-agnostic.
    std::function<bool()> bg_admission;
    int bg_admit_retries = 50;
    int bg_shed_backoff_ms = 2;
  };

  /// Monotonic operation tallies. Fields are atomics because readers
  /// (gets, bloom_skips, sstable_probes) bump them concurrently from
  /// many threads; loads are implicit via the conversion operator.
  struct Stats {
    std::atomic<uint64_t> puts{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> bloom_skips{0};     // SSTable probes avoided by bloom
    std::atomic<uint64_t> sstable_probes{0};  // SSTable Get() calls made
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> bytes_flushed{0};
    /// Writes shed by the write-stall backpressure gate.
    std::atomic<uint64_t> stall_rejects{0};
  };

  /// What Recover() found and repaired. Anything nonzero besides
  /// `sstables_loaded` / `wal_records_replayed` means the store healed
  /// itself from a crash or corruption.
  struct RecoveryStats {
    uint64_t sstables_loaded = 0;
    /// Live tables that failed to open (corrupt); renamed aside to
    /// `<name>.quarantined`.
    uint64_t sstables_quarantined = 0;
    /// Tables on disk but not in the manifest (crash between table
    /// rename and manifest commit); also renamed aside.
    uint64_t orphans_quarantined = 0;
    /// Manifest entries with no file on disk (lost tables).
    uint64_t missing_tables = 0;
    /// Leftover `.tmp` build artifacts deleted.
    uint64_t tmp_files_removed = 0;
    /// `sst_*` names that do not parse as `sst_<digits>.sst`.
    uint64_t malformed_names_skipped = 0;
    uint64_t wal_records_replayed = 0;
    /// Records dropped because a record failed to decode (everything
    /// from the bad record on).
    uint64_t wal_records_dropped = 0;
    /// Trailing torn/corrupt WAL bytes discarded by replay.
    uint64_t wal_bytes_dropped = 0;
    /// Sealed-but-unflushed WAL segments replayed (a crash while
    /// background maintenance was behind).
    uint64_t wal_segments_replayed = 0;
    bool manifest_found = false;
  };

  /// Opens (or creates) a store in `dir`, replaying any WAL tail.
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir,
                                               Options options);
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir);

  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Result<std::string> Get(std::string_view key);

  /// Deadline-aware serving read: consults the `kv.read` fault point
  /// (latency/failure injection), checks the request deadline before
  /// each SSTable probe, and — when the read breaker is enabled — fails
  /// fast with Unavailable while the breaker is open. NotFound is a
  /// business outcome, not a breaker failure.
  Result<std::string> Get(std::string_view key, const RequestContext& ctx);

  /// Key/value pairs whose key starts with `prefix`, in key order.
  /// Reads from a superversion snapshot: concurrent writes may or may
  /// not be visible, but every returned value was acknowledged.
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      std::string_view prefix);

  /// Seals the active memtable and drains every sealed memtable to
  /// disk inline (even with background maintenance on) — on return,
  /// all prior writes are in SSTables.
  Status Flush();

  /// Merges all SSTables into one, dropping tombstones and shadowed
  /// versions. Also retries removal of any files a previous compaction
  /// failed to delete. Inputs are read checksum-verified: a rotted
  /// source block aborts the compaction with kDataLoss rather than
  /// folding garbage into the merged table. Runs inline, serialized
  /// with background maintenance.
  Status CompactAll();

  /// Re-verifies every block CRC of every live table (scrubber entry
  /// point; ignores the first-read memo). kDataLoss names the first
  /// bad table/block. Read-only: quarantine/repair is the caller's
  /// call, since a repair source (snapshot) may exist.
  Status VerifyTables() const;

  /// Paths of the live tables, oldest first (for snapshots/scrub).
  std::vector<std::string> LiveTablePaths() const;

  /// Deletes stale table files whose earlier removal failed
  /// (pending_gc) and returns the bytes freed. Registered with the
  /// disk-space governor as a reclaim task; per the governor contract
  /// it does NOT call OnBytesFreed itself.
  Result<uint64_t> DropObsoleteFiles();

  /// Blocks until no background maintenance is queued or running.
  /// Sealed memtables may remain if the last run failed (see
  /// background_error()); a later write reschedules the drain.
  void WaitForMaintenance();

  /// Outcome of the most recent background maintenance run (OK when
  /// none has run). Foreground writes are unaffected by a failed run —
  /// the WAL segments still cover the sealed memtables — but a stuck
  /// error here plus rising imm_memtables() means the store is
  /// stalling toward write sheds.
  Status background_error() const;

  size_t num_sstables() const;
  size_t memtable_bytes() const;
  /// Sealed memtables waiting for a (background) flush.
  size_t imm_memtables() const;
  const Stats& stats() const { return stats_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  /// Stale table files whose removal failed and is pending retry.
  size_t pending_gc() const;
  const std::string& dir() const { return dir_; }
  /// Null unless Options::enable_read_breaker.
  CircuitBreaker* read_breaker() { return read_breaker_.get(); }

 private:
  /// A sealed memtable plus the newest WAL segment covering it; the
  /// segment (and all older ones) is deleted only after this memtable
  /// is flushed and manifest-committed.
  struct ImmMemtable {
    std::shared_ptr<const MemTable> mem;
    uint64_t wal_seq = 0;
  };

  /// Immutable snapshot of the store's read state, published as a
  /// shared_ptr under state_mu_ (RCU): readers copy the pointer and
  /// probe without locks — except `mem`, which writers still mutate
  /// and which is therefore probed under a shared mem_mu_ lock.
  struct Superversion {
    std::shared_ptr<MemTable> mem;
    std::vector<ImmMemtable> imm;  // oldest first
    /// Newest last; lookup walks back-to-front.
    std::vector<std::shared_ptr<SSTableReader>> tables;
  };

  struct WalSegment {
    uint64_t seq = 0;
    std::string path;
    uint64_t bytes = 0;
  };

  KvStore(std::string dir, Options options);

  Status Recover();
  std::string SstPath(uint64_t seq) const;
  std::string WalPath() const;
  std::string WalSegmentPath(uint64_t seq) const;
  std::string ManifestPath() const;
  Status LogOp(uint8_t op, std::string_view key, std::string_view value);
  /// Degraded-mode gate for Put/Delete: storage-origin
  /// kResourceExhausted (never retried by RetryPolicy) while the
  /// governor reports degraded.
  Status CheckWritable();
  /// True when sealing another memtable would exceed
  /// max_immutable_memtables / l0_stall_tables; optionally reports the
  /// current counts.
  bool SealGatesExceeded(size_t* imm_count, size_t* l0_count);
  /// Write-stall backpressure: with background maintenance on, sheds
  /// (plain kResourceExhausted) when the memtable is full but sealing
  /// would exceed max_immutable_memtables / l0_stall_tables. Runs
  /// before the WAL append so a shed write is never partially applied.
  Status CheckWriteStall();
  /// Rebuilds a fsync-gate-poisoned WAL before the next append: seal +
  /// drain inline when the memtable has data (manifest commit, then
  /// the poisoned segment is deleted), else truncate in place — either
  /// way the log comes back on a fresh fd.
  Status EnsureWalUsable();
  /// Routes an ENOSPC-shaped write failure into the governor's
  /// degraded-mode trip (no-op for other failures / no governor).
  void NoteWriteFailure(const Status& s);

  /// Shared tail of Put/Delete under write_mu_: stall gate, WAL
  /// append, memtable apply, seal-and-schedule when over budget.
  Status WriteImpl(uint8_t op, std::string_view key, std::string_view value);
  /// Makes the active memtable immutable: rotates the WAL into a
  /// segment, appends the memtable to the superversion's imm list and
  /// installs a fresh active memtable. Caller holds write_mu_.
  Status SealActiveMemtableLocked();
  /// Flushes sealed memtables oldest-first until none remain, then
  /// auto-compacts if over trigger. Serialized by maint_mu_.
  Status DrainMaintenance();
  /// Flushes the single oldest sealed memtable (build + manifest
  /// commit + superversion publish + covered-segment deletion).
  /// Caller holds maint_mu_.
  Status FlushOneImmLocked();
  /// CompactAll body; caller holds maint_mu_.
  Status CompactAllLocked();
  /// Coalesced background trigger: queues one maintenance run on the
  /// pool unless one is already queued.
  void ScheduleMaintenance();
  void RunBackgroundMaintenance();

  std::shared_ptr<const Superversion> CurrentSuperversion() const;
  /// Publishes `sv` as the current superversion and refreshes the
  /// storage.kv.bg.* gauges. Caller holds state_mu_.
  void PublishLocked(std::shared_ptr<const Superversion> sv);

  /// Commits `tables` as the live set durably.
  Status WriteManifest(
      const std::vector<std::shared_ptr<SSTableReader>>& tables);
  /// Renames dir_/name aside to name.quarantined (best-effort).
  void QuarantineFile(const std::string& name);
  /// Builds an SSTable from sorted entries, opens it, retrying
  /// transient failures and rebuilding on fresh-table corruption.
  /// Tombstones are dropped only when no older table could hold a
  /// shadowed version (`drop_tombstones`).
  Result<std::shared_ptr<SSTableReader>> BuildTableWithRetry(
      const std::string& path,
      const std::map<std::string, MemTable::Entry, std::less<>>& rows,
      bool drop_tombstones);
  /// Replays intact, decodable records into the active memtable and
  /// returns the on-disk byte length of that replayed prefix (so
  /// Recover can truncate a damaged log before appending behind the
  /// damage). Accumulates into recovery_stats_ across multiple logs.
  uint64_t ReplayWal(const WalReadResult& wal, bool* stopped_early);
  /// Shared read path; `ctx` null for legacy deadline-less Gets (which
  /// skip injection and breaker accounting entirely).
  Result<std::string> GetImpl(std::string_view key, const RequestContext* ctx);

  std::string dir_;
  Options options_;
  Stats stats_;
  RecoveryStats recovery_stats_;
  RetryPolicy retry_;
  std::unique_ptr<CircuitBreaker> read_breaker_;

  /// Serializes writers end-to-end (stall gate, WAL append, memtable
  /// apply, seal). Never held across a flush or compaction in
  /// background mode. Lock order: write_mu_ -> maint_mu_ -> state_mu_;
  /// mem_mu_ is a leaf.
  std::mutex write_mu_;
  /// Serializes flush/compaction bodies (inline and background).
  std::mutex maint_mu_;
  /// The small RCU mutex: guards the superversion pointer and the
  /// bookkeeping published with it. Critical sections never do IO.
  mutable std::mutex state_mu_;
  /// Guards every MemTable probe: writers take it exclusive for the
  /// in-memory apply only (never across IO), readers shared.
  mutable std::shared_mutex mem_mu_;

  std::shared_ptr<const Superversion> sv_;  // guarded by state_mu_
  /// The active memtable (== sv_->mem); writers only, under write_mu_.
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<WalWriter> wal_;  // writers only, under write_mu_
  /// Sealed WAL segments oldest-first (guarded by state_mu_). Deleted
  /// strictly in order once covered by a flush — a gap would let an
  /// older segment's replay shadow newer flushed data after a crash.
  std::vector<WalSegment> wal_segments_;
  uint64_t next_wal_seq_ = 1;  // writers only, under write_mu_
  uint64_t next_sst_seq_ = 0;  // guarded by state_mu_
  std::vector<std::string> pending_gc_;  // guarded by state_mu_
  Status bg_error_;                      // guarded by state_mu_

  std::atomic<bool> bg_scheduled_{false};
  std::atomic<bool> shutting_down_{false};
  /// Declared last: destroyed first, so in-flight maintenance drains
  /// before any state it touches goes away.
  std::unique_ptr<ThreadPool> bg_pool_;
};

/// Reads and validates `dir`'s MANIFEST, returning the committed table
/// file names in commit order. NotFound when no manifest exists,
/// kCorruption when it exists but fails its CRC or header check. Used
/// by the scrubber and snapshot tooling to learn the live set without
/// opening the store.
Result<std::vector<std::string>> ReadManifestTables(const std::string& dir);

}  // namespace saga::storage

#endif  // SAGA_STORAGE_KV_STORE_H_
