#ifndef SAGA_STORAGE_KV_STORE_H_
#define SAGA_STORAGE_KV_STORE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace saga::storage {

/// Log-structured KV store: WAL + memtable + a stack of SSTables with
/// bloom filters and full compaction. Serves as (a) the low-latency
/// embedding cache behind the semantic-annotation reranker (§3.2) and
/// (b) the spill/checkpoint target for on-device construction (§5).
class KvStore {
 public:
  struct Options {
    /// Flush the memtable to an SSTable once it exceeds this budget.
    /// The on-device pipeline tunes this down to run in tens of KiB.
    size_t memtable_max_bytes = 4 << 20;
    int bloom_bits_per_key = 10;
    int index_interval = 16;
    /// Disable to trade durability for ingest speed (bulk loads).
    bool use_wal = true;
    /// fsync-ish flush after every write.
    bool sync_every_write = false;
    /// When > 0, a flush that leaves more than this many SSTables
    /// triggers CompactAll automatically (simple tiered compaction,
    /// bounding read amplification).
    int auto_compact_trigger = 0;
  };

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t bloom_skips = 0;     // SSTable probes avoided by bloom
    uint64_t sstable_probes = 0;  // SSTable Get() calls actually made
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t bytes_flushed = 0;
  };

  /// Opens (or creates) a store in `dir`, replaying any WAL tail.
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir,
                                               Options options);
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Result<std::string> Get(std::string_view key);

  /// Key/value pairs whose key starts with `prefix`, in key order.
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      std::string_view prefix);

  /// Forces the memtable to disk.
  Status Flush();

  /// Merges all SSTables into one, dropping tombstones and shadowed
  /// versions.
  Status CompactAll();

  size_t num_sstables() const { return sstables_.size(); }
  size_t memtable_bytes() const { return memtable_.ApproximateBytes(); }
  const Stats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  KvStore(std::string dir, Options options);

  Status Recover();
  Status MaybeFlush();
  std::string SstPath(uint64_t seq) const;
  std::string WalPath() const;
  Status LogOp(uint8_t op, std::string_view key, std::string_view value);

  std::string dir_;
  Options options_;
  MemTable memtable_;
  /// Newest last; lookup walks back-to-front.
  std::vector<std::shared_ptr<SSTableReader>> sstables_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t next_sst_seq_ = 0;
  Stats stats_;
};

}  // namespace saga::storage

#endif  // SAGA_STORAGE_KV_STORE_H_
