#ifndef SAGA_STORAGE_KV_STORE_H_
#define SAGA_STORAGE_KV_STORE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/request_context.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "resource/disk_space_governor.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace saga::storage {

/// Log-structured KV store: WAL + memtable + a stack of SSTables with
/// bloom filters and full compaction. Serves as (a) the low-latency
/// embedding cache behind the semantic-annotation reranker (§3.2) and
/// (b) the spill/checkpoint target for on-device construction (§5).
///
/// Crash safety: every SSTable is built in a temp file and atomically
/// renamed in; the set of live tables is committed in a small CRC'd
/// MANIFEST written after each flush/compaction (before the WAL is
/// reset), so a crash at any point leaves either the old or the new
/// table set — never a torn mix. Recover() quarantines corrupt or
/// orphaned tables (renames them aside and counts them) and degrades a
/// bad WAL tail to "stop replay there" instead of refusing to open.
/// See DESIGN.md, "Durability & failure model".
class KvStore {
 public:
  struct Options {
    /// Flush the memtable to an SSTable once it exceeds this budget.
    /// The on-device pipeline tunes this down to run in tens of KiB.
    size_t memtable_max_bytes = 4 << 20;
    int bloom_bits_per_key = 10;
    int index_interval = 16;
    /// Disable to trade durability for ingest speed (bulk loads).
    bool use_wal = true;
    /// fsync after every write: an OK Put/Delete is durable.
    bool sync_every_write = false;
    /// Per-block CRC verification on the SSTable read path (see
    /// ReadVerifyMode). kFirstRead memoizes per block, so steady-state
    /// cost is one relaxed atomic load; corruption surfaces as
    /// kDataLoss instead of a silent miss or garbage value.
    ReadVerifyMode read_verify = ReadVerifyMode::kFirstRead;
    /// When > 0, a flush that leaves more than this many SSTables
    /// triggers CompactAll automatically (simple tiered compaction,
    /// bounding read amplification).
    int auto_compact_trigger = 0;
    /// Backoff schedule for transient IO failures during open, flush
    /// and compaction.
    RetryPolicy::Options retry;
    /// Guard the read path with a circuit breaker: repeated read
    /// failures (or injected `kv.read` faults / stalls blowing request
    /// deadlines) trip it, and deadline-carrying Gets then fail fast
    /// with Unavailable instead of piling onto a struggling store.
    /// Serving-tier callers (the embedding cache) opt in.
    bool enable_read_breaker = false;
    CircuitBreaker::Options read_breaker;
    /// Metric stem for the read breaker (see CircuitBreaker docs);
    /// overridable when several stores coexist in one process.
    std::string read_breaker_stem = "serving.breaker.kv";
    /// Optional sink for robustness counters (sst.quarantined,
    /// wal.records_dropped, wal.bytes_dropped, retry.attempts). Not
    /// owned; must outlive the store.
    MetricsRegistry* metrics = nullptr;
    /// Optional disk-space governor. When set, every write path
    /// reserves bytes before touching disk (WAL append, memtable
    /// flush, compaction output), ENOSPC-shaped failures trip the
    /// governor's read-only degraded mode, and Put/Delete fail fast
    /// with a storage-origin kResourceExhausted while degraded — reads
    /// keep serving. Not owned; must outlive the store.
    resource::DiskSpaceGovernor* governor = nullptr;
  };

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t bloom_skips = 0;     // SSTable probes avoided by bloom
    uint64_t sstable_probes = 0;  // SSTable Get() calls actually made
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t bytes_flushed = 0;
  };

  /// What Recover() found and repaired. Anything nonzero besides
  /// `sstables_loaded` / `wal_records_replayed` means the store healed
  /// itself from a crash or corruption.
  struct RecoveryStats {
    uint64_t sstables_loaded = 0;
    /// Live tables that failed to open (corrupt); renamed aside to
    /// `<name>.quarantined`.
    uint64_t sstables_quarantined = 0;
    /// Tables on disk but not in the manifest (crash between table
    /// rename and manifest commit); also renamed aside.
    uint64_t orphans_quarantined = 0;
    /// Manifest entries with no file on disk (lost tables).
    uint64_t missing_tables = 0;
    /// Leftover `.tmp` build artifacts deleted.
    uint64_t tmp_files_removed = 0;
    /// `sst_*` names that do not parse as `sst_<digits>.sst`.
    uint64_t malformed_names_skipped = 0;
    uint64_t wal_records_replayed = 0;
    /// Records dropped because a record failed to decode (everything
    /// from the bad record on).
    uint64_t wal_records_dropped = 0;
    /// Trailing torn/corrupt WAL bytes discarded by replay.
    uint64_t wal_bytes_dropped = 0;
    bool manifest_found = false;
  };

  /// Opens (or creates) a store in `dir`, replaying any WAL tail.
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir,
                                               Options options);
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Result<std::string> Get(std::string_view key);

  /// Deadline-aware serving read: consults the `kv.read` fault point
  /// (latency/failure injection), checks the request deadline before
  /// each SSTable probe, and — when the read breaker is enabled — fails
  /// fast with Unavailable while the breaker is open. NotFound is a
  /// business outcome, not a breaker failure.
  Result<std::string> Get(std::string_view key, const RequestContext& ctx);

  /// Key/value pairs whose key starts with `prefix`, in key order.
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      std::string_view prefix);

  /// Forces the memtable to disk.
  Status Flush();

  /// Merges all SSTables into one, dropping tombstones and shadowed
  /// versions. Also retries removal of any files a previous compaction
  /// failed to delete. Inputs are read checksum-verified: a rotted
  /// source block aborts the compaction with kDataLoss rather than
  /// folding garbage into the merged table.
  Status CompactAll();

  /// Re-verifies every block CRC of every live table (scrubber entry
  /// point; ignores the first-read memo). kDataLoss names the first
  /// bad table/block. Read-only: quarantine/repair is the caller's
  /// call, since a repair source (snapshot) may exist.
  Status VerifyTables() const;

  /// Paths of the live tables, oldest first (for snapshots/scrub).
  std::vector<std::string> LiveTablePaths() const;

  /// Deletes stale table files whose earlier removal failed
  /// (pending_gc) and returns the bytes freed. Registered with the
  /// disk-space governor as a reclaim task; per the governor contract
  /// it does NOT call OnBytesFreed itself.
  Result<uint64_t> DropObsoleteFiles();

  size_t num_sstables() const { return sstables_.size(); }
  size_t memtable_bytes() const { return memtable_.ApproximateBytes(); }
  const Stats& stats() const { return stats_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  /// Stale table files whose removal failed and is pending retry.
  size_t pending_gc() const { return pending_gc_.size(); }
  const std::string& dir() const { return dir_; }
  /// Null unless Options::enable_read_breaker.
  CircuitBreaker* read_breaker() { return read_breaker_.get(); }

 private:
  KvStore(std::string dir, Options options);

  Status Recover();
  Status MaybeFlush();
  std::string SstPath(uint64_t seq) const;
  std::string WalPath() const;
  std::string ManifestPath() const;
  Status LogOp(uint8_t op, std::string_view key, std::string_view value);
  /// Degraded-mode gate for Put/Delete: storage-origin
  /// kResourceExhausted (never retried by RetryPolicy) while the
  /// governor reports degraded.
  Status CheckWritable();
  /// Rebuilds a fsync-gate-poisoned WAL before the next append: flush
  /// the memtable (manifest commit + truncate) when it has data, else
  /// truncate in place — either way the log comes back on a fresh fd.
  Status EnsureWalUsable();
  /// Routes an ENOSPC-shaped write failure into the governor's
  /// degraded-mode trip (no-op for other failures / no governor).
  void NoteWriteFailure(const Status& s);

  /// Commits the current live table set (sstables_ paths) durably.
  Status WriteManifest();
  /// Renames dir_/name aside to name.quarantined (best-effort).
  void QuarantineFile(const std::string& name);
  /// Builds an SSTable from sorted entries, opens it, retrying
  /// transient failures and rebuilding on fresh-table corruption.
  Result<std::shared_ptr<SSTableReader>> BuildTableWithRetry(
      const std::string& path,
      const std::map<std::string, MemTable::Entry, std::less<>>& rows);
  /// Replays intact, decodable records into the memtable and returns
  /// the on-disk byte length of that replayed prefix (so Recover can
  /// truncate a damaged log before appending behind the damage).
  uint64_t ReplayWal(const WalReadResult& wal);
  /// Shared read path; `ctx` null for legacy deadline-less Gets (which
  /// skip injection and breaker accounting entirely).
  Result<std::string> GetImpl(std::string_view key, const RequestContext* ctx);

  std::string dir_;
  Options options_;
  MemTable memtable_;
  /// Newest last; lookup walks back-to-front.
  std::vector<std::shared_ptr<SSTableReader>> sstables_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t next_sst_seq_ = 0;
  Stats stats_;
  RecoveryStats recovery_stats_;
  RetryPolicy retry_;
  std::vector<std::string> pending_gc_;
  std::unique_ptr<CircuitBreaker> read_breaker_;
};

/// Reads and validates `dir`'s MANIFEST, returning the committed table
/// file names in commit order. NotFound when no manifest exists,
/// kCorruption when it exists but fails its CRC or header check. Used
/// by the scrubber and snapshot tooling to learn the live set without
/// opening the store.
Result<std::vector<std::string>> ReadManifestTables(const std::string& dir);

}  // namespace saga::storage

#endif  // SAGA_STORAGE_KV_STORE_H_
