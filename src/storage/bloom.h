#ifndef SAGA_STORAGE_BLOOM_H_
#define SAGA_STORAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace saga::storage {

/// Standard Bloom filter with double hashing (Kirsch-Mitzenmacher).
/// Serializable so SSTables embed one per file.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` at `bits_per_key` (10 bits/key
  /// gives ~1% false positives).
  BloomFilter(size_t expected_keys, int bits_per_key);

  /// Reconstructs from Serialize() output.
  static BloomFilter FromBytes(std::string_view bytes);

  void Add(std::string_view key);
  bool MayContain(std::string_view key) const;

  std::string Serialize() const;
  size_t SizeBytes() const { return bits_.size(); }

 private:
  BloomFilter() = default;

  int num_probes_ = 1;
  std::vector<uint8_t> bits_;
};

}  // namespace saga::storage

#endif  // SAGA_STORAGE_BLOOM_H_
