#ifndef SAGA_STORAGE_WAL_H_
#define SAGA_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

// The writer uses a raw POSIX fd so Sync() can fsync(2); define
// SAGA_WAL_OFSTREAM_FALLBACK (or build on a non-POSIX platform) to fall
// back to a buffered std::ofstream whose Sync() is only a flush.
#if !defined(SAGA_WAL_OFSTREAM_FALLBACK) && \
    !(defined(__unix__) || defined(__APPLE__))
#define SAGA_WAL_OFSTREAM_FALLBACK 1
#endif

#ifdef SAGA_WAL_OFSTREAM_FALLBACK
#include <fstream>
#endif

namespace saga::storage {

/// CRC32 (IEEE, reflected) used by WAL and SSTable footers.
uint32_t Crc32(std::string_view data);

/// Append-only write-ahead log. Each record: fixed32 crc | fixed32 len |
/// payload. Replay stops cleanly at the first torn or corrupt record so
/// a crash mid-append loses at most the unacknowledged tail.
///
/// Appends accumulate in a small userspace buffer; Sync() writes the
/// buffer to the fd and fsyncs, so a Status::OK from Sync means the
/// records are durable, not merely handed to the OS. Fault points:
/// `wal.open`, `wal.append` (payload-mutating), `wal.sync`.
///
/// Fsync-gate: a failed Sync() poisons the writer. After fsync reports
/// failure the kernel may have dropped the dirty pages, so re-fsyncing
/// the same fd can "succeed" for records that never reached disk;
/// every Append/Sync on a poisoned writer therefore fails fast with a
/// kFsyncGate status until Reset() rebuilds the log on a fresh fd
/// (truncate-to-empty after the memtable is flushed elsewhere).
class WalWriter {
 public:
  explicit WalWriter(std::string path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating or appending). Must be called before Append.
  Status Open();

  Status Append(std::string_view record);

  /// Flushes buffered records to the file and fsyncs it. A failure
  /// poisons the writer (see class comment).
  Status Sync();

  /// Closes and truncates the log to empty (called after a successful
  /// memtable flush). Clears the fsync-gate poison: the truncated file
  /// on a fresh fd is a rebuilt log with nothing suspect in flight.
  Status Reset();

  /// Seals the current log as `sealed_path` (durable rename) and
  /// reopens a fresh empty log at the original path. Used when a
  /// memtable is sealed for background flush: the segment's replay
  /// coverage matches the sealed memtable exactly, so it can be
  /// deleted once that memtable is flushed and manifest-committed.
  /// Clears the fsync-gate poison on success (fresh fd, and every
  /// byte suspect from the failed fsync is quarantined inside the
  /// sealed segment, never re-fsynced). On failure the writer either
  /// keeps its old log (rename never happened) or is left closed; the
  /// caller must not treat the seal as done.
  Status RotateTo(const std::string& sealed_path);

  /// True after a failed Sync until the log is rebuilt via Reset().
  bool poisoned() const { return poisoned_; }

  /// False when a failed rotation left the writer without a log fd
  /// (Reset() rebuilds it).
  bool is_open() const { return IsOpen(); }

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status FlushBuffer();
  Status WriteRaw(std::string_view data);
  bool IsOpen() const;
  void CloseFd();

  std::string path_;
  std::string buffer_;
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  std::ofstream out_;
#else
  int fd_ = -1;
#endif
  uint64_t bytes_written_ = 0;
  bool poisoned_ = false;
};

/// Everything learned from reading a WAL file: the intact records plus
/// how much trailing data was dropped (torn or corrupt tail). Callers
/// that care about silent data loss surface `bytes_dropped` as a
/// metric instead of hiding it.
struct WalReadResult {
  std::vector<std::string> records;
  /// Trailing bytes after the last intact record (0 on a clean log).
  uint64_t bytes_dropped = 0;
  /// False when a torn or corrupt tail was dropped.
  bool clean = true;
};

/// Reads all intact records plus drop accounting. A missing file yields
/// an empty, clean result (fresh database). Fault point: `wal.replay`
/// (kCorrupt flips a bit in the log image before parsing, exercising
/// the stop-at-damage path).
Result<WalReadResult> ReadWalRecordsDetailed(const std::string& path);

/// Legacy convenience wrapper around ReadWalRecordsDetailed that keeps
/// only the records.
Result<std::vector<std::string>> ReadWalRecords(const std::string& path);

/// A WAL payload carrying replication metadata: the leader-assigned
/// monotonic sequence number, the epoch under which it was appended,
/// and the opaque application payload. The replication tier ships
/// these records follower-to-follower; the (seq, epoch) pair is what
/// fencing and divergence repair reason about.
struct SequencedRecord {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  std::string payload;
};

/// fixed64 seq | fixed64 epoch | payload — framed inside the ordinary
/// CRC'd WAL record format, so a sequenced log replays with the same
/// stop-at-damage guarantees as any other WAL.
std::string EncodeSequencedRecord(const SequencedRecord& record);
Result<SequencedRecord> DecodeSequencedRecord(std::string_view encoded);

/// Replays `path` and returns every intact sequenced record with
/// seq >= min_seq, in log order — the follower catch-up iteration
/// ("ship me everything from seq N"). Undecodable payloads stop the
/// scan (same contract as torn-tail handling: nothing past damage is
/// trusted).
Result<std::vector<SequencedRecord>> ReadWalRecordsFrom(
    const std::string& path, uint64_t min_seq);

}  // namespace saga::storage

#endif  // SAGA_STORAGE_WAL_H_
