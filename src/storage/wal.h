#ifndef SAGA_STORAGE_WAL_H_
#define SAGA_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace saga::storage {

/// CRC32 (IEEE, reflected) used by WAL and SSTable footers.
uint32_t Crc32(std::string_view data);

/// Append-only write-ahead log. Each record: fixed32 crc | fixed32 len |
/// payload. Replay stops cleanly at the first torn or corrupt record so
/// a crash mid-append loses at most the tail.
class WalWriter {
 public:
  explicit WalWriter(std::string path);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating or appending). Must be called before Append.
  Status Open();

  Status Append(std::string_view record);

  /// Flushes buffered writes to the OS.
  Status Sync();

  /// Closes and truncates the log to empty (called after a successful
  /// memtable flush).
  Status Reset();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  std::ofstream out_;
  uint64_t bytes_written_ = 0;
};

/// Reads all intact records from a WAL file. Missing file yields an
/// empty list (fresh database).
Result<std::vector<std::string>> ReadWalRecords(const std::string& path);

}  // namespace saga::storage

#endif  // SAGA_STORAGE_WAL_H_
