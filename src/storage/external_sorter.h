#ifndef SAGA_STORAGE_EXTERNAL_SORTER_H_
#define SAGA_STORAGE_EXTERNAL_SORTER_H_

#include <fstream>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace saga::storage {

/// Bounded-memory sort of (key, value) records: buffers up to
/// `memory_budget_bytes`, spills sorted runs to disk, then streams a
/// k-way merge. Backs the on-device blocking stage (§5: "expensive
/// computations spill to disk as necessary").
class ExternalSorter {
 public:
  struct Options {
    size_t memory_budget_bytes = 1 << 20;
    std::string spill_dir;  // required
  };

  struct Record {
    std::string key;
    std::string value;
  };

  /// Streaming consumer of the merged output.
  class Iterator {
   public:
    virtual ~Iterator() = default;
    virtual bool Valid() const = 0;
    virtual const Record& Current() const = 0;
    virtual Status Next() = 0;
  };

  explicit ExternalSorter(Options options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  Status Add(std::string_view key, std::string_view value);

  /// Finalizes input and returns a sorted iterator (stable within equal
  /// keys is NOT guaranteed). May be called once.
  Result<std::unique_ptr<Iterator>> Sort();

  size_t runs_spilled() const { return run_paths_.size(); }
  uint64_t bytes_spilled() const { return bytes_spilled_; }
  size_t peak_buffer_bytes() const { return peak_buffer_bytes_; }

 private:
  Status SpillBuffer();

  Options options_;
  std::vector<Record> buffer_;
  size_t buffer_bytes_ = 0;
  size_t peak_buffer_bytes_ = 0;
  uint64_t bytes_spilled_ = 0;
  std::vector<std::string> run_paths_;
  bool finished_ = false;
};

}  // namespace saga::storage

#endif  // SAGA_STORAGE_EXTERNAL_SORTER_H_
