#ifndef SAGA_STORAGE_SSTABLE_H_
#define SAGA_STORAGE_SSTABLE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/bloom.h"

namespace saga::storage {

/// When (if ever) the read path re-verifies per-block CRCs. Open-time
/// always verifies the whole-file footer CRC; block verification
/// defends against bit rot that appears *after* open (page cache / RAM
/// / remapped sectors) and against long-lived readers.
enum class ReadVerifyMode {
  /// Trust the open-time whole-file check; no per-read verification.
  kNone,
  /// Verify each block the first time a read touches it, then memoize
  /// (one relaxed atomic flag per block) — near-free steady state.
  kFirstRead,
  /// Verify the containing block on every read (paranoid / test mode).
  kAlways,
};

/// Immutable sorted string table.
///
/// File layout (v2, magic "SST2"):
///   entries:  (u8 type | varint klen | key | varint vlen | value)*
///   sparse index: (varint klen | key | varint offset)*   every Nth key
///   bloom: raw bloom bytes
///   block crcs: varint count | fixed32 crc per block — one block per
///       sparse-index entry, spanning to the next indexed offset
///   footer: fixed64 index_off | index_len | bloom_off | bloom_len |
///           blockcrc_off | blockcrc_len | num_entries |
///           fixed32 crc(every preceding byte, footer fields included) |
///           fixed32 magic
///
/// v1 files (magic "SST1", no block-CRC section, footer CRC covering
/// only the entry bytes) are still readable; their block CRCs are
/// computed at open time from the whole-file-verified data.
class SSTableBuilder {
 public:
  struct Options {
    int bits_per_key = 10;
    int index_interval = 16;
  };

  SSTableBuilder();
  explicit SSTableBuilder(Options options);

  /// Keys must be added in strictly increasing order.
  /// A tombstone is encoded with type = 1 and empty value.
  Status Add(std::string_view key, std::string_view value,
             bool is_tombstone = false);

  /// Writes the finished table to `path` (atomic).
  Status Finish(const std::string& path, size_t expected_keys);

  size_t num_entries() const { return num_entries_; }

 private:
  Options options_;
  std::string data_;
  std::vector<std::pair<std::string, uint64_t>> index_;
  std::vector<std::string> keys_for_bloom_;
  std::string last_key_;
  size_t num_entries_ = 0;
};

/// Reader over one SSTable. Loads the file once; lookups binary-search
/// the sparse index then scan at most `index_interval` entries.
///
/// Integrity: the checked accessors (GetChecked / Scan*Checked /
/// VerifyChecksums) verify per-block CRCs per the configured
/// ReadVerifyMode and answer kDataLoss on mismatch — corruption is
/// surfaced, never silently decoded or treated as a miss. The legacy
/// unchecked accessors keep their historical "decode failure looks
/// like a miss" behavior for non-serving callers.
class SSTableReader {
 public:
  struct Entry {
    std::string key;
    std::string value;
    bool is_tombstone = false;
  };

  struct OpenOptions {
    ReadVerifyMode verify = ReadVerifyMode::kFirstRead;
  };

  static Result<std::shared_ptr<SSTableReader>> Open(const std::string& path);
  static Result<std::shared_ptr<SSTableReader>> Open(const std::string& path,
                                                     OpenOptions options);

  /// nullopt when the key is not in this table. Tombstones are returned
  /// (caller decides visibility). Unchecked (see class comment).
  std::optional<Entry> Get(std::string_view key) const;

  /// Checksum-verified point lookup: kDataLoss when the bytes backing
  /// the key's block fail their CRC. Fault point: `sstable.read_block`
  /// (kCorrupt flips a bit in the block about to be verified).
  Result<std::optional<Entry>> GetChecked(std::string_view key) const;

  /// All entries with the given prefix, in key order (tombstones
  /// included). Unchecked.
  std::vector<Entry> ScanPrefix(std::string_view prefix) const;

  /// All entries in key order. Unchecked.
  std::vector<Entry> ScanAll() const;

  /// Checksum-verified scans: kDataLoss on a bad block, kCorruption on
  /// an undecodable entry inside a CRC-clean block.
  Result<std::vector<Entry>> ScanPrefixChecked(std::string_view prefix) const;
  Result<std::vector<Entry>> ScanAllChecked() const;

  /// Re-verifies every block CRC (ignoring the first-read memo), e.g.
  /// for the background scrubber. kDataLoss names the first bad block.
  Status VerifyChecksums() const;

  uint64_t num_entries() const { return num_entries_; }
  size_t file_bytes() const { return data_.size(); }
  const std::string& path() const { return path_; }
  size_t num_blocks() const { return block_starts_.size(); }

  /// True if the bloom filter rules the key out (definite miss).
  bool DefinitelyMissing(std::string_view key) const {
    return !bloom_.MayContain(key);
  }

 private:
  SSTableReader(std::string path, std::string data, BloomFilter bloom)
      : path_(std::move(path)),
        data_(std::move(data)),
        bloom_(std::move(bloom)) {}

  Status ParseFooterAndIndex();

  /// Decodes the entry at byte offset `off`; advances *off past it.
  Status DecodeEntry(uint64_t* off, Entry* out) const;

  /// Largest indexed offset whose key <= `key`.
  uint64_t SeekOffset(std::string_view key) const;

  /// Index of the block containing byte offset `off` in the entry area.
  size_t BlockIndexFor(uint64_t off) const;
  /// Verifies (per verify mode, with memoization) the block containing
  /// `off`. OK in kNone mode; kDataLoss on CRC mismatch.
  Status VerifyBlockContaining(uint64_t off) const;
  Status VerifyBlock(size_t block) const;

  std::string path_;
  std::string data_;
  BloomFilter bloom_;
  OpenOptions options_;
  std::vector<std::pair<std::string, uint64_t>> index_;
  /// Block i spans [block_starts_[i], block_starts_[i+1]) within the
  /// entry area (last block ends at entries_end_).
  std::vector<uint64_t> block_starts_;
  std::vector<uint32_t> block_crcs_;
  /// First-read verification memo, one flag per block; relaxed atomics
  /// so concurrent readers never lock.
  std::unique_ptr<std::atomic<uint8_t>[]> verified_;
  uint64_t entries_end_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace saga::storage

#endif  // SAGA_STORAGE_SSTABLE_H_
