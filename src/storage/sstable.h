#ifndef SAGA_STORAGE_SSTABLE_H_
#define SAGA_STORAGE_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/bloom.h"

namespace saga::storage {

/// Immutable sorted string table.
///
/// File layout:
///   entries:  (u8 type | varint klen | key | varint vlen | value)*
///   sparse index: (varint klen | key | varint offset)*   every Nth key
///   bloom: raw bloom bytes
///   footer: fixed64 index_off | fixed64 index_len |
///           fixed64 bloom_off | fixed64 bloom_len |
///           fixed64 num_entries | fixed32 crc(all preceding) |
///           fixed32 magic
class SSTableBuilder {
 public:
  struct Options {
    int bits_per_key = 10;
    int index_interval = 16;
  };

  SSTableBuilder();
  explicit SSTableBuilder(Options options);

  /// Keys must be added in strictly increasing order.
  /// A tombstone is encoded with type = 1 and empty value.
  Status Add(std::string_view key, std::string_view value,
             bool is_tombstone = false);

  /// Writes the finished table to `path` (atomic).
  Status Finish(const std::string& path, size_t expected_keys);

  size_t num_entries() const { return num_entries_; }

 private:
  Options options_;
  std::string data_;
  std::vector<std::pair<std::string, uint64_t>> index_;
  std::vector<std::string> keys_for_bloom_;
  std::string last_key_;
  size_t num_entries_ = 0;
};

/// Reader over one SSTable. Loads the file once; lookups binary-search
/// the sparse index then scan at most `index_interval` entries.
class SSTableReader {
 public:
  struct Entry {
    std::string key;
    std::string value;
    bool is_tombstone = false;
  };

  static Result<std::shared_ptr<SSTableReader>> Open(const std::string& path);

  /// nullopt when the key is not in this table. Tombstones are returned
  /// (caller decides visibility).
  std::optional<Entry> Get(std::string_view key) const;

  /// All entries with the given prefix, in key order (tombstones
  /// included).
  std::vector<Entry> ScanPrefix(std::string_view prefix) const;

  /// All entries in key order.
  std::vector<Entry> ScanAll() const;

  uint64_t num_entries() const { return num_entries_; }
  size_t file_bytes() const { return data_.size(); }
  const std::string& path() const { return path_; }

  /// True if the bloom filter rules the key out (definite miss).
  bool DefinitelyMissing(std::string_view key) const {
    return !bloom_.MayContain(key);
  }

 private:
  SSTableReader(std::string path, std::string data, BloomFilter bloom)
      : path_(std::move(path)),
        data_(std::move(data)),
        bloom_(std::move(bloom)) {}

  Status ParseFooterAndIndex();

  /// Decodes the entry at byte offset `off`; advances *off past it.
  Status DecodeEntry(uint64_t* off, Entry* out) const;

  /// Largest indexed offset whose key <= `key`.
  uint64_t SeekOffset(std::string_view key) const;

  std::string path_;
  std::string data_;
  BloomFilter bloom_;
  std::vector<std::pair<std::string, uint64_t>> index_;
  uint64_t entries_end_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace saga::storage

#endif  // SAGA_STORAGE_SSTABLE_H_
