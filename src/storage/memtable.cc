#include "storage/memtable.h"

namespace saga::storage {

namespace {
constexpr size_t kPerEntryOverhead = 32;
}

void MemTable::Put(std::string_view key, std::string_view value) {
  auto it = table_.find(key);
  if (it != table_.end()) {
    approximate_bytes_ -= it->second.value.size();
    it->second.value.assign(value);
    it->second.is_tombstone = false;
    approximate_bytes_ += value.size();
    return;
  }
  table_.emplace(std::string(key), Entry{std::string(value), false});
  approximate_bytes_ += key.size() + value.size() + kPerEntryOverhead;
}

void MemTable::Delete(std::string_view key) {
  auto it = table_.find(key);
  if (it != table_.end()) {
    approximate_bytes_ -= it->second.value.size();
    it->second.value.clear();
    it->second.is_tombstone = true;
    return;
  }
  table_.emplace(std::string(key), Entry{std::string(), true});
  approximate_bytes_ += key.size() + kPerEntryOverhead;
}

std::optional<MemTable::Entry> MemTable::Get(std::string_view key) const {
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void MemTable::Clear() {
  table_.clear();
  approximate_bytes_ = 0;
}

}  // namespace saga::storage
