#include "storage/external_sorter.h"

#include <algorithm>

#include "common/file_util.h"
#include "common/serialization.h"

namespace saga::storage {

namespace {

/// Buffered sequential reader over one spilled run file.
class RunReader {
 public:
  explicit RunReader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return in_.good() || in_.eof(); }

  /// Reads the next record; returns false at EOF.
  bool Read(ExternalSorter::Record* rec) {
    uint32_t klen = 0;
    uint32_t vlen = 0;
    if (!ReadU32(&klen) || !ReadU32(&vlen)) return false;
    rec->key.resize(klen);
    rec->value.resize(vlen);
    if (klen > 0 && !in_.read(rec->key.data(), klen)) return false;
    if (vlen > 0 && !in_.read(rec->value.data(), vlen)) return false;
    return true;
  }

 private:
  bool ReadU32(uint32_t* v) {
    char buf[4];
    if (!in_.read(buf, 4)) return false;
    const unsigned char* p = reinterpret_cast<const unsigned char*>(buf);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    return true;
  }

  std::ifstream in_;
};

void AppendRecord(std::string* out, const ExternalSorter::Record& rec) {
  BinaryWriter w(out);
  w.PutFixed32(static_cast<uint32_t>(rec.key.size()));
  w.PutFixed32(static_cast<uint32_t>(rec.value.size()));
  out->append(rec.key);
  out->append(rec.value);
}

/// Iterator over the in-memory buffer only (no spills happened).
class MemoryIterator : public ExternalSorter::Iterator {
 public:
  explicit MemoryIterator(std::vector<ExternalSorter::Record> records)
      : records_(std::move(records)) {}

  bool Valid() const override { return pos_ < records_.size(); }
  const ExternalSorter::Record& Current() const override {
    return records_[pos_];
  }
  Status Next() override {
    ++pos_;
    return Status::OK();
  }

 private:
  std::vector<ExternalSorter::Record> records_;
  size_t pos_ = 0;
};

/// K-way merge over spilled runs plus an optional final in-memory run.
class MergeIterator : public ExternalSorter::Iterator {
 public:
  MergeIterator(const std::vector<std::string>& run_paths,
                std::vector<ExternalSorter::Record> tail, Status* status) {
    for (const auto& path : run_paths) {
      auto reader = std::make_unique<RunReader>(path);
      ExternalSorter::Record rec;
      if (reader->Read(&rec)) {
        heap_.push(HeapItem{std::move(rec), sources_.size()});
        sources_.push_back(std::move(reader));
      } else if (!reader->ok()) {
        *status = Status::IOError("cannot read spill run: " + path);
        return;
      }
    }
    std::sort(tail.begin(), tail.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    tail_ = std::move(tail);
    if (tail_pos_ < tail_.size()) {
      heap_.push(HeapItem{tail_[tail_pos_++], kTailSource});
    }
    *status = Status::OK();
    Advance();
  }

  bool Valid() const override { return valid_; }
  const ExternalSorter::Record& Current() const override { return current_; }

  Status Next() override {
    Advance();
    return Status::OK();
  }

 private:
  static constexpr size_t kTailSource = static_cast<size_t>(-1);

  struct HeapItem {
    ExternalSorter::Record rec;
    size_t source;
    bool operator>(const HeapItem& other) const {
      return rec.key > other.rec.key;
    }
  };

  void Advance() {
    if (heap_.empty()) {
      valid_ = false;
      return;
    }
    HeapItem top = heap_.top();
    heap_.pop();
    current_ = std::move(top.rec);
    valid_ = true;
    if (top.source == kTailSource) {
      if (tail_pos_ < tail_.size()) {
        heap_.push(HeapItem{tail_[tail_pos_++], kTailSource});
      }
    } else {
      ExternalSorter::Record next;
      if (sources_[top.source]->Read(&next)) {
        heap_.push(HeapItem{std::move(next), top.source});
      }
    }
  }

  std::vector<std::unique_ptr<RunReader>> sources_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<ExternalSorter::Record> tail_;
  size_t tail_pos_ = 0;
  ExternalSorter::Record current_;
  bool valid_ = false;
};

}  // namespace

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)) {}

ExternalSorter::~ExternalSorter() {
  for (const auto& path : run_paths_) {
    (void)RemoveFileIfExists(path);
  }
}

Status ExternalSorter::Add(std::string_view key, std::string_view value) {
  if (finished_) {
    return Status::FailedPrecondition("Add after Sort()");
  }
  buffer_.push_back(Record{std::string(key), std::string(value)});
  buffer_bytes_ += key.size() + value.size() + 48;
  peak_buffer_bytes_ = std::max(peak_buffer_bytes_, buffer_bytes_);
  if (buffer_bytes_ >= options_.memory_budget_bytes) {
    return SpillBuffer();
  }
  return Status::OK();
}

Status ExternalSorter::SpillBuffer() {
  if (buffer_.empty()) return Status::OK();
  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(options_.spill_dir));
  std::sort(buffer_.begin(), buffer_.end(),
            [](const Record& a, const Record& b) { return a.key < b.key; });
  std::string data;
  data.reserve(buffer_bytes_);
  for (const auto& rec : buffer_) AppendRecord(&data, rec);
  const std::string path = JoinPath(
      options_.spill_dir, "run_" + std::to_string(run_paths_.size()) + ".dat");
  SAGA_RETURN_IF_ERROR(WriteStringToFile(path, data));
  run_paths_.push_back(path);
  bytes_spilled_ += data.size();
  buffer_.clear();
  buffer_bytes_ = 0;
  return Status::OK();
}

Result<std::unique_ptr<ExternalSorter::Iterator>> ExternalSorter::Sort() {
  if (finished_) return Status::FailedPrecondition("Sort() called twice");
  finished_ = true;
  if (run_paths_.empty()) {
    std::sort(buffer_.begin(), buffer_.end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
    return std::unique_ptr<Iterator>(
        std::make_unique<MemoryIterator>(std::move(buffer_)));
  }
  Status status;
  auto it = std::make_unique<MergeIterator>(run_paths_, std::move(buffer_),
                                            &status);
  SAGA_RETURN_IF_ERROR(status);
  return std::unique_ptr<Iterator>(std::move(it));
}

}  // namespace saga::storage
