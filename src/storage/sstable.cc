#include "storage/sstable.h"

#include <algorithm>
#include <fstream>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/serialization.h"
#include "storage/wal.h"  // Crc32

namespace saga::storage {

namespace {
constexpr uint32_t kSstMagicV1 = 0x53535431u;  // "SST1"
constexpr uint32_t kSstMagicV2 = 0x53535432u;  // "SST2"
constexpr size_t kFooterSizeV1 = 8 * 5 + 4 + 4;
constexpr size_t kFooterSizeV2 = 8 * 7 + 4 + 4;
constexpr uint8_t kTypeValue = 0;
constexpr uint8_t kTypeTombstone = 1;
}  // namespace

SSTableBuilder::SSTableBuilder() : SSTableBuilder(Options()) {}

SSTableBuilder::SSTableBuilder(Options options) : options_(options) {}

Status SSTableBuilder::Add(std::string_view key, std::string_view value,
                           bool is_tombstone) {
  if (num_entries_ > 0 && std::string_view(last_key_) >= key) {
    return Status::InvalidArgument("SSTable keys must be strictly increasing");
  }
  if (num_entries_ % static_cast<size_t>(options_.index_interval) == 0) {
    index_.emplace_back(std::string(key), data_.size());
  }
  BinaryWriter w(&data_);
  w.PutU8(is_tombstone ? kTypeTombstone : kTypeValue);
  w.PutString(key);
  w.PutString(is_tombstone ? std::string_view() : value);
  keys_for_bloom_.emplace_back(key);
  last_key_.assign(key);
  ++num_entries_;
  return Status::OK();
}

Status SSTableBuilder::Finish(const std::string& path, size_t expected_keys) {
  BloomFilter bloom(std::max(expected_keys, keys_for_bloom_.size()),
                    options_.bits_per_key);
  for (const auto& k : keys_for_bloom_) bloom.Add(k);

  std::string file = std::move(data_);
  const uint64_t entries_len = file.size();

  // Per-block CRCs over the entry area: one block per sparse-index
  // entry, spanning to the next indexed offset (verified on read).
  std::vector<uint32_t> block_crcs;
  block_crcs.reserve(index_.size());
  for (size_t i = 0; i < index_.size(); ++i) {
    const uint64_t begin = index_[i].second;
    const uint64_t end =
        (i + 1 < index_.size()) ? index_[i + 1].second : entries_len;
    block_crcs.push_back(
        Crc32(std::string_view(file.data() + begin, end - begin)));
  }

  const uint64_t index_off = file.size();
  {
    BinaryWriter w(&file);
    for (const auto& [key, off] : index_) {
      w.PutString(key);
      w.PutVarint64(off);
    }
  }
  const uint64_t index_len = file.size() - index_off;
  const uint64_t bloom_off = file.size();
  const std::string bloom_bytes = bloom.Serialize();
  file.append(bloom_bytes);
  const uint64_t bloom_len = bloom_bytes.size();

  const uint64_t blockcrc_off = file.size();
  {
    BinaryWriter w(&file);
    w.PutVarint64(block_crcs.size());
    for (uint32_t crc : block_crcs) w.PutFixed32(crc);
  }
  const uint64_t blockcrc_len = file.size() - blockcrc_off;

  BinaryWriter w(&file);
  w.PutFixed64(index_off);
  w.PutFixed64(index_len);
  w.PutFixed64(bloom_off);
  w.PutFixed64(bloom_len);
  w.PutFixed64(blockcrc_off);
  w.PutFixed64(blockcrc_len);
  w.PutFixed64(num_entries_);
  // The v2 footer CRC covers everything before the footer (entries,
  // index, bloom, block-CRC table), so a flipped bit anywhere in the
  // metadata is caught at open.
  w.PutFixed32(Crc32(std::string_view(file.data(), file.size())));
  w.PutFixed32(kSstMagicV2);
  if (Faults().armed()) {
    // A bit flip here is committed to disk and only caught by the
    // footer CRC at Open time; a torn write or failure aborts before
    // the atomic rename below.
    const WriteFault f = Faults().InjectWrite("sst.build", &file);
    if (f.fail && !f.write_payload) {
      return Status::IOError("injected SSTable build failure: " + path);
    }
    if (f.fail) {
      // Torn build: the prefix reaches the temp file (exactly what a
      // crash mid-write leaves); the table is never renamed in.
      std::ofstream torn(path + ".tmp", std::ios::binary | std::ios::trunc);
      torn.write(file.data(), static_cast<std::streamsize>(file.size()));
      return Status::IOError("injected torn SSTable build: " + path);
    }
  }
  return WriteStringToFile(path, file, /*durable=*/true);
}

Result<std::shared_ptr<SSTableReader>> SSTableReader::Open(
    const std::string& path) {
  return Open(path, OpenOptions());
}

Result<std::shared_ptr<SSTableReader>> SSTableReader::Open(
    const std::string& path, OpenOptions options) {
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("sst.open"));
  }
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto reader = std::shared_ptr<SSTableReader>(
      new SSTableReader(path, std::move(data), BloomFilter::FromBytes("")));
  reader->options_ = options;
  SAGA_RETURN_IF_ERROR(reader->ParseFooterAndIndex());
  return reader;
}

Status SSTableReader::ParseFooterAndIndex() {
  if (data_.size() < 4) {
    return Status::Corruption("SSTable too small: " + path_);
  }
  uint32_t magic = 0;
  {
    BinaryReader m(std::string_view(data_).substr(data_.size() - 4));
    SAGA_RETURN_IF_ERROR(m.GetFixed32(&magic));
  }
  uint64_t index_off = 0;
  uint64_t index_len = 0;
  uint64_t bloom_off = 0;
  uint64_t bloom_len = 0;
  uint64_t blockcrc_off = 0;
  uint64_t blockcrc_len = 0;

  if (magic == kSstMagicV2) {
    if (data_.size() < kFooterSizeV2) {
      return Status::Corruption("SSTable too small: " + path_);
    }
    BinaryReader r(
        std::string_view(data_).substr(data_.size() - kFooterSizeV2));
    uint32_t crc = 0;
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&index_off));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&index_len));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&bloom_off));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&bloom_len));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&blockcrc_off));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&blockcrc_len));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&num_entries_));
    SAGA_RETURN_IF_ERROR(r.GetFixed32(&crc));
    const uint64_t footer_start = data_.size() - kFooterSizeV2;
    if (index_off + index_len > footer_start ||
        bloom_off + bloom_len > footer_start ||
        blockcrc_off + blockcrc_len > footer_start) {
      return Status::Corruption("SSTable footer offsets out of range: " +
                                path_);
    }
    // The v2 CRC covers every byte before the crc field itself —
    // entries, index, bloom, block-CRC table AND the footer offsets.
    if (Crc32(std::string_view(data_.data(), data_.size() - 8)) != crc) {
      return Status::Corruption("SSTable data crc mismatch: " + path_);
    }
  } else if (magic == kSstMagicV1) {
    if (data_.size() < kFooterSizeV1) {
      return Status::Corruption("SSTable too small: " + path_);
    }
    BinaryReader r(
        std::string_view(data_).substr(data_.size() - kFooterSizeV1));
    uint32_t crc = 0;
    uint32_t magic_again = 0;
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&index_off));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&index_len));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&bloom_off));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&bloom_len));
    SAGA_RETURN_IF_ERROR(r.GetFixed64(&num_entries_));
    SAGA_RETURN_IF_ERROR(r.GetFixed32(&crc));
    SAGA_RETURN_IF_ERROR(r.GetFixed32(&magic_again));
    if (index_off + index_len > data_.size() ||
        bloom_off + bloom_len > data_.size()) {
      return Status::Corruption("SSTable footer offsets out of range: " +
                                path_);
    }
    if (Crc32(std::string_view(data_.data(), index_off)) != crc) {
      return Status::Corruption("SSTable data crc mismatch: " + path_);
    }
  } else {
    return Status::Corruption("bad SSTable magic: " + path_);
  }

  entries_end_ = index_off;
  bloom_ = BloomFilter::FromBytes(
      std::string_view(data_.data() + bloom_off, bloom_len));
  BinaryReader idx(std::string_view(data_.data() + index_off, index_len));
  while (!idx.AtEnd()) {
    std::string key;
    uint64_t off = 0;
    SAGA_RETURN_IF_ERROR(idx.GetString(&key));
    SAGA_RETURN_IF_ERROR(idx.GetVarint64(&off));
    index_.emplace_back(std::move(key), off);
  }

  block_starts_.reserve(index_.size());
  for (const auto& [key, off] : index_) block_starts_.push_back(off);
  if (magic == kSstMagicV2) {
    BinaryReader bc(
        std::string_view(data_.data() + blockcrc_off, blockcrc_len));
    uint64_t n = 0;
    SAGA_RETURN_IF_ERROR(bc.GetVarint64(&n));
    if (n != block_starts_.size()) {
      return Status::Corruption("SSTable block-crc count mismatch: " + path_);
    }
    block_crcs_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t crc = 0;
      SAGA_RETURN_IF_ERROR(bc.GetFixed32(&crc));
      block_crcs_.push_back(crc);
    }
  } else {
    // v1: no stored block CRCs. The whole file just passed its CRC, so
    // computing them here still anchors later reads to known-good data.
    block_crcs_.reserve(block_starts_.size());
    for (size_t i = 0; i < block_starts_.size(); ++i) {
      const uint64_t begin = block_starts_[i];
      const uint64_t end =
          (i + 1 < block_starts_.size()) ? block_starts_[i + 1] : entries_end_;
      block_crcs_.push_back(
          Crc32(std::string_view(data_.data() + begin, end - begin)));
    }
  }
  if (!block_starts_.empty()) {
    verified_ = std::make_unique<std::atomic<uint8_t>[]>(block_starts_.size());
    for (size_t i = 0; i < block_starts_.size(); ++i) {
      verified_[i].store(0, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

size_t SSTableReader::BlockIndexFor(uint64_t off) const {
  // Last block whose start <= off.
  auto it = std::upper_bound(block_starts_.begin(), block_starts_.end(), off);
  return static_cast<size_t>(it - block_starts_.begin()) - 1;
}

Status SSTableReader::VerifyBlock(size_t block) const {
  const uint64_t begin = block_starts_[block];
  const uint64_t end = (block + 1 < block_starts_.size())
                           ? block_starts_[block + 1]
                           : entries_end_;
  if (Faults().armed()) {
    // Read-side corruption injection mutates the in-memory copy —
    // exactly what bit rot between open and read looks like. The
    // const_cast is confined to the armed test path.
    char* bytes = const_cast<char*>(data_.data()) + begin;
    SAGA_RETURN_IF_ERROR(
        Faults().InjectRead("sstable.read_block", bytes, end - begin));
  }
  if (Crc32(std::string_view(data_.data() + begin, end - begin)) !=
      block_crcs_[block]) {
    SAGA_COUNTER("integrity.corruption.detected").Add();
    return Status::DataLoss("SSTable block " + std::to_string(block) +
                            " crc mismatch: " + path_);
  }
  verified_[block].store(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SSTableReader::VerifyBlockContaining(uint64_t off) const {
  if (options_.verify == ReadVerifyMode::kNone || block_starts_.empty()) {
    return Status::OK();
  }
  const size_t block = BlockIndexFor(off);
  if (options_.verify == ReadVerifyMode::kFirstRead &&
      verified_[block].load(std::memory_order_relaxed) != 0) {
    return Status::OK();
  }
  return VerifyBlock(block);
}

Status SSTableReader::VerifyChecksums() const {
  for (size_t b = 0; b < block_starts_.size(); ++b) {
    SAGA_RETURN_IF_ERROR(VerifyBlock(b));
  }
  return Status::OK();
}

Status SSTableReader::DecodeEntry(uint64_t* off, Entry* out) const {
  BinaryReader r(std::string_view(data_.data() + *off, entries_end_ - *off));
  uint8_t type = 0;
  SAGA_RETURN_IF_ERROR(r.GetU8(&type));
  SAGA_RETURN_IF_ERROR(r.GetString(&out->key));
  SAGA_RETURN_IF_ERROR(r.GetString(&out->value));
  out->is_tombstone = (type == kTypeTombstone);
  *off += r.position();
  return Status::OK();
}

uint64_t SSTableReader::SeekOffset(std::string_view key) const {
  if (index_.empty()) return 0;
  // Last index entry with key <= target.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::string_view k, const std::pair<std::string, uint64_t>& e) {
        return k < std::string_view(e.first);
      });
  if (it == index_.begin()) return 0;
  return std::prev(it)->second;
}

std::optional<SSTableReader::Entry> SSTableReader::Get(
    std::string_view key) const {
  if (!bloom_.MayContain(key)) return std::nullopt;
  uint64_t off = SeekOffset(key);
  Entry e;
  while (off < entries_end_) {
    if (!DecodeEntry(&off, &e).ok()) return std::nullopt;
    if (e.key == key) return e;
    if (std::string_view(e.key) > key) return std::nullopt;
  }
  return std::nullopt;
}

Result<std::optional<SSTableReader::Entry>> SSTableReader::GetChecked(
    std::string_view key) const {
  if (!bloom_.MayContain(key)) return std::optional<Entry>();
  uint64_t off = SeekOffset(key);
  Entry e;
  while (off < entries_end_) {
    SAGA_RETURN_IF_ERROR(VerifyBlockContaining(off));
    Status s = DecodeEntry(&off, &e);
    if (!s.ok()) {
      // The block passed its CRC yet an entry does not decode: the
      // table was built wrong, not rotted. Still never a silent miss.
      return Status::Corruption("undecodable entry in crc-clean block: " +
                                path_ + ": " + s.message());
    }
    if (e.key == key) return std::optional<Entry>(std::move(e));
    if (std::string_view(e.key) > key) return std::optional<Entry>();
  }
  return std::optional<Entry>();
}

std::vector<SSTableReader::Entry> SSTableReader::ScanPrefix(
    std::string_view prefix) const {
  std::vector<Entry> out;
  uint64_t off = prefix.empty() ? 0 : SeekOffset(prefix);
  Entry e;
  while (off < entries_end_) {
    if (!DecodeEntry(&off, &e).ok()) break;
    if (std::string_view(e.key) >= prefix) {
      if (e.key.compare(0, prefix.size(), prefix) != 0) {
        if (std::string_view(e.key) > prefix) break;
      } else {
        out.push_back(e);
      }
    }
  }
  return out;
}

std::vector<SSTableReader::Entry> SSTableReader::ScanAll() const {
  std::vector<Entry> out;
  out.reserve(num_entries_);
  uint64_t off = 0;
  Entry e;
  while (off < entries_end_) {
    if (!DecodeEntry(&off, &e).ok()) break;
    out.push_back(e);
  }
  return out;
}

Result<std::vector<SSTableReader::Entry>> SSTableReader::ScanPrefixChecked(
    std::string_view prefix) const {
  std::vector<Entry> out;
  uint64_t off = prefix.empty() ? 0 : SeekOffset(prefix);
  Entry e;
  while (off < entries_end_) {
    SAGA_RETURN_IF_ERROR(VerifyBlockContaining(off));
    Status s = DecodeEntry(&off, &e);
    if (!s.ok()) {
      return Status::Corruption("undecodable entry in crc-clean block: " +
                                path_ + ": " + s.message());
    }
    if (std::string_view(e.key) >= prefix) {
      if (e.key.compare(0, prefix.size(), prefix) != 0) {
        if (std::string_view(e.key) > prefix) break;
      } else {
        out.push_back(e);
      }
    }
  }
  return out;
}

Result<std::vector<SSTableReader::Entry>> SSTableReader::ScanAllChecked()
    const {
  std::vector<Entry> out;
  out.reserve(num_entries_);
  uint64_t off = 0;
  Entry e;
  while (off < entries_end_) {
    SAGA_RETURN_IF_ERROR(VerifyBlockContaining(off));
    Status s = DecodeEntry(&off, &e);
    if (!s.ok()) {
      return Status::Corruption("undecodable entry in crc-clean block: " +
                                path_ + ": " + s.message());
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace saga::storage
