#include "storage/sstable.h"

#include <algorithm>
#include <fstream>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/serialization.h"
#include "storage/wal.h"  // Crc32

namespace saga::storage {

namespace {
constexpr uint32_t kSstMagic = 0x53535431u;  // "SST1"
constexpr size_t kFooterSize = 8 * 5 + 4 + 4;
constexpr uint8_t kTypeValue = 0;
constexpr uint8_t kTypeTombstone = 1;
}  // namespace

SSTableBuilder::SSTableBuilder() : SSTableBuilder(Options()) {}

SSTableBuilder::SSTableBuilder(Options options) : options_(options) {}

Status SSTableBuilder::Add(std::string_view key, std::string_view value,
                           bool is_tombstone) {
  if (num_entries_ > 0 && std::string_view(last_key_) >= key) {
    return Status::InvalidArgument("SSTable keys must be strictly increasing");
  }
  if (num_entries_ % static_cast<size_t>(options_.index_interval) == 0) {
    index_.emplace_back(std::string(key), data_.size());
  }
  BinaryWriter w(&data_);
  w.PutU8(is_tombstone ? kTypeTombstone : kTypeValue);
  w.PutString(key);
  w.PutString(is_tombstone ? std::string_view() : value);
  keys_for_bloom_.emplace_back(key);
  last_key_.assign(key);
  ++num_entries_;
  return Status::OK();
}

Status SSTableBuilder::Finish(const std::string& path, size_t expected_keys) {
  BloomFilter bloom(std::max(expected_keys, keys_for_bloom_.size()),
                    options_.bits_per_key);
  for (const auto& k : keys_for_bloom_) bloom.Add(k);

  std::string file = std::move(data_);
  const uint64_t index_off = file.size();
  {
    BinaryWriter w(&file);
    for (const auto& [key, off] : index_) {
      w.PutString(key);
      w.PutVarint64(off);
    }
  }
  const uint64_t index_len = file.size() - index_off;
  const uint64_t bloom_off = file.size();
  const std::string bloom_bytes = bloom.Serialize();
  file.append(bloom_bytes);
  const uint64_t bloom_len = bloom_bytes.size();

  BinaryWriter w(&file);
  w.PutFixed64(index_off);
  w.PutFixed64(index_len);
  w.PutFixed64(bloom_off);
  w.PutFixed64(bloom_len);
  w.PutFixed64(num_entries_);
  w.PutFixed32(Crc32(std::string_view(file.data(), index_off)));
  w.PutFixed32(kSstMagic);
  if (Faults().armed()) {
    // A bit flip here is committed to disk and only caught by the
    // footer CRC at Open time; a torn write or failure aborts before
    // the atomic rename below.
    const WriteFault f = Faults().InjectWrite("sst.build", &file);
    if (f.fail && !f.write_payload) {
      return Status::IOError("injected SSTable build failure: " + path);
    }
    if (f.fail) {
      // Torn build: the prefix reaches the temp file (exactly what a
      // crash mid-write leaves); the table is never renamed in.
      std::ofstream torn(path + ".tmp", std::ios::binary | std::ios::trunc);
      torn.write(file.data(), static_cast<std::streamsize>(file.size()));
      return Status::IOError("injected torn SSTable build: " + path);
    }
  }
  return WriteStringToFile(path, file, /*durable=*/true);
}

Result<std::shared_ptr<SSTableReader>> SSTableReader::Open(
    const std::string& path) {
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("sst.open"));
  }
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto reader = std::shared_ptr<SSTableReader>(
      new SSTableReader(path, std::move(data), BloomFilter::FromBytes("")));
  SAGA_RETURN_IF_ERROR(reader->ParseFooterAndIndex());
  return reader;
}

Status SSTableReader::ParseFooterAndIndex() {
  if (data_.size() < kFooterSize) {
    return Status::Corruption("SSTable too small: " + path_);
  }
  BinaryReader r(
      std::string_view(data_).substr(data_.size() - kFooterSize));
  uint64_t index_off = 0;
  uint64_t index_len = 0;
  uint64_t bloom_off = 0;
  uint64_t bloom_len = 0;
  uint32_t crc = 0;
  uint32_t magic = 0;
  SAGA_RETURN_IF_ERROR(r.GetFixed64(&index_off));
  SAGA_RETURN_IF_ERROR(r.GetFixed64(&index_len));
  SAGA_RETURN_IF_ERROR(r.GetFixed64(&bloom_off));
  SAGA_RETURN_IF_ERROR(r.GetFixed64(&bloom_len));
  SAGA_RETURN_IF_ERROR(r.GetFixed64(&num_entries_));
  SAGA_RETURN_IF_ERROR(r.GetFixed32(&crc));
  SAGA_RETURN_IF_ERROR(r.GetFixed32(&magic));
  if (magic != kSstMagic) {
    return Status::Corruption("bad SSTable magic: " + path_);
  }
  if (index_off + index_len > data_.size() ||
      bloom_off + bloom_len > data_.size()) {
    return Status::Corruption("SSTable footer offsets out of range: " + path_);
  }
  if (Crc32(std::string_view(data_.data(), index_off)) != crc) {
    return Status::Corruption("SSTable data crc mismatch: " + path_);
  }
  entries_end_ = index_off;
  bloom_ = BloomFilter::FromBytes(
      std::string_view(data_.data() + bloom_off, bloom_len));
  BinaryReader idx(std::string_view(data_.data() + index_off, index_len));
  while (!idx.AtEnd()) {
    std::string key;
    uint64_t off = 0;
    SAGA_RETURN_IF_ERROR(idx.GetString(&key));
    SAGA_RETURN_IF_ERROR(idx.GetVarint64(&off));
    index_.emplace_back(std::move(key), off);
  }
  return Status::OK();
}

Status SSTableReader::DecodeEntry(uint64_t* off, Entry* out) const {
  BinaryReader r(std::string_view(data_.data() + *off, entries_end_ - *off));
  uint8_t type = 0;
  SAGA_RETURN_IF_ERROR(r.GetU8(&type));
  SAGA_RETURN_IF_ERROR(r.GetString(&out->key));
  SAGA_RETURN_IF_ERROR(r.GetString(&out->value));
  out->is_tombstone = (type == kTypeTombstone);
  *off += r.position();
  return Status::OK();
}

uint64_t SSTableReader::SeekOffset(std::string_view key) const {
  if (index_.empty()) return 0;
  // Last index entry with key <= target.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::string_view k, const std::pair<std::string, uint64_t>& e) {
        return k < std::string_view(e.first);
      });
  if (it == index_.begin()) return 0;
  return std::prev(it)->second;
}

std::optional<SSTableReader::Entry> SSTableReader::Get(
    std::string_view key) const {
  if (!bloom_.MayContain(key)) return std::nullopt;
  uint64_t off = SeekOffset(key);
  Entry e;
  while (off < entries_end_) {
    if (!DecodeEntry(&off, &e).ok()) return std::nullopt;
    if (e.key == key) return e;
    if (std::string_view(e.key) > key) return std::nullopt;
  }
  return std::nullopt;
}

std::vector<SSTableReader::Entry> SSTableReader::ScanPrefix(
    std::string_view prefix) const {
  std::vector<Entry> out;
  uint64_t off = prefix.empty() ? 0 : SeekOffset(prefix);
  Entry e;
  while (off < entries_end_) {
    if (!DecodeEntry(&off, &e).ok()) break;
    if (std::string_view(e.key) >= prefix) {
      if (e.key.compare(0, prefix.size(), prefix) != 0) {
        if (std::string_view(e.key) > prefix) break;
      } else {
        out.push_back(e);
      }
    }
  }
  return out;
}

std::vector<SSTableReader::Entry> SSTableReader::ScanAll() const {
  std::vector<Entry> out;
  out.reserve(num_entries_);
  uint64_t off = 0;
  Entry e;
  while (off < entries_end_) {
    if (!DecodeEntry(&off, &e).ok()) break;
    out.push_back(e);
  }
  return out;
}

}  // namespace saga::storage
