#include "storage/wal.h"

#include <array>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/serialization.h"

#ifndef SAGA_WAL_OFSTREAM_FALLBACK
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace saga::storage {

namespace {

/// Appends are buffered up to this many bytes before hitting the fd.
constexpr size_t kWalBufferBytes = 64 << 10;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

WalWriter::WalWriter(std::string path) : path_(std::move(path)) {}

WalWriter::~WalWriter() {
  // Best-effort flush of buffered (never-synced, hence unacknowledged)
  // records, matching what an OS page cache would eventually do.
  (void)FlushBuffer();
  CloseFd();
}

bool WalWriter::IsOpen() const {
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  return out_.is_open();
#else
  return fd_ >= 0;
#endif
}

void WalWriter::CloseFd() {
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  if (out_.is_open()) out_.close();
#else
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

Status WalWriter::Open() {
  if (Faults().armed()) {
    SAGA_RETURN_IF_ERROR(Faults().InjectOp("wal.open"));
  }
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) return Status::IOError("cannot open WAL: " + path_);
#else
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open WAL " + path_ + ": " +
                           std::strerror(errno));
  }
#endif
  return Status::OK();
}

Status WalWriter::WriteRaw(std::string_view data) {
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  out_.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out_) return Status::IOError("WAL write failed: " + path_);
#else
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("WAL write failed " + path_ + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
#endif
  return Status::OK();
}

Status WalWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  if (!IsOpen()) return Status::FailedPrecondition("WAL not open");
  SAGA_RETURN_IF_ERROR(WriteRaw(buffer_));
  buffer_.clear();
  return Status::OK();
}

Status WalWriter::Append(std::string_view record) {
  if (!IsOpen()) return Status::FailedPrecondition("WAL not open");
  if (poisoned_) {
    return Status::FsyncGate("WAL poisoned by failed fsync: " + path_);
  }
  std::string encoded;
  BinaryWriter w(&encoded);
  w.PutFixed32(Crc32(record));
  w.PutFixed32(static_cast<uint32_t>(record.size()));
  encoded.append(record);
  if (Faults().armed()) {
    const WriteFault f = Faults().InjectWrite("wal.append", &encoded);
    if (f.no_space) {
      return Status::StorageExhausted("injected WAL ENOSPC: " + path_);
    }
    if (f.fail && !f.write_payload) {
      return Status::IOError("injected WAL append failure: " + path_);
    }
    if (f.fail) {
      // Torn append: the truncated prefix reaches the file — exactly the
      // state a crash mid-write leaves behind — and the caller sees an
      // error, so the record was never acknowledged.
      buffer_.append(encoded);
      (void)FlushBuffer();
      return Status::IOError("injected torn WAL append: " + path_);
    }
  }
  buffer_.append(encoded);
  bytes_written_ += encoded.size();
  if (buffer_.size() >= kWalBufferBytes) {
    SAGA_RETURN_IF_ERROR(FlushBuffer());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!IsOpen()) return Status::FailedPrecondition("WAL not open");
  if (poisoned_) {
    return Status::FsyncGate("WAL poisoned by failed fsync: " + path_);
  }
  if (Faults().armed()) {
    Status injected = Faults().InjectOp("wal.sync");
    if (!injected.ok()) {
      // A failed sync poisons the writer whatever its cause: the fd's
      // dirty state is now indeterminate and must never be re-fsynced.
      // Keep a storage origin (injected ENOSPC) as-is; anything else
      // surfaces as the fsync-gate itself.
      poisoned_ = true;
      if (injected.IsStorageExhausted()) return injected;
      return Status::FsyncGate("injected WAL fsync failure " + path_ + ": " +
                               injected.message());
    }
  }
  SAGA_RETURN_IF_ERROR(FlushBuffer());
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  out_.flush();
  if (!out_) {
    poisoned_ = true;
    return Status::FsyncGate("WAL sync failed: " + path_);
  }
#else
  if (::fsync(fd_) != 0) {
    poisoned_ = true;
    return Status::FsyncGate("WAL fsync failed " + path_ + ": " +
                             std::strerror(errno));
  }
#endif
  return Status::OK();
}

Status WalWriter::RotateTo(const std::string& sealed_path) {
  if (!IsOpen()) return Status::FailedPrecondition("WAL not open");
  if (poisoned_) {
    // Everything buffered after a failed fsync was never acknowledged
    // (sync mode flushes the buffer on every acked record), so it is
    // safe — and cleaner — to drop it than to seal indeterminate bytes.
    buffer_.clear();
  }
  Status flushed = FlushBuffer();
  if (!flushed.ok()) return flushed;
  CloseFd();
  Status renamed = RenameFileDurable(path_, sealed_path);
  if (!renamed.ok() && !FileExists(sealed_path)) {
    // Rename never happened: reopen the old log for append so the
    // writer stays usable and the caller can retry the seal later.
    Status reopened = Open();
    if (!reopened.ok()) return reopened;
    return renamed;
  }
  // The segment exists (even if the rename's directory sync failed —
  // the caller's recovery path scans for segment files, so a
  // half-durable rename is found either under the old or new name).
  poisoned_ = false;
  bytes_written_ = 0;
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) return Status::IOError("cannot reopen WAL: " + path_);
#else
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot reopen WAL " + path_ + ": " +
                           std::strerror(errno));
  }
#endif
  if (!renamed.ok()) return renamed;
  return Status::OK();
}

Status WalWriter::Reset() {
  buffer_.clear();
  CloseFd();
  poisoned_ = false;
#ifdef SAGA_WAL_OFSTREAM_FALLBACK
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) return Status::IOError("cannot truncate WAL: " + path_);
#else
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot truncate WAL " + path_ + ": " +
                           std::strerror(errno));
  }
#endif
  bytes_written_ = 0;
  return Status::OK();
}

Result<WalReadResult> ReadWalRecordsDetailed(const std::string& path) {
  WalReadResult out;
  if (!FileExists(path)) return out;
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (Faults().armed() && !data.empty()) {
    // `wal.replay` models on-disk rot discovered at recovery time: a
    // kCorrupt fault flips a bit somewhere in the log image, and the
    // per-record CRCs below turn that into a clean stop-at-damage.
    SAGA_RETURN_IF_ERROR(
        Faults().InjectRead("wal.replay", data.data(), data.size()));
  }
  BinaryReader r(data);
  size_t intact_end = 0;
  while (!r.AtEnd()) {
    uint32_t crc = 0;
    uint32_t len = 0;
    if (!r.GetFixed32(&crc).ok() || !r.GetFixed32(&len).ok()) break;
    if (r.remaining() < len) break;  // torn tail record
    std::string_view payload(data.data() + r.position(), len);
    if (Crc32(payload) != crc) break;  // corrupt tail record
    out.records.emplace_back(payload);
    SAGA_RETURN_IF_ERROR(r.Skip(len));
    intact_end = r.position();
  }
  out.bytes_dropped = data.size() - intact_end;
  out.clean = out.bytes_dropped == 0;
  return out;
}

Result<std::vector<std::string>> ReadWalRecords(const std::string& path) {
  SAGA_ASSIGN_OR_RETURN(WalReadResult result, ReadWalRecordsDetailed(path));
  return std::move(result.records);
}

std::string EncodeSequencedRecord(const SequencedRecord& record) {
  std::string out;
  BinaryWriter w(&out);
  w.PutFixed64(record.seq);
  w.PutFixed64(record.epoch);
  out.append(record.payload);
  return out;
}

Result<SequencedRecord> DecodeSequencedRecord(std::string_view encoded) {
  BinaryReader r(encoded);
  SequencedRecord rec;
  SAGA_RETURN_IF_ERROR(r.GetFixed64(&rec.seq));
  SAGA_RETURN_IF_ERROR(r.GetFixed64(&rec.epoch));
  rec.payload.assign(encoded.substr(r.position()));
  return rec;
}

Result<std::vector<SequencedRecord>> ReadWalRecordsFrom(
    const std::string& path, uint64_t min_seq) {
  SAGA_ASSIGN_OR_RETURN(WalReadResult raw, ReadWalRecordsDetailed(path));
  std::vector<SequencedRecord> out;
  for (const std::string& encoded : raw.records) {
    Result<SequencedRecord> rec = DecodeSequencedRecord(encoded);
    if (!rec.ok()) break;  // nothing past damage is trusted
    if (rec->seq >= min_seq) out.push_back(std::move(*rec));
  }
  return out;
}

}  // namespace saga::storage
