#include "storage/wal.h"

#include <array>

#include "common/file_util.h"
#include "common/serialization.h"

namespace saga::storage {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

WalWriter::WalWriter(std::string path) : path_(std::move(path)) {}

Status WalWriter::Open() {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) return Status::IOError("cannot open WAL: " + path_);
  return Status::OK();
}

Status WalWriter::Append(std::string_view record) {
  if (!out_.is_open()) return Status::FailedPrecondition("WAL not open");
  std::string header;
  BinaryWriter w(&header);
  w.PutFixed32(Crc32(record));
  w.PutFixed32(static_cast<uint32_t>(record.size()));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  if (!out_) return Status::IOError("WAL append failed: " + path_);
  bytes_written_ += header.size() + record.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!out_.is_open()) return Status::FailedPrecondition("WAL not open");
  out_.flush();
  if (!out_) return Status::IOError("WAL sync failed: " + path_);
  return Status::OK();
}

Status WalWriter::Reset() {
  if (out_.is_open()) out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) return Status::IOError("cannot truncate WAL: " + path_);
  bytes_written_ = 0;
  return Status::OK();
}

Result<std::vector<std::string>> ReadWalRecords(const std::string& path) {
  std::vector<std::string> records;
  if (!FileExists(path)) return records;
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  BinaryReader r(data);
  while (!r.AtEnd()) {
    uint32_t crc = 0;
    uint32_t len = 0;
    if (!r.GetFixed32(&crc).ok() || !r.GetFixed32(&len).ok()) break;
    if (r.remaining() < len) break;  // torn tail record
    std::string_view payload(data.data() + r.position(), len);
    if (Crc32(payload) != crc) break;  // corrupt tail record
    records.emplace_back(payload);
    SAGA_RETURN_IF_ERROR(r.Skip(len));
  }
  return records;
}

}  // namespace saga::storage
