#ifndef SAGA_STORAGE_MEMTABLE_H_
#define SAGA_STORAGE_MEMTABLE_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace saga::storage {

/// In-memory sorted write buffer. Deletions are tombstones so they can
/// shadow older SSTable entries until compaction drops them.
class MemTable {
 public:
  struct Entry {
    std::string value;
    bool is_tombstone = false;
  };

  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);

  /// nullopt = key unknown here (check older levels); an entry with
  /// is_tombstone = true means "definitely deleted".
  std::optional<Entry> Get(std::string_view key) const;

  size_t ApproximateBytes() const { return approximate_bytes_; }
  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void Clear();

  /// Sorted iteration over all entries including tombstones.
  const std::map<std::string, Entry, std::less<>>& entries() const {
    return table_;
  }

 private:
  std::map<std::string, Entry, std::less<>> table_;
  size_t approximate_bytes_ = 0;
};

}  // namespace saga::storage

#endif  // SAGA_STORAGE_MEMTABLE_H_
