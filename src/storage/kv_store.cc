#include "storage/kv_store.h"

#include <algorithm>
#include <map>

#include "common/file_util.h"
#include "common/serialization.h"

namespace saga::storage {

namespace {
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
constexpr char kSstPrefix[] = "sst_";
}  // namespace

KvStore::KvStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir) {
  return Open(dir, Options());
}

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir,
                                               Options options) {
  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  auto store = std::unique_ptr<KvStore>(new KvStore(dir, options));
  SAGA_RETURN_IF_ERROR(store->Recover());
  return store;
}

std::string KvStore::SstPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu.sst", kSstPrefix,
                static_cast<unsigned long long>(seq));
  return JoinPath(dir_, buf);
}

std::string KvStore::WalPath() const { return JoinPath(dir_, "wal.log"); }

Status KvStore::Recover() {
  SAGA_ASSIGN_OR_RETURN(std::vector<std::string> files, ListDir(dir_));
  for (const auto& name : files) {
    if (name.rfind(kSstPrefix, 0) != 0) continue;
    SAGA_ASSIGN_OR_RETURN(auto reader, SSTableReader::Open(JoinPath(dir_, name)));
    sstables_.push_back(std::move(reader));
    const uint64_t seq =
        std::strtoull(name.c_str() + sizeof(kSstPrefix) - 1, nullptr, 10);
    next_sst_seq_ = std::max(next_sst_seq_, seq + 1);
  }
  // ListDir sorts lexicographically and seq numbers are zero-padded, so
  // sstables_ is already oldest-first.

  if (options_.use_wal) {
    SAGA_ASSIGN_OR_RETURN(std::vector<std::string> records,
                          ReadWalRecords(WalPath()));
    for (const auto& rec : records) {
      BinaryReader r(rec);
      uint8_t op = 0;
      std::string key;
      std::string value;
      SAGA_RETURN_IF_ERROR(r.GetU8(&op));
      SAGA_RETURN_IF_ERROR(r.GetString(&key));
      SAGA_RETURN_IF_ERROR(r.GetString(&value));
      if (op == kOpPut) {
        memtable_.Put(key, value);
      } else if (op == kOpDelete) {
        memtable_.Delete(key);
      } else {
        return Status::Corruption("bad WAL op " + std::to_string(op));
      }
    }
    wal_ = std::make_unique<WalWriter>(WalPath());
    SAGA_RETURN_IF_ERROR(wal_->Open());
  }
  return Status::OK();
}

Status KvStore::LogOp(uint8_t op, std::string_view key,
                      std::string_view value) {
  if (!options_.use_wal) return Status::OK();
  std::string rec;
  BinaryWriter w(&rec);
  w.PutU8(op);
  w.PutString(key);
  w.PutString(value);
  SAGA_RETURN_IF_ERROR(wal_->Append(rec));
  if (options_.sync_every_write) SAGA_RETURN_IF_ERROR(wal_->Sync());
  return Status::OK();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  SAGA_RETURN_IF_ERROR(LogOp(kOpPut, key, value));
  memtable_.Put(key, value);
  ++stats_.puts;
  return MaybeFlush();
}

Status KvStore::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  SAGA_RETURN_IF_ERROR(LogOp(kOpDelete, key, ""));
  memtable_.Delete(key);
  ++stats_.deletes;
  return MaybeFlush();
}

Result<std::string> KvStore::Get(std::string_view key) {
  ++stats_.gets;
  if (auto entry = memtable_.Get(key)) {
    if (entry->is_tombstone) {
      return Status::NotFound(std::string(key));
    }
    return entry->value;
  }
  for (auto it = sstables_.rbegin(); it != sstables_.rend(); ++it) {
    if ((*it)->DefinitelyMissing(key)) {
      ++stats_.bloom_skips;
      continue;
    }
    ++stats_.sstable_probes;
    if (auto entry = (*it)->Get(key)) {
      if (entry->is_tombstone) return Status::NotFound(std::string(key));
      return std::move(entry->value);
    }
  }
  return Status::NotFound(std::string(key));
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::ScanPrefix(
    std::string_view prefix) {
  // Newest-wins merge across memtable and all tables.
  std::map<std::string, MemTable::Entry> merged;
  for (const auto& sst : sstables_) {  // oldest first; later inserts win
    for (auto& e : sst->ScanPrefix(prefix)) {
      merged[std::move(e.key)] =
          MemTable::Entry{std::move(e.value), e.is_tombstone};
    }
  }
  for (const auto& [key, entry] : memtable_.entries()) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      merged[key] = entry;
    }
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [key, entry] : merged) {
    if (!entry.is_tombstone) out.emplace_back(key, std::move(entry.value));
  }
  return out;
}

Status KvStore::MaybeFlush() {
  if (memtable_.ApproximateBytes() < options_.memtable_max_bytes) {
    return Status::OK();
  }
  return Flush();
}

Status KvStore::Flush() {
  if (memtable_.empty()) return Status::OK();
  SSTableBuilder::Options bopts;
  bopts.bits_per_key = options_.bloom_bits_per_key;
  bopts.index_interval = options_.index_interval;
  SSTableBuilder builder(bopts);
  for (const auto& [key, entry] : memtable_.entries()) {
    SAGA_RETURN_IF_ERROR(builder.Add(key, entry.value, entry.is_tombstone));
  }
  const std::string path = SstPath(next_sst_seq_++);
  SAGA_RETURN_IF_ERROR(builder.Finish(path, memtable_.size()));
  SAGA_ASSIGN_OR_RETURN(auto reader, SSTableReader::Open(path));
  stats_.bytes_flushed += reader->file_bytes();
  sstables_.push_back(std::move(reader));
  memtable_.Clear();
  ++stats_.flushes;
  if (options_.use_wal) SAGA_RETURN_IF_ERROR(wal_->Reset());
  if (options_.auto_compact_trigger > 0 &&
      static_cast<int>(sstables_.size()) > options_.auto_compact_trigger) {
    SAGA_RETURN_IF_ERROR(CompactAll());
  }
  return Status::OK();
}

Status KvStore::CompactAll() {
  if (sstables_.size() <= 1) return Status::OK();
  std::map<std::string, MemTable::Entry> merged;
  for (const auto& sst : sstables_) {  // oldest first
    for (auto& e : sst->ScanAll()) {
      merged[std::move(e.key)] =
          MemTable::Entry{std::move(e.value), e.is_tombstone};
    }
  }
  SSTableBuilder::Options bopts;
  bopts.bits_per_key = options_.bloom_bits_per_key;
  bopts.index_interval = options_.index_interval;
  SSTableBuilder builder(bopts);
  for (const auto& [key, entry] : merged) {
    // Tombstones can be dropped entirely: nothing older remains.
    if (entry.is_tombstone) continue;
    SAGA_RETURN_IF_ERROR(builder.Add(key, entry.value, false));
  }
  const std::string path = SstPath(next_sst_seq_++);
  SAGA_RETURN_IF_ERROR(builder.Finish(path, merged.size()));
  SAGA_ASSIGN_OR_RETURN(auto reader, SSTableReader::Open(path));

  std::vector<std::string> old_paths;
  old_paths.reserve(sstables_.size());
  for (const auto& sst : sstables_) old_paths.push_back(sst->path());
  sstables_.clear();
  sstables_.push_back(std::move(reader));
  for (const auto& p : old_paths) {
    SAGA_RETURN_IF_ERROR(RemoveFileIfExists(p));
  }
  ++stats_.compactions;
  return Status::OK();
}

}  // namespace saga::storage
