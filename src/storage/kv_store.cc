#include "storage/kv_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <thread>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/serialization.h"
#include "common/trace.h"

namespace saga::storage {

namespace {

constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
/// Per-record WAL framing overhead: fixed32 crc + fixed32 len.
constexpr uint64_t kWalRecordHeaderBytes = 8;
constexpr char kSstPrefix[] = "sst_";
constexpr char kSstSuffix[] = ".sst";
constexpr char kWalSegPrefix[] = "wal_";
constexpr char kWalSegSuffix[] = ".log";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "saga-manifest-v1";
constexpr char kQuarantineSuffix[] = ".quarantined";

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::optional<uint64_t> ParseDigits(std::string_view digits) {
  if (digits.empty()) return std::nullopt;
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

/// Strict `sst_<digits>.sst` parse; nullopt for anything else (a
/// lenient strtoull here once collided seq 0 with a real table).
std::optional<uint64_t> ParseSstSeq(std::string_view name) {
  constexpr size_t prefix_len = sizeof(kSstPrefix) - 1;
  constexpr size_t suffix_len = sizeof(kSstSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.substr(0, prefix_len) != kSstPrefix) return std::nullopt;
  if (!EndsWith(name, kSstSuffix)) return std::nullopt;
  return ParseDigits(
      name.substr(prefix_len, name.size() - prefix_len - suffix_len));
}

/// Strict `wal_<digits>.log` parse (sealed WAL segments).
std::optional<uint64_t> ParseWalSegSeq(std::string_view name) {
  constexpr size_t prefix_len = sizeof(kWalSegPrefix) - 1;
  constexpr size_t suffix_len = sizeof(kWalSegSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.substr(0, prefix_len) != kWalSegPrefix) return std::nullopt;
  if (!EndsWith(name, kWalSegSuffix)) return std::nullopt;
  return ParseDigits(
      name.substr(prefix_len, name.size() - prefix_len - suffix_len));
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Parses a MANIFEST payload; nullopt when torn/corrupt.
std::optional<std::vector<std::string>> ParseManifest(
    const std::string& data) {
  const size_t crc_pos = data.rfind("crc:");
  if (crc_pos == std::string::npos ||
      (crc_pos > 0 && data[crc_pos - 1] != '\n')) {
    return std::nullopt;
  }
  const uint32_t stored = static_cast<uint32_t>(
      std::strtoul(data.c_str() + crc_pos + 4, nullptr, 10));
  if (Crc32(std::string_view(data.data(), crc_pos)) != stored) {
    return std::nullopt;
  }
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < crc_pos) {
    size_t end = data.find('\n', start);
    if (end == std::string::npos || end > crc_pos) end = crc_pos;
    lines.emplace_back(data.substr(start, end - start));
    start = end + 1;
  }
  if (lines.empty() || lines.front() != kManifestHeader) return std::nullopt;
  lines.erase(lines.begin());
  return lines;
}

}  // namespace

KvStore::KvStore(std::string dir, Options options)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      retry_(options_.retry) {
  mem_ = std::make_shared<MemTable>();
  sv_ = std::make_shared<Superversion>(Superversion{mem_, {}, {}});
  if (options_.enable_read_breaker) {
    read_breaker_ = std::make_unique<CircuitBreaker>(
        options_.read_breaker_stem, options_.read_breaker);
  }
  if (options_.background_maintenance) {
    bg_pool_ = std::make_unique<ThreadPool>(1);
  }
}

KvStore::~KvStore() {
  shutting_down_.store(true, std::memory_order_release);
  // Drains any queued maintenance run and joins the thread before the
  // state it touches is destroyed.
  bg_pool_.reset();
}

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir) {
  return Open(dir, Options());
}

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir,
                                               Options options) {
  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  auto store = std::unique_ptr<KvStore>(new KvStore(dir, std::move(options)));
  SAGA_RETURN_IF_ERROR(store->Recover());
  return store;
}

std::string KvStore::SstPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kSstPrefix,
                static_cast<unsigned long long>(seq), kSstSuffix);
  return JoinPath(dir_, buf);
}

std::string KvStore::WalPath() const { return JoinPath(dir_, "wal.log"); }

std::string KvStore::WalSegmentPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kWalSegPrefix,
                static_cast<unsigned long long>(seq), kWalSegSuffix);
  return JoinPath(dir_, buf);
}

std::string KvStore::ManifestPath() const {
  return JoinPath(dir_, kManifestName);
}

std::shared_ptr<const KvStore::Superversion> KvStore::CurrentSuperversion()
    const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return sv_;
}

void KvStore::PublishLocked(std::shared_ptr<const Superversion> sv) {
  sv_ = std::move(sv);
  SAGA_GAUGE("storage.kv.bg.imm_memtables")
      .Set(static_cast<double>(sv_->imm.size()));
  SAGA_GAUGE("storage.kv.bg.l0_tables")
      .Set(static_cast<double>(sv_->tables.size()));
}

Status KvStore::WriteManifest(
    const std::vector<std::shared_ptr<SSTableReader>>& tables) {
  std::string payload = kManifestHeader;
  payload.push_back('\n');
  for (const auto& sst : tables) {
    payload += BaseName(sst->path());
    payload.push_back('\n');
  }
  payload += "crc:" + std::to_string(Crc32(payload)) + "\n";
  return retry_.Run(
      "kv.manifest",
      [&] { return WriteStringToFile(ManifestPath(), payload, true); },
      options_.metrics);
}

void KvStore::QuarantineFile(const std::string& name) {
  const std::string from = JoinPath(dir_, name);
  const std::string to = from + kQuarantineSuffix;
  (void)RemoveFileIfExists(to);
  // Durable rename: a quarantine that un-happens after a crash would
  // put a known-bad table back in the directory scan.
  Status s = RenameFileDurable(from, to);
  if (!s.ok()) {
    SAGA_LOG(Warning) << "could not quarantine " << from << ": " << s;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->IncrCounter("sst.quarantined");
  }
}

uint64_t KvStore::ReplayWal(const WalReadResult& wal, bool* stopped_early) {
  size_t replayed = 0;
  uint64_t keep_bytes = 0;  // on-disk length of the replayed prefix
  *stopped_early = !wal.clean;
  for (const auto& rec : wal.records) {
    BinaryReader r(rec);
    uint8_t op = 0;
    std::string key;
    std::string value;
    const bool decoded = r.GetU8(&op).ok() && r.GetString(&key).ok() &&
                         r.GetString(&value).ok() &&
                         (op == kOpPut || op == kOpDelete);
    if (!decoded) {
      // Degrade to "stop replay at the bad record": ops before it are
      // kept, everything after is dropped and counted — the store
      // still opens. The caller truncates the log to keep_bytes so
      // future appends never land behind the bad record.
      *stopped_early = true;
      break;
    }
    if (op == kOpPut) {
      mem_->Put(key, value);
    } else {
      mem_->Delete(key);
    }
    ++replayed;
    keep_bytes += kWalRecordHeaderBytes + rec.size();
  }
  recovery_stats_.wal_records_replayed += replayed;
  recovery_stats_.wal_records_dropped += wal.records.size() - replayed;
  uint64_t bytes_dropped = wal.bytes_dropped;
  for (size_t i = replayed; i < wal.records.size(); ++i) {
    bytes_dropped += kWalRecordHeaderBytes + wal.records[i].size();
  }
  recovery_stats_.wal_bytes_dropped += bytes_dropped;
  if (replayed < wal.records.size() || bytes_dropped > 0) {
    SAGA_LOG(Warning) << "WAL replay in " << dir_ << " dropped "
                      << (wal.records.size() - replayed) << " records and "
                      << bytes_dropped << " trailing bytes";
  }
  if (options_.metrics != nullptr) {
    options_.metrics->IncrCounter(
        "wal.records_dropped",
        static_cast<int64_t>(wal.records.size() - replayed));
    options_.metrics->IncrCounter("wal.bytes_dropped",
                                  static_cast<int64_t>(bytes_dropped));
  }
  return keep_bytes;
}

Status KvStore::Recover() {
  RecoveryStats& rs = recovery_stats_;
  SAGA_ASSIGN_OR_RETURN(std::vector<std::string> files, ListDir(dir_));

  // The manifest is the committed table set; absent (fresh dir or
  // pre-manifest layout) we fall back to loading every conforming
  // table. A torn/corrupt manifest is treated as absent.
  std::optional<std::vector<std::string>> manifest;
  if (FileExists(ManifestPath())) {
    auto data = ReadFileToString(ManifestPath());
    if (data.ok()) manifest = ParseManifest(*data);
    if (!manifest.has_value()) {
      SAGA_LOG(Warning) << "corrupt MANIFEST in " << dir_
                        << "; falling back to directory scan";
    }
  }
  rs.manifest_found = manifest.has_value();

  // Classify directory entries. seq numbers from every conforming name
  // (even quarantined ones) advance next_sst_seq_ so new tables never
  // collide with leftovers. Sealed WAL segments (a crash while
  // background maintenance was behind) are collected for replay.
  std::vector<std::pair<uint64_t, std::string>> conforming;
  std::vector<std::pair<uint64_t, std::string>> wal_segments;
  for (const auto& name : files) {
    if (name == kManifestName || name == BaseName(WalPath())) continue;
    if (auto wseq = ParseWalSegSeq(name)) {
      next_wal_seq_ = std::max(next_wal_seq_, *wseq + 1);
      wal_segments.emplace_back(*wseq, name);
      continue;
    }
    if (EndsWith(name, ".tmp")) {
      // Uncommitted build artifact from a crash mid-write.
      if (RemoveFileIfExists(JoinPath(dir_, name)).ok()) {
        ++rs.tmp_files_removed;
      }
      continue;
    }
    if (EndsWith(name, kQuarantineSuffix)) {
      const std::string_view base =
          std::string_view(name).substr(0, name.size() -
                                               (sizeof(kQuarantineSuffix) - 1));
      if (auto seq = ParseSstSeq(base)) {
        next_sst_seq_ = std::max(next_sst_seq_, *seq + 1);
      }
      continue;
    }
    if (name.rfind(kSstPrefix, 0) != 0) continue;
    const auto seq = ParseSstSeq(name);
    if (!seq.has_value()) {
      ++rs.malformed_names_skipped;
      SAGA_LOG(Warning) << "skipping non-conforming table name " << name;
      continue;
    }
    next_sst_seq_ = std::max(next_sst_seq_, *seq + 1);
    conforming.emplace_back(*seq, name);
  }
  std::sort(conforming.begin(), conforming.end());
  std::sort(wal_segments.begin(), wal_segments.end());

  // Live set: manifest order when committed, else seq order.
  std::vector<std::string> live;
  if (manifest.has_value()) {
    std::set<std::string> on_disk;
    for (const auto& [seq, name] : conforming) on_disk.insert(name);
    std::set<std::string> in_manifest(manifest->begin(), manifest->end());
    for (const auto& name : *manifest) {
      if (on_disk.count(name) > 0) {
        live.push_back(name);
      } else {
        ++rs.missing_tables;
        SAGA_LOG(Error) << "manifest table missing on disk: " << name;
      }
    }
    for (const auto& [seq, name] : conforming) {
      if (in_manifest.count(name) == 0) {
        // Orphan: written but never committed (crash between the table
        // rename and the manifest write, or a leftover compaction
        // input). Its contents are either still in the WAL or
        // superseded, so quarantining loses nothing.
        QuarantineFile(name);
        ++rs.orphans_quarantined;
      }
    }
  } else {
    live.reserve(conforming.size());
    for (const auto& [seq, name] : conforming) live.push_back(name);
  }

  std::vector<std::shared_ptr<SSTableReader>> tables;
  for (const auto& name : live) {
    const std::string path = JoinPath(dir_, name);
    std::shared_ptr<SSTableReader> reader;
    Status s = retry_.Run(
        "sst.open",
        [&]() -> Status {
          auto r = SSTableReader::Open(path,
                                       SSTableReader::OpenOptions{
                                           options_.read_verify});
          if (!r.ok()) return r.status();
          reader = std::move(*r);
          return Status::OK();
        },
        options_.metrics);
    if (!s.ok()) {
      SAGA_LOG(Warning) << "quarantining unreadable table " << path << ": "
                        << s;
      QuarantineFile(name);
      ++rs.sstables_quarantined;
      continue;
    }
    tables.push_back(std::move(reader));
    ++rs.sstables_loaded;
  }

  if (options_.use_wal) {
    // Replay sealed segments in seq order, then the active log. The
    // stop-at-damage contract spans files: a damaged record anywhere
    // drops everything after it (later segments included), and the
    // files are repaired so future appends never land behind damage.
    bool damaged = false;
    for (const auto& [seq, name] : wal_segments) {
      const std::string path = JoinPath(dir_, name);
      if (damaged) {
        uint64_t size = 0;
        if (auto fs = FileSize(path); fs.ok()) size = *fs;
        rs.wal_bytes_dropped += size;
        (void)RemoveFileIfExists(path);
        continue;
      }
      SAGA_ASSIGN_OR_RETURN(WalReadResult wal, ReadWalRecordsDetailed(path));
      bool stopped = false;
      const uint64_t keep_bytes = ReplayWal(wal, &stopped);
      if (stopped) {
        damaged = true;
        SAGA_RETURN_IF_ERROR(TruncateFile(path, keep_bytes));
      }
      uint64_t size = keep_bytes;
      if (!stopped) {
        if (auto fs = FileSize(path); fs.ok()) size = *fs;
      }
      wal_segments_.push_back(WalSegment{seq, path, size});
      ++rs.wal_segments_replayed;
    }
    if (damaged) {
      // Nothing past the damage is trusted, the active log included.
      if (FileExists(WalPath())) {
        if (auto fs = FileSize(WalPath()); fs.ok()) {
          rs.wal_bytes_dropped += *fs;
        }
        SAGA_RETURN_IF_ERROR(TruncateFile(WalPath(), 0));
      }
    } else {
      SAGA_ASSIGN_OR_RETURN(WalReadResult wal,
                            ReadWalRecordsDetailed(WalPath()));
      bool stopped = false;
      const uint64_t keep_bytes = ReplayWal(wal, &stopped);
      if (stopped && FileExists(WalPath())) {
        // Cut the torn/undecodable tail before reopening for append;
        // otherwise new records land behind the bad bytes and every
        // future replay stops short of them (silent loss of acked
        // writes).
        SAGA_RETURN_IF_ERROR(TruncateFile(WalPath(), keep_bytes));
      }
    }
    wal_ = std::make_unique<WalWriter>(WalPath());
    SAGA_RETURN_IF_ERROR(wal_->Open());
  }

  // The replayed memtable covers every segment found on disk: its
  // first seal rotates the active log to a seq above them all, so the
  // flush that drains it deletes them too.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    PublishLocked(std::make_shared<Superversion>(
        Superversion{mem_, {}, std::move(tables)}));
  }

  // Commit the healed state so the next open sees one source of truth.
  Status ms = WriteManifest(CurrentSuperversion()->tables);
  if (!ms.ok()) {
    SAGA_LOG(Warning) << "could not write MANIFEST after recovery: " << ms;
  }
  return Status::OK();
}

Status KvStore::LogOp(uint8_t op, std::string_view key,
                      std::string_view value) {
  if (!options_.use_wal) return Status::OK();
  std::string rec;
  BinaryWriter w(&rec);
  w.PutU8(op);
  w.PutString(key);
  w.PutString(value);
  const uint64_t bytes = kWalRecordHeaderBytes + rec.size();
  resource::DiskSpaceGovernor::Reservation res;
  if (options_.governor != nullptr) {
    auto r = options_.governor->Reserve(bytes);
    if (!r.ok()) return r.status();
    res = std::move(*r);
  }
  Status s = wal_->Append(rec);
  if (s.ok() && options_.sync_every_write) s = wal_->Sync();
  if (!s.ok()) {
    // The reservation auto-releases; an ENOSPC the accounting did not
    // predict (real or injected at wal.append / wal.sync / file.fsync)
    // still trips degraded mode.
    NoteWriteFailure(s);
    return s;
  }
  res.Commit(bytes);
  return Status::OK();
}

Status KvStore::CheckWritable() {
  if (options_.governor != nullptr && options_.governor->degraded()) {
    SAGA_COUNTER("storage.kv.write_rejected").Add();
    return Status::StorageExhausted(
        "store is read-only degraded (disk budget exhausted): " + dir_);
  }
  return Status::OK();
}

bool KvStore::SealGatesExceeded(size_t* imm_count, size_t* l0_count) {
  size_t imm = 0;
  size_t l0 = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    imm = sv_->imm.size();
    l0 = sv_->tables.size();
  }
  if (imm_count != nullptr) *imm_count = imm;
  if (l0_count != nullptr) *l0_count = l0;
  return static_cast<int>(imm) >= options_.max_immutable_memtables ||
         (options_.l0_stall_tables > 0 &&
          static_cast<int>(l0) >= options_.l0_stall_tables);
}

Status KvStore::CheckWriteStall() {
  if (!options_.background_maintenance) return Status::OK();
  // Only a full active memtable can stall: WriteImpl leaves it full
  // (instead of sealing) exactly when the gates below are exceeded.
  if (mem_->ApproximateBytes() < options_.memtable_max_bytes) {
    return Status::OK();
  }
  size_t imm_count = 0;
  size_t l0_count = 0;
  if (!SealGatesExceeded(&imm_count, &l0_count)) return Status::OK();
  // Shed before the WAL append so a stalled write is never partially
  // applied, and make sure the drain that unblocks us is in flight.
  ScheduleMaintenance();
  stats_.stall_rejects.fetch_add(1, std::memory_order_relaxed);
  SAGA_COUNTER("storage.kv.bg.stall_rejects").Add();
  const bool imm_stall =
      static_cast<int>(imm_count) >= options_.max_immutable_memtables;
  return Status::ResourceExhausted(
      imm_stall ? "kv write stall: " + std::to_string(imm_count) +
                      " sealed memtables awaiting flush in " + dir_
                : "kv write stall: " + std::to_string(l0_count) +
                      " L0 tables awaiting compaction in " + dir_);
}

Status KvStore::EnsureWalUsable() {
  if (!options_.use_wal) return Status::OK();
  if (wal_->poisoned()) {
    // Fsync-gate recovery: the poisoned fd is never re-fsynced. Every
    // record whose Sync succeeded is in the memtable, so sealing and
    // draining it (table + manifest commit + covered-segment deletion)
    // rebuilds the log without losing anything acknowledged. The drain
    // runs inline even in background mode: new writes must not be
    // acked against a log we cannot fsync.
    SAGA_COUNTER("storage.kv.wal_rebuilds").Add();
    SAGA_LOG(Warning) << "rebuilding fsync-poisoned WAL in " << dir_;
    if (!mem_->empty()) {
      SAGA_RETURN_IF_ERROR(SealActiveMemtableLocked());
      return DrainMaintenance();
    }
    // Nothing acked is in the active log (acked records live in sealed
    // segments or tables), so truncate-in-place is safe.
    return wal_->Reset();
  }
  if (!wal_->is_open()) {
    // A failed rotation left the writer closed; rebuild in place.
    return wal_->Reset();
  }
  return Status::OK();
}

void KvStore::NoteWriteFailure(const Status& s) {
  if (options_.governor != nullptr && s.IsStorageExhausted()) {
    options_.governor->NoteExhausted(s.message());
  }
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  obs::ScopedLatency timer(SAGA_LATENCY("storage.kv.put_ns"));
  return WriteImpl(kOpPut, key, value);
}

Status KvStore::Delete(std::string_view key) {
  return WriteImpl(kOpDelete, key, "");
}

Status KvStore::WriteImpl(uint8_t op, std::string_view key,
                          std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  std::lock_guard<std::mutex> wl(write_mu_);
  SAGA_RETURN_IF_ERROR(CheckWritable());
  SAGA_RETURN_IF_ERROR(EnsureWalUsable());
  SAGA_RETURN_IF_ERROR(CheckWriteStall());
  Status logged = LogOp(op, key, value);
  if (!logged.ok()) {
    if (logged.IsStorageExhausted()) {
      SAGA_COUNTER("storage.kv.write_rejected").Add();
    }
    return logged;
  }
  {
    // Exclusive only for the in-memory apply — never across IO.
    std::unique_lock<std::shared_mutex> ml(mem_mu_);
    if (op == kOpPut) {
      mem_->Put(key, value);
    } else {
      mem_->Delete(key);
    }
  }
  if (op == kOpPut) {
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  }
  SAGA_COUNTER("storage.kv.write_ok").Add();
  if (mem_->ApproximateBytes() < options_.memtable_max_bytes) {
    return Status::OK();
  }
  if (options_.background_maintenance) {
    // Gated seal: when maintenance is behind, leave the memtable full
    // and active (this write was acked; the NEXT one sheds via
    // CheckWriteStall) so the sealed backlog stays bounded.
    if (SealGatesExceeded(nullptr, nullptr)) {
      ScheduleMaintenance();
      return Status::OK();
    }
    SAGA_RETURN_IF_ERROR(SealActiveMemtableLocked());
    ScheduleMaintenance();
    return Status::OK();
  }
  SAGA_RETURN_IF_ERROR(SealActiveMemtableLocked());
  return DrainMaintenance();
}

Status KvStore::SealActiveMemtableLocked() {
  if (mem_->empty()) return Status::OK();
  WalSegment seg;
  if (options_.use_wal) {
    // Always consume a seq, success or not: a half-done rotation (the
    // rename landed, the seal failed later) leaves an orphan segment
    // that recovery replays and a retried seal must never clobber.
    seg.seq = next_wal_seq_++;
    seg.path = WalSegmentPath(seg.seq);
    seg.bytes = wal_->bytes_written();
    SAGA_RETURN_IF_ERROR(wal_->RotateTo(seg.path));
    SAGA_COUNTER("storage.kv.bg.wal_rotations").Add();
  }
  auto fresh = std::make_shared<MemTable>();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto nsv = std::make_shared<Superversion>(*sv_);
    nsv->imm.push_back(ImmMemtable{mem_, seg.seq});
    nsv->mem = fresh;
    if (options_.use_wal) wal_segments_.push_back(seg);
    mem_ = fresh;
    PublishLocked(std::move(nsv));
  }
  return Status::OK();
}

Result<std::string> KvStore::Get(std::string_view key) {
  return GetImpl(key, nullptr);
}

Result<std::string> KvStore::Get(std::string_view key,
                                 const RequestContext& ctx) {
  // Fast-fail while the breaker is open: a read that would stall on a
  // struggling store is worth more to the caller as an immediate
  // Unavailable (serve from fallback, count a miss) than as a timeout.
  if (read_breaker_ != nullptr) {
    SAGA_RETURN_IF_ERROR(read_breaker_->Allow());
  }
  auto result = GetImpl(key, &ctx);
  if (read_breaker_ != nullptr) {
    if (!result.ok() && CircuitBreaker::IsFailure(result.status())) {
      read_breaker_->RecordFailure();
    } else {
      read_breaker_->RecordSuccess();
    }
  }
  return result;
}

Result<std::string> KvStore::GetImpl(std::string_view key,
                                     const RequestContext* ctx) {
  // Span before timer: the timer's destructor runs first, so the
  // latency sample (and its exemplar) records while the get span is
  // still the ambient trace context.
  obs::ScopedSpan span("storage.kv.get");
  obs::ScopedLatency timer(SAGA_LATENCY("storage.kv.get_ns"));
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  if (ctx != nullptr) {
    SAGA_RETURN_IF_ERROR(ctx->Check("storage.kv.get"));
    if (Faults().armed()) {
      // `kv.read` models a slow or failing storage device / replica;
      // the deadline re-check right after surfaces an injected stall as
      // DeadlineExceeded exactly like a real one.
      Status injected = Faults().InjectOp("kv.read");
      if (!injected.ok()) {
        obs::MarkSpanError(injected);
        return injected;
      }
      SAGA_RETURN_IF_ERROR(ctx->Check("storage.kv.get"));
    }
  }
  // Snapshot once, then probe newest-to-oldest. Only the active
  // memtable needs a lock (writers mutate it); the immutable memtables
  // and tables are frozen by construction.
  const std::shared_ptr<const Superversion> sv = CurrentSuperversion();
  std::optional<MemTable::Entry> entry;
  {
    std::shared_lock<std::shared_mutex> ml(mem_mu_);
    entry = sv->mem->Get(key);
  }
  if (!entry.has_value()) {
    for (auto it = sv->imm.rbegin(); it != sv->imm.rend(); ++it) {
      entry = it->mem->Get(key);
      if (entry.has_value()) break;
    }
  }
  if (entry.has_value()) {
    if (entry->is_tombstone) {
      return Status::NotFound(std::string(key));
    }
    return std::move(entry->value);
  }
  for (auto it = sv->tables.rbegin(); it != sv->tables.rend(); ++it) {
    if (ctx != nullptr) {
      SAGA_RETURN_IF_ERROR(ctx->Check("storage.kv.probe"));
    }
    if ((*it)->DefinitelyMissing(key)) {
      stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.sstable_probes.fetch_add(1, std::memory_order_relaxed);
    // Checked probe: a CRC-failing block surfaces as kDataLoss here
    // instead of reading as a miss and falling through to an older
    // (stale) version of the key in a deeper table.
    Result<std::optional<SSTableReader::Entry>> probe = (*it)->GetChecked(key);
    if (!probe.ok()) {
      obs::MarkSpanError(probe.status());
      return probe.status();
    }
    std::optional<SSTableReader::Entry> found = std::move(*probe);
    if (found.has_value()) {
      if (found->is_tombstone) return Status::NotFound(std::string(key));
      return std::move(found->value);
    }
  }
  return Status::NotFound(std::string(key));
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::ScanPrefix(
    std::string_view prefix) {
  // Newest-wins merge across one superversion snapshot: tables oldest
  // first, then sealed memtables, then the active memtable.
  const std::shared_ptr<const Superversion> sv = CurrentSuperversion();
  std::map<std::string, MemTable::Entry> merged;
  for (const auto& sst : sv->tables) {  // oldest first; later inserts win
    SAGA_ASSIGN_OR_RETURN(std::vector<SSTableReader::Entry> entries,
                          sst->ScanPrefixChecked(prefix));
    for (auto& e : entries) {
      merged[std::move(e.key)] =
          MemTable::Entry{std::move(e.value), e.is_tombstone};
    }
  }
  for (const auto& imm : sv->imm) {  // oldest first
    for (const auto& [key, entry] : imm.mem->entries()) {
      if (key.compare(0, prefix.size(), prefix) == 0) {
        merged[key] = entry;
      }
    }
  }
  {
    std::shared_lock<std::shared_mutex> ml(mem_mu_);
    for (const auto& [key, entry] : sv->mem->entries()) {
      if (key.compare(0, prefix.size(), prefix) == 0) {
        merged[key] = entry;
      }
    }
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [key, entry] : merged) {
    if (!entry.is_tombstone) out.emplace_back(key, std::move(entry.value));
  }
  return out;
}

Result<std::shared_ptr<SSTableReader>> KvStore::BuildTableWithRetry(
    const std::string& path,
    const std::map<std::string, MemTable::Entry, std::less<>>& rows,
    bool drop_tombstones) {
  std::shared_ptr<SSTableReader> reader;
  // Corruption of a table we just built (bit rot between write and
  // verify) is healed by rebuilding, so it is retryable here — unlike
  // at recovery time.
  Status s = retry_.Run(
      "sst.build",
      [&]() -> Status {
        SSTableBuilder::Options bopts;
        bopts.bits_per_key = options_.bloom_bits_per_key;
        bopts.index_interval = options_.index_interval;
        SSTableBuilder builder(bopts);
        size_t live_rows = 0;
        for (const auto& [key, entry] : rows) {
          if (entry.is_tombstone && drop_tombstones) continue;
          SAGA_RETURN_IF_ERROR(
              builder.Add(key, entry.value, entry.is_tombstone));
          ++live_rows;
        }
        SAGA_RETURN_IF_ERROR(builder.Finish(path, live_rows));
        auto r = SSTableReader::Open(path,
                                     SSTableReader::OpenOptions{
                                         options_.read_verify});
        if (!r.ok()) {
          (void)RemoveFileIfExists(path);
          return r.status();
        }
        reader = std::move(*r);
        return Status::OK();
      },
      options_.metrics,
      [](const Status& st) {
        return RetryPolicy::IsRetryable(st) || st.IsCorruption();
      });
  if (!s.ok()) return s;
  return reader;
}

Status KvStore::Flush() {
  {
    std::lock_guard<std::mutex> wl(write_mu_);
    SAGA_RETURN_IF_ERROR(SealActiveMemtableLocked());
  }
  return DrainMaintenance();
}

Status KvStore::DrainMaintenance() {
  std::lock_guard<std::mutex> ml(maint_mu_);
  for (;;) {
    bool pending = false;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      pending = !sv_->imm.empty();
    }
    if (!pending) break;
    SAGA_RETURN_IF_ERROR(FlushOneImmLocked());
  }
  if (options_.auto_compact_trigger > 0) {
    size_t tables = 0;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      tables = sv_->tables.size();
    }
    if (static_cast<int>(tables) > options_.auto_compact_trigger) {
      SAGA_RETURN_IF_ERROR(CompactAllLocked());
    }
  }
  return Status::OK();
}

Status KvStore::FlushOneImmLocked() {
  ImmMemtable target;
  bool drop_tombstones = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (sv_->imm.empty()) return Status::OK();
    target = sv_->imm.front();  // flush strictly oldest-first
    drop_tombstones = sv_->tables.empty();
  }
  obs::ScopedSpan span("storage.kv.flush");
  obs::ScopedLatency timer(SAGA_LATENCY("storage.kv.flush_ns"));
  if (Faults().armed()) {
    // `sstable.flush` models the flush's table write hitting the
    // device's ENOSPC (or failing outright) before any bytes land.
    Status injected = Faults().InjectOp("sstable.flush");
    if (!injected.ok()) {
      NoteWriteFailure(injected);
      return injected;
    }
  }
  // Reclaim-class reservation: a flush *enables* reclaim (the covering
  // WAL segments are deleted right after the manifest commit), so it
  // may use the emergency floor — refusing it would wedge a full store
  // with a fat memtable it can never drain. Slack covers
  // index/bloom/footer overhead beyond the raw entry bytes.
  resource::DiskSpaceGovernor::Reservation res;
  if (options_.governor != nullptr) {
    const uint64_t mem_bytes = target.mem->ApproximateBytes();
    const uint64_t estimate = mem_bytes + mem_bytes / 8 + 4096;
    auto r = options_.governor->Reserve(
        estimate, resource::DiskSpaceGovernor::ReservationClass::kReclaim);
    if (!r.ok()) {
      NoteWriteFailure(r.status());
      return r.status();
    }
    res = std::move(*r);
  }
  uint64_t sst_seq = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    sst_seq = next_sst_seq_++;
  }
  const std::string path = SstPath(sst_seq);
  auto built = BuildTableWithRetry(path, target.mem->entries(),
                                   drop_tombstones);
  if (!built.ok()) {
    NoteWriteFailure(built.status());
    return built.status();
  }
  res.Commit((*built)->file_bytes());
  std::vector<std::shared_ptr<SSTableReader>> new_tables;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    new_tables = sv_->tables;
  }
  new_tables.push_back(*built);
  Status ms = WriteManifest(new_tables);
  if (!ms.ok()) {
    // The table is on disk but not committed; undo and leave the
    // sealed memtable + its WAL segments as the source of truth.
    (void)RemoveFileIfExists(path);
    return ms;
  }
  stats_.bytes_flushed.fetch_add((*built)->file_bytes(),
                                 std::memory_order_relaxed);
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  SAGA_COUNTER("storage.kv.bg.flushes").Add();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto nsv = std::make_shared<Superversion>(*sv_);
    nsv->imm.erase(nsv->imm.begin());
    nsv->tables = std::move(new_tables);
    PublishLocked(std::move(nsv));
  }
  // Only after the manifest commit is it safe to drop the covering WAL
  // segments — strictly oldest-first, stopping at the first failure:
  // replay must never find segment N missing while N-1 remains, or an
  // older segment's records would shadow newer flushed data after a
  // crash. A failed removal is retried by the next flush.
  uint64_t wal_freed = 0;
  if (options_.use_wal) {
    for (;;) {
      WalSegment seg;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        if (wal_segments_.empty() ||
            wal_segments_.front().seq > target.wal_seq) {
          break;
        }
        seg = wal_segments_.front();
      }
      uint64_t size = 0;
      if (auto fs = FileSize(seg.path); fs.ok()) size = *fs;
      if (!RemoveFileIfExists(seg.path).ok()) break;
      wal_freed += size;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        wal_segments_.erase(wal_segments_.begin());
      }
    }
  }
  if (options_.governor != nullptr && wal_freed > 0) {
    options_.governor->OnBytesFreed(wal_freed);
  }
  return Status::OK();
}

Status KvStore::CompactAll() {
  std::lock_guard<std::mutex> ml(maint_mu_);
  return CompactAllLocked();
}

Status KvStore::CompactAllLocked() {
  obs::ScopedSpan span("storage.kv.compact");
  // Retry removals a previous compaction could not complete.
  SAGA_ASSIGN_OR_RETURN(uint64_t gc_freed, DropObsoleteFiles());
  if (options_.governor != nullptr && gc_freed > 0) {
    options_.governor->OnBytesFreed(gc_freed);
  }

  // maint_mu_ freezes the table set (flushes append under it too);
  // newer data keeps landing in memtables, which shadow the output.
  std::vector<std::shared_ptr<SSTableReader>> inputs;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    inputs = sv_->tables;
  }
  if (inputs.size() <= 1) return Status::OK();
  if (Faults().armed()) {
    // `compaction.write` models the merged output table hitting ENOSPC
    // (or a plain failure) before the merge writes its first byte.
    Status injected = Faults().InjectOp("compaction.write");
    if (!injected.ok()) {
      NoteWriteFailure(injected);
      return injected;
    }
  }
  // Reclaim-class reservation sized at the sum of the inputs (an upper
  // bound on the merged output): compaction may dip into the emergency
  // floor because it is the mechanism that frees space.
  resource::DiskSpaceGovernor::Reservation res;
  if (options_.governor != nullptr) {
    uint64_t estimate = 4096;
    for (const auto& sst : inputs) estimate += sst->file_bytes();
    auto r = options_.governor->Reserve(
        estimate, resource::DiskSpaceGovernor::ReservationClass::kReclaim);
    if (!r.ok()) {
      NoteWriteFailure(r.status());
      return r.status();
    }
    res = std::move(*r);
  }
  std::map<std::string, MemTable::Entry, std::less<>> merged;
  for (const auto& sst : inputs) {  // oldest first
    // Checked scan: compaction rewrites history, so folding a rotted
    // block in here would launder corruption into a fresh CRC-clean
    // table. Abort instead and leave the inputs for repair.
    SAGA_ASSIGN_OR_RETURN(std::vector<SSTableReader::Entry> entries,
                          sst->ScanAllChecked());
    for (auto& e : entries) {
      merged[std::move(e.key)] =
          MemTable::Entry{std::move(e.value), e.is_tombstone};
    }
  }
  // Tombstones can be dropped entirely: the merged table replaces all
  // older history (memtables hold anything newer and shadow it), and
  // the manifest commit below makes that atomic even across a crash
  // (leftover inputs are quarantined as orphans, never read alongside
  // the merged output).
  for (auto it = merged.begin(); it != merged.end();) {
    it = it->second.is_tombstone ? merged.erase(it) : std::next(it);
  }
  uint64_t sst_seq = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    sst_seq = next_sst_seq_++;
  }
  const std::string path = SstPath(sst_seq);
  auto built = BuildTableWithRetry(path, merged, /*drop_tombstones=*/false);
  if (!built.ok()) {
    NoteWriteFailure(built.status());
    return built.status();
  }
  std::shared_ptr<SSTableReader> reader = std::move(*built);
  res.Commit(reader->file_bytes());

  std::vector<std::pair<std::string, uint64_t>> old_paths;
  old_paths.reserve(inputs.size());
  for (const auto& sst : inputs) {
    old_paths.emplace_back(sst->path(), sst->file_bytes());
  }

  std::vector<std::shared_ptr<SSTableReader>> new_tables;
  new_tables.push_back(std::move(reader));
  Status ms = WriteManifest(new_tables);
  if (!ms.ok()) {
    // Not committed: the old table set stays current (it was never
    // unpublished); the merged file becomes an orphan for the next
    // recovery to quarantine.
    (void)RemoveFileIfExists(path);
    return ms;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto nsv = std::make_shared<Superversion>(*sv_);
    nsv->tables = std::move(new_tables);
    PublishLocked(std::move(nsv));
  }
  uint64_t bytes_freed = 0;
  for (const auto& [p, size] : old_paths) {
    if (RemoveFileIfExists(p).ok()) {
      bytes_freed += size;
    } else {
      // Non-fatal: the compaction is committed; the leftover is
      // unreferenced and will be collected by a later CompactAll (or
      // quarantined at the next open). Live readers holding the old
      // superversion are unaffected either way — tables are fully
      // resident in memory once opened.
      std::lock_guard<std::mutex> lock(state_mu_);
      pending_gc_.push_back(p);
    }
  }
  if (options_.governor != nullptr && bytes_freed > 0) {
    options_.governor->OnBytesFreed(bytes_freed);
  }
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  SAGA_COUNTER("storage.kv.bg.compactions").Add();
  return Status::OK();
}

void KvStore::ScheduleMaintenance() {
  if (bg_pool_ == nullptr) return;
  if (shutting_down_.load(std::memory_order_acquire)) return;
  // Coalesce: one queued run is enough — it drains everything sealed
  // at the time it executes, and a seal racing past it re-schedules.
  if (bg_scheduled_.exchange(true, std::memory_order_acq_rel)) return;
  bg_pool_->Submit([this] { RunBackgroundMaintenance(); });
}

void KvStore::RunBackgroundMaintenance() {
  bg_scheduled_.store(false, std::memory_order_release);
  if (shutting_down_.load(std::memory_order_acquire)) return;
  if (options_.bg_admission) {
    // Admission-ticketed like the scrubber: shed runs back off and
    // retry, but only boundedly — a flush that never runs would wedge
    // writes into permanent stall, so after bg_admit_retries we
    // proceed regardless.
    int attempts = 0;
    while (!options_.bg_admission()) {
      SAGA_COUNTER("storage.kv.bg.sheds").Add();
      if (++attempts > options_.bg_admit_retries) break;
      if (shutting_down_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.bg_shed_backoff_ms));
    }
  }
  obs::ScopedLatency timer(SAGA_LATENCY("storage.kv.bg.run_ns"));
  Status s = DrainMaintenance();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    bg_error_ = s;
  }
  if (!s.ok()) {
    SAGA_COUNTER("storage.kv.bg.failures").Add();
    SAGA_LOG(Warning) << "background maintenance failed in " << dir_ << ": "
                      << s;
  }
}

void KvStore::WaitForMaintenance() {
  if (bg_pool_ == nullptr) return;
  for (;;) {
    bg_pool_->Wait();
    if (!bg_scheduled_.load(std::memory_order_acquire)) return;
    // A submit was in flight between the flag set and the queue push;
    // yield and re-wait.
    std::this_thread::yield();
  }
}

Status KvStore::background_error() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return bg_error_;
}

size_t KvStore::num_sstables() const {
  return CurrentSuperversion()->tables.size();
}

size_t KvStore::memtable_bytes() const {
  const std::shared_ptr<const Superversion> sv = CurrentSuperversion();
  std::shared_lock<std::shared_mutex> ml(mem_mu_);
  return sv->mem->ApproximateBytes();
}

size_t KvStore::imm_memtables() const {
  return CurrentSuperversion()->imm.size();
}

size_t KvStore::pending_gc() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return pending_gc_.size();
}

Result<uint64_t> KvStore::DropObsoleteFiles() {
  std::vector<std::string> pending;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    pending = std::move(pending_gc_);
    pending_gc_.clear();
  }
  std::vector<std::string> still_pending;
  uint64_t freed = 0;
  for (const auto& p : pending) {
    if (!FileExists(p)) continue;
    uint64_t size = 0;
    if (auto fs = FileSize(p); fs.ok()) size = *fs;
    if (RemoveFileIfExists(p).ok()) {
      freed += size;
    } else {
      still_pending.push_back(p);
    }
  }
  if (!still_pending.empty()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (auto& p : still_pending) pending_gc_.push_back(std::move(p));
  }
  return freed;
}

Status KvStore::VerifyTables() const {
  const std::shared_ptr<const Superversion> sv = CurrentSuperversion();
  for (const auto& sst : sv->tables) {
    SAGA_RETURN_IF_ERROR(sst->VerifyChecksums());
  }
  return Status::OK();
}

std::vector<std::string> KvStore::LiveTablePaths() const {
  const std::shared_ptr<const Superversion> sv = CurrentSuperversion();
  std::vector<std::string> paths;
  paths.reserve(sv->tables.size());
  for (const auto& sst : sv->tables) paths.push_back(sst->path());
  return paths;
}

Result<std::vector<std::string>> ReadManifestTables(const std::string& dir) {
  const std::string path = JoinPath(dir, kManifestName);
  if (!FileExists(path)) {
    return Status::NotFound("no MANIFEST in " + dir);
  }
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto tables = ParseManifest(data);
  if (!tables.has_value()) {
    return Status::Corruption("corrupt MANIFEST in " + dir);
  }
  return *tables;
}

}  // namespace saga::storage
