#include "storage/kv_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/serialization.h"
#include "common/trace.h"

namespace saga::storage {

namespace {

constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
/// Per-record WAL framing overhead: fixed32 crc + fixed32 len.
constexpr uint64_t kWalRecordHeaderBytes = 8;
constexpr char kSstPrefix[] = "sst_";
constexpr char kSstSuffix[] = ".sst";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "saga-manifest-v1";
constexpr char kQuarantineSuffix[] = ".quarantined";

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Strict `sst_<digits>.sst` parse; nullopt for anything else (a
/// lenient strtoull here once collided seq 0 with a real table).
std::optional<uint64_t> ParseSstSeq(std::string_view name) {
  constexpr size_t prefix_len = sizeof(kSstPrefix) - 1;
  constexpr size_t suffix_len = sizeof(kSstSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.substr(0, prefix_len) != kSstPrefix) return std::nullopt;
  if (!EndsWith(name, kSstSuffix)) return std::nullopt;
  const std::string_view digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return std::nullopt;
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Parses a MANIFEST payload; nullopt when torn/corrupt.
std::optional<std::vector<std::string>> ParseManifest(
    const std::string& data) {
  const size_t crc_pos = data.rfind("crc:");
  if (crc_pos == std::string::npos ||
      (crc_pos > 0 && data[crc_pos - 1] != '\n')) {
    return std::nullopt;
  }
  const uint32_t stored = static_cast<uint32_t>(
      std::strtoul(data.c_str() + crc_pos + 4, nullptr, 10));
  if (Crc32(std::string_view(data.data(), crc_pos)) != stored) {
    return std::nullopt;
  }
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < crc_pos) {
    size_t end = data.find('\n', start);
    if (end == std::string::npos || end > crc_pos) end = crc_pos;
    lines.emplace_back(data.substr(start, end - start));
    start = end + 1;
  }
  if (lines.empty() || lines.front() != kManifestHeader) return std::nullopt;
  lines.erase(lines.begin());
  return lines;
}

}  // namespace

KvStore::KvStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options), retry_(options.retry) {
  if (options_.enable_read_breaker) {
    read_breaker_ = std::make_unique<CircuitBreaker>(
        options_.read_breaker_stem, options_.read_breaker);
  }
}

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir) {
  return Open(dir, Options());
}

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir,
                                               Options options) {
  SAGA_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  auto store = std::unique_ptr<KvStore>(new KvStore(dir, options));
  SAGA_RETURN_IF_ERROR(store->Recover());
  return store;
}

std::string KvStore::SstPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kSstPrefix,
                static_cast<unsigned long long>(seq), kSstSuffix);
  return JoinPath(dir_, buf);
}

std::string KvStore::WalPath() const { return JoinPath(dir_, "wal.log"); }

std::string KvStore::ManifestPath() const {
  return JoinPath(dir_, kManifestName);
}

Status KvStore::WriteManifest() {
  std::string payload = kManifestHeader;
  payload.push_back('\n');
  for (const auto& sst : sstables_) {
    payload += BaseName(sst->path());
    payload.push_back('\n');
  }
  payload += "crc:" + std::to_string(Crc32(payload)) + "\n";
  return retry_.Run(
      "kv.manifest",
      [&] { return WriteStringToFile(ManifestPath(), payload, true); },
      options_.metrics);
}

void KvStore::QuarantineFile(const std::string& name) {
  const std::string from = JoinPath(dir_, name);
  const std::string to = from + kQuarantineSuffix;
  (void)RemoveFileIfExists(to);
  // Durable rename: a quarantine that un-happens after a crash would
  // put a known-bad table back in the directory scan.
  Status s = RenameFileDurable(from, to);
  if (!s.ok()) {
    SAGA_LOG(Warning) << "could not quarantine " << from << ": " << s;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->IncrCounter("sst.quarantined");
  }
}

uint64_t KvStore::ReplayWal(const WalReadResult& wal) {
  size_t replayed = 0;
  uint64_t keep_bytes = 0;  // on-disk length of the replayed prefix
  for (const auto& rec : wal.records) {
    BinaryReader r(rec);
    uint8_t op = 0;
    std::string key;
    std::string value;
    const bool decoded = r.GetU8(&op).ok() && r.GetString(&key).ok() &&
                         r.GetString(&value).ok() &&
                         (op == kOpPut || op == kOpDelete);
    if (!decoded) {
      // Degrade to "stop replay at the bad record": ops before it are
      // kept, everything after is dropped and counted — the store
      // still opens. The caller truncates the log to keep_bytes so
      // future appends never land behind the bad record.
      break;
    }
    if (op == kOpPut) {
      memtable_.Put(key, value);
    } else {
      memtable_.Delete(key);
    }
    ++replayed;
    keep_bytes += kWalRecordHeaderBytes + rec.size();
  }
  recovery_stats_.wal_records_replayed = replayed;
  recovery_stats_.wal_records_dropped = wal.records.size() - replayed;
  recovery_stats_.wal_bytes_dropped = wal.bytes_dropped;
  for (size_t i = replayed; i < wal.records.size(); ++i) {
    recovery_stats_.wal_bytes_dropped +=
        kWalRecordHeaderBytes + wal.records[i].size();
  }
  if (recovery_stats_.wal_records_dropped > 0 ||
      recovery_stats_.wal_bytes_dropped > 0) {
    SAGA_LOG(Warning) << "WAL replay in " << dir_ << " dropped "
                      << recovery_stats_.wal_records_dropped
                      << " records and " << recovery_stats_.wal_bytes_dropped
                      << " trailing bytes";
  }
  if (options_.metrics != nullptr) {
    options_.metrics->IncrCounter(
        "wal.records_dropped",
        static_cast<int64_t>(recovery_stats_.wal_records_dropped));
    options_.metrics->IncrCounter(
        "wal.bytes_dropped",
        static_cast<int64_t>(recovery_stats_.wal_bytes_dropped));
  }
  return keep_bytes;
}

Status KvStore::Recover() {
  RecoveryStats& rs = recovery_stats_;
  SAGA_ASSIGN_OR_RETURN(std::vector<std::string> files, ListDir(dir_));

  // The manifest is the committed table set; absent (fresh dir or
  // pre-manifest layout) we fall back to loading every conforming
  // table. A torn/corrupt manifest is treated as absent.
  std::optional<std::vector<std::string>> manifest;
  if (FileExists(ManifestPath())) {
    auto data = ReadFileToString(ManifestPath());
    if (data.ok()) manifest = ParseManifest(*data);
    if (!manifest.has_value()) {
      SAGA_LOG(Warning) << "corrupt MANIFEST in " << dir_
                        << "; falling back to directory scan";
    }
  }
  rs.manifest_found = manifest.has_value();

  // Classify directory entries. seq numbers from every conforming name
  // (even quarantined ones) advance next_sst_seq_ so new tables never
  // collide with leftovers.
  std::vector<std::pair<uint64_t, std::string>> conforming;
  for (const auto& name : files) {
    if (name == kManifestName || name == BaseName(WalPath())) continue;
    if (EndsWith(name, ".tmp")) {
      // Uncommitted build artifact from a crash mid-write.
      if (RemoveFileIfExists(JoinPath(dir_, name)).ok()) {
        ++rs.tmp_files_removed;
      }
      continue;
    }
    if (EndsWith(name, kQuarantineSuffix)) {
      const std::string_view base =
          std::string_view(name).substr(0, name.size() -
                                               (sizeof(kQuarantineSuffix) - 1));
      if (auto seq = ParseSstSeq(base)) {
        next_sst_seq_ = std::max(next_sst_seq_, *seq + 1);
      }
      continue;
    }
    if (name.rfind(kSstPrefix, 0) != 0) continue;
    const auto seq = ParseSstSeq(name);
    if (!seq.has_value()) {
      ++rs.malformed_names_skipped;
      SAGA_LOG(Warning) << "skipping non-conforming table name " << name;
      continue;
    }
    next_sst_seq_ = std::max(next_sst_seq_, *seq + 1);
    conforming.emplace_back(*seq, name);
  }
  std::sort(conforming.begin(), conforming.end());

  // Live set: manifest order when committed, else seq order.
  std::vector<std::string> live;
  if (manifest.has_value()) {
    std::set<std::string> on_disk;
    for (const auto& [seq, name] : conforming) on_disk.insert(name);
    std::set<std::string> in_manifest(manifest->begin(), manifest->end());
    for (const auto& name : *manifest) {
      if (on_disk.count(name) > 0) {
        live.push_back(name);
      } else {
        ++rs.missing_tables;
        SAGA_LOG(Error) << "manifest table missing on disk: " << name;
      }
    }
    for (const auto& [seq, name] : conforming) {
      if (in_manifest.count(name) == 0) {
        // Orphan: written but never committed (crash between the table
        // rename and the manifest write, or a leftover compaction
        // input). Its contents are either still in the WAL or
        // superseded, so quarantining loses nothing.
        QuarantineFile(name);
        ++rs.orphans_quarantined;
      }
    }
  } else {
    live.reserve(conforming.size());
    for (const auto& [seq, name] : conforming) live.push_back(name);
  }

  for (const auto& name : live) {
    const std::string path = JoinPath(dir_, name);
    std::shared_ptr<SSTableReader> reader;
    Status s = retry_.Run(
        "sst.open",
        [&]() -> Status {
          auto r = SSTableReader::Open(path,
                                       SSTableReader::OpenOptions{
                                           options_.read_verify});
          if (!r.ok()) return r.status();
          reader = std::move(*r);
          return Status::OK();
        },
        options_.metrics);
    if (!s.ok()) {
      SAGA_LOG(Warning) << "quarantining unreadable table " << path << ": "
                        << s;
      QuarantineFile(name);
      ++rs.sstables_quarantined;
      continue;
    }
    sstables_.push_back(std::move(reader));
    ++rs.sstables_loaded;
  }

  if (options_.use_wal) {
    SAGA_ASSIGN_OR_RETURN(WalReadResult wal,
                          ReadWalRecordsDetailed(WalPath()));
    const uint64_t keep_bytes = ReplayWal(wal);
    if (recovery_stats_.wal_bytes_dropped > 0 && FileExists(WalPath())) {
      // Cut the torn/undecodable tail before reopening for append;
      // otherwise new records land behind the bad bytes and every
      // future replay stops short of them (silent loss of acked
      // writes).
      SAGA_RETURN_IF_ERROR(TruncateFile(WalPath(), keep_bytes));
    }
    wal_ = std::make_unique<WalWriter>(WalPath());
    SAGA_RETURN_IF_ERROR(wal_->Open());
  }

  // Commit the healed state so the next open sees one source of truth.
  Status ms = WriteManifest();
  if (!ms.ok()) {
    SAGA_LOG(Warning) << "could not write MANIFEST after recovery: " << ms;
  }
  return Status::OK();
}

Status KvStore::LogOp(uint8_t op, std::string_view key,
                      std::string_view value) {
  if (!options_.use_wal) return Status::OK();
  std::string rec;
  BinaryWriter w(&rec);
  w.PutU8(op);
  w.PutString(key);
  w.PutString(value);
  const uint64_t bytes = kWalRecordHeaderBytes + rec.size();
  resource::DiskSpaceGovernor::Reservation res;
  if (options_.governor != nullptr) {
    auto r = options_.governor->Reserve(bytes);
    if (!r.ok()) return r.status();
    res = std::move(*r);
  }
  Status s = wal_->Append(rec);
  if (s.ok() && options_.sync_every_write) s = wal_->Sync();
  if (!s.ok()) {
    // The reservation auto-releases; an ENOSPC the accounting did not
    // predict (real or injected at wal.append / wal.sync / file.fsync)
    // still trips degraded mode.
    NoteWriteFailure(s);
    return s;
  }
  res.Commit(bytes);
  return Status::OK();
}

Status KvStore::CheckWritable() {
  if (options_.governor != nullptr && options_.governor->degraded()) {
    SAGA_COUNTER("storage.kv.write_rejected").Add();
    return Status::StorageExhausted(
        "store is read-only degraded (disk budget exhausted): " + dir_);
  }
  return Status::OK();
}

Status KvStore::EnsureWalUsable() {
  if (!options_.use_wal || !wal_->poisoned()) return Status::OK();
  // Fsync-gate recovery: the poisoned fd is never re-fsynced. Every
  // record whose Sync succeeded is in the memtable, so flushing the
  // memtable (table + manifest commit + WAL truncate on a fresh fd)
  // rebuilds the log without losing anything acknowledged.
  SAGA_COUNTER("storage.kv.wal_rebuilds").Add();
  SAGA_LOG(Warning) << "rebuilding fsync-poisoned WAL in " << dir_;
  if (!memtable_.empty()) return Flush();
  return wal_->Reset();
}

void KvStore::NoteWriteFailure(const Status& s) {
  if (options_.governor != nullptr && s.IsStorageExhausted()) {
    options_.governor->NoteExhausted(s.message());
  }
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  obs::ScopedLatency timer(SAGA_LATENCY("storage.kv.put_ns"));
  SAGA_RETURN_IF_ERROR(CheckWritable());
  SAGA_RETURN_IF_ERROR(EnsureWalUsable());
  Status logged = LogOp(kOpPut, key, value);
  if (!logged.ok()) {
    if (logged.IsStorageExhausted()) {
      SAGA_COUNTER("storage.kv.write_rejected").Add();
    }
    return logged;
  }
  memtable_.Put(key, value);
  ++stats_.puts;
  SAGA_COUNTER("storage.kv.write_ok").Add();
  return MaybeFlush();
}

Status KvStore::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  SAGA_RETURN_IF_ERROR(CheckWritable());
  SAGA_RETURN_IF_ERROR(EnsureWalUsable());
  Status logged = LogOp(kOpDelete, key, "");
  if (!logged.ok()) {
    if (logged.IsStorageExhausted()) {
      SAGA_COUNTER("storage.kv.write_rejected").Add();
    }
    return logged;
  }
  memtable_.Delete(key);
  ++stats_.deletes;
  SAGA_COUNTER("storage.kv.write_ok").Add();
  return MaybeFlush();
}

Result<std::string> KvStore::Get(std::string_view key) {
  return GetImpl(key, nullptr);
}

Result<std::string> KvStore::Get(std::string_view key,
                                 const RequestContext& ctx) {
  // Fast-fail while the breaker is open: a read that would stall on a
  // struggling store is worth more to the caller as an immediate
  // Unavailable (serve from fallback, count a miss) than as a timeout.
  if (read_breaker_ != nullptr) {
    SAGA_RETURN_IF_ERROR(read_breaker_->Allow());
  }
  auto result = GetImpl(key, &ctx);
  if (read_breaker_ != nullptr) {
    if (!result.ok() && CircuitBreaker::IsFailure(result.status())) {
      read_breaker_->RecordFailure();
    } else {
      read_breaker_->RecordSuccess();
    }
  }
  return result;
}

Result<std::string> KvStore::GetImpl(std::string_view key,
                                     const RequestContext* ctx) {
  // Span before timer: the timer's destructor runs first, so the
  // latency sample (and its exemplar) records while the get span is
  // still the ambient trace context.
  obs::ScopedSpan span("storage.kv.get");
  obs::ScopedLatency timer(SAGA_LATENCY("storage.kv.get_ns"));
  ++stats_.gets;
  if (ctx != nullptr) {
    SAGA_RETURN_IF_ERROR(ctx->Check("storage.kv.get"));
    if (Faults().armed()) {
      // `kv.read` models a slow or failing storage device / replica;
      // the deadline re-check right after surfaces an injected stall as
      // DeadlineExceeded exactly like a real one.
      Status injected = Faults().InjectOp("kv.read");
      if (!injected.ok()) {
        obs::MarkSpanError(injected);
        return injected;
      }
      SAGA_RETURN_IF_ERROR(ctx->Check("storage.kv.get"));
    }
  }
  if (auto entry = memtable_.Get(key)) {
    if (entry->is_tombstone) {
      return Status::NotFound(std::string(key));
    }
    return entry->value;
  }
  for (auto it = sstables_.rbegin(); it != sstables_.rend(); ++it) {
    if (ctx != nullptr) {
      SAGA_RETURN_IF_ERROR(ctx->Check("storage.kv.probe"));
    }
    if ((*it)->DefinitelyMissing(key)) {
      ++stats_.bloom_skips;
      continue;
    }
    ++stats_.sstable_probes;
    // Checked probe: a CRC-failing block surfaces as kDataLoss here
    // instead of reading as a miss and falling through to an older
    // (stale) version of the key in a deeper table.
    Result<std::optional<SSTableReader::Entry>> probe = (*it)->GetChecked(key);
    if (!probe.ok()) {
      obs::MarkSpanError(probe.status());
      return probe.status();
    }
    std::optional<SSTableReader::Entry> entry = std::move(*probe);
    if (entry.has_value()) {
      if (entry->is_tombstone) return Status::NotFound(std::string(key));
      return std::move(entry->value);
    }
  }
  return Status::NotFound(std::string(key));
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::ScanPrefix(
    std::string_view prefix) {
  // Newest-wins merge across memtable and all tables.
  std::map<std::string, MemTable::Entry> merged;
  for (const auto& sst : sstables_) {  // oldest first; later inserts win
    SAGA_ASSIGN_OR_RETURN(std::vector<SSTableReader::Entry> entries,
                          sst->ScanPrefixChecked(prefix));
    for (auto& e : entries) {
      merged[std::move(e.key)] =
          MemTable::Entry{std::move(e.value), e.is_tombstone};
    }
  }
  for (const auto& [key, entry] : memtable_.entries()) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      merged[key] = entry;
    }
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [key, entry] : merged) {
    if (!entry.is_tombstone) out.emplace_back(key, std::move(entry.value));
  }
  return out;
}

Status KvStore::MaybeFlush() {
  if (memtable_.ApproximateBytes() < options_.memtable_max_bytes) {
    return Status::OK();
  }
  return Flush();
}

Result<std::shared_ptr<SSTableReader>> KvStore::BuildTableWithRetry(
    const std::string& path,
    const std::map<std::string, MemTable::Entry, std::less<>>& rows) {
  std::shared_ptr<SSTableReader> reader;
  // Corruption of a table we just built (bit rot between write and
  // verify) is healed by rebuilding, so it is retryable here — unlike
  // at recovery time.
  Status s = retry_.Run(
      "sst.build",
      [&]() -> Status {
        SSTableBuilder::Options bopts;
        bopts.bits_per_key = options_.bloom_bits_per_key;
        bopts.index_interval = options_.index_interval;
        SSTableBuilder builder(bopts);
        size_t live_rows = 0;
        for (const auto& [key, entry] : rows) {
          if (entry.is_tombstone && sstables_.empty()) continue;
          SAGA_RETURN_IF_ERROR(
              builder.Add(key, entry.value, entry.is_tombstone));
          ++live_rows;
        }
        SAGA_RETURN_IF_ERROR(builder.Finish(path, live_rows));
        auto r = SSTableReader::Open(path,
                                     SSTableReader::OpenOptions{
                                         options_.read_verify});
        if (!r.ok()) {
          (void)RemoveFileIfExists(path);
          return r.status();
        }
        reader = std::move(*r);
        return Status::OK();
      },
      options_.metrics,
      [](const Status& st) {
        return RetryPolicy::IsRetryable(st) || st.IsCorruption();
      });
  if (!s.ok()) return s;
  return reader;
}

Status KvStore::Flush() {
  if (memtable_.empty()) return Status::OK();
  obs::ScopedSpan span("storage.kv.flush");
  obs::ScopedLatency timer(SAGA_LATENCY("storage.kv.flush_ns"));
  if (Faults().armed()) {
    // `sstable.flush` models the flush's table write hitting the
    // device's ENOSPC (or failing outright) before any bytes land.
    Status injected = Faults().InjectOp("sstable.flush");
    if (!injected.ok()) {
      NoteWriteFailure(injected);
      return injected;
    }
  }
  // Reclaim-class reservation: a flush *enables* reclaim (the WAL is
  // truncated right after the manifest commit), so it may use the
  // emergency floor — refusing it would wedge a full store with a fat
  // memtable it can never drain. Slack covers index/bloom/footer
  // overhead beyond the raw entry bytes.
  resource::DiskSpaceGovernor::Reservation res;
  if (options_.governor != nullptr) {
    const uint64_t estimate =
        memtable_.ApproximateBytes() + memtable_.ApproximateBytes() / 8 + 4096;
    auto r = options_.governor->Reserve(
        estimate, resource::DiskSpaceGovernor::ReservationClass::kReclaim);
    if (!r.ok()) {
      NoteWriteFailure(r.status());
      return r.status();
    }
    res = std::move(*r);
  }
  const std::string path = SstPath(next_sst_seq_++);
  auto built = BuildTableWithRetry(path, memtable_.entries());
  if (!built.ok()) {
    NoteWriteFailure(built.status());
    return built.status();
  }
  sstables_.push_back(std::move(*built));
  res.Commit(sstables_.back()->file_bytes());
  Status ms = WriteManifest();
  if (!ms.ok()) {
    // The table is on disk but not committed; undo and leave the
    // memtable + WAL as the source of truth.
    sstables_.pop_back();
    (void)RemoveFileIfExists(path);
    return ms;
  }
  stats_.bytes_flushed += sstables_.back()->file_bytes();
  memtable_.Clear();
  ++stats_.flushes;
  // Only after the manifest commit is it safe to drop the WAL.
  const uint64_t wal_bytes = options_.use_wal ? wal_->bytes_written() : 0;
  if (options_.use_wal) SAGA_RETURN_IF_ERROR(wal_->Reset());
  if (options_.governor != nullptr && wal_bytes > 0) {
    options_.governor->OnBytesFreed(wal_bytes);
  }
  if (options_.auto_compact_trigger > 0 &&
      static_cast<int>(sstables_.size()) > options_.auto_compact_trigger) {
    SAGA_RETURN_IF_ERROR(CompactAll());
  }
  return Status::OK();
}

Status KvStore::CompactAll() {
  obs::ScopedSpan span("storage.kv.compact");
  // Retry removals a previous compaction could not complete.
  SAGA_ASSIGN_OR_RETURN(uint64_t gc_freed, DropObsoleteFiles());
  if (options_.governor != nullptr && gc_freed > 0) {
    options_.governor->OnBytesFreed(gc_freed);
  }

  if (sstables_.size() <= 1) return Status::OK();
  if (Faults().armed()) {
    // `compaction.write` models the merged output table hitting ENOSPC
    // (or a plain failure) before the merge writes its first byte.
    Status injected = Faults().InjectOp("compaction.write");
    if (!injected.ok()) {
      NoteWriteFailure(injected);
      return injected;
    }
  }
  // Reclaim-class reservation sized at the sum of the inputs (an upper
  // bound on the merged output): compaction may dip into the emergency
  // floor because it is the mechanism that frees space.
  resource::DiskSpaceGovernor::Reservation res;
  if (options_.governor != nullptr) {
    uint64_t estimate = 4096;
    for (const auto& sst : sstables_) estimate += sst->file_bytes();
    auto r = options_.governor->Reserve(
        estimate, resource::DiskSpaceGovernor::ReservationClass::kReclaim);
    if (!r.ok()) {
      NoteWriteFailure(r.status());
      return r.status();
    }
    res = std::move(*r);
  }
  std::map<std::string, MemTable::Entry, std::less<>> merged;
  for (const auto& sst : sstables_) {  // oldest first
    // Checked scan: compaction rewrites history, so folding a rotted
    // block in here would launder corruption into a fresh CRC-clean
    // table. Abort instead and leave the inputs for repair.
    SAGA_ASSIGN_OR_RETURN(std::vector<SSTableReader::Entry> entries,
                          sst->ScanAllChecked());
    for (auto& e : entries) {
      merged[std::move(e.key)] =
          MemTable::Entry{std::move(e.value), e.is_tombstone};
    }
  }
  // Tombstones can be dropped entirely: the merged table replaces all
  // older history, and the manifest commit below makes that atomic
  // even across a crash (leftover inputs are quarantined as orphans,
  // never read alongside the merged output).
  for (auto it = merged.begin(); it != merged.end();) {
    it = it->second.is_tombstone ? merged.erase(it) : std::next(it);
  }
  const std::string path = SstPath(next_sst_seq_++);
  auto built = BuildTableWithRetry(path, merged);
  if (!built.ok()) {
    NoteWriteFailure(built.status());
    return built.status();
  }
  std::shared_ptr<SSTableReader> reader = std::move(*built);
  res.Commit(reader->file_bytes());

  std::vector<std::pair<std::string, uint64_t>> old_paths;
  old_paths.reserve(sstables_.size());
  for (const auto& sst : sstables_) {
    old_paths.emplace_back(sst->path(), sst->file_bytes());
  }

  std::vector<std::shared_ptr<SSTableReader>> new_tables;
  new_tables.push_back(std::move(reader));
  std::swap(sstables_, new_tables);
  Status ms = WriteManifest();
  if (!ms.ok()) {
    // Not committed: keep serving the old table set; the merged file
    // becomes an orphan for the next recovery to quarantine.
    std::swap(sstables_, new_tables);
    (void)RemoveFileIfExists(path);
    return ms;
  }
  uint64_t bytes_freed = 0;
  for (const auto& [p, size] : old_paths) {
    if (RemoveFileIfExists(p).ok()) {
      bytes_freed += size;
    } else {
      // Non-fatal: the compaction is committed; the leftover is
      // unreferenced and will be collected by a later CompactAll (or
      // quarantined at the next open).
      pending_gc_.push_back(p);
    }
  }
  if (options_.governor != nullptr && bytes_freed > 0) {
    options_.governor->OnBytesFreed(bytes_freed);
  }
  ++stats_.compactions;
  return Status::OK();
}

Result<uint64_t> KvStore::DropObsoleteFiles() {
  std::vector<std::string> still_pending;
  uint64_t freed = 0;
  for (const auto& p : pending_gc_) {
    if (!FileExists(p)) continue;
    uint64_t size = 0;
    if (auto fs = FileSize(p); fs.ok()) size = *fs;
    if (RemoveFileIfExists(p).ok()) {
      freed += size;
    } else {
      still_pending.push_back(p);
    }
  }
  pending_gc_ = std::move(still_pending);
  return freed;
}

Status KvStore::VerifyTables() const {
  for (const auto& sst : sstables_) {
    SAGA_RETURN_IF_ERROR(sst->VerifyChecksums());
  }
  return Status::OK();
}

std::vector<std::string> KvStore::LiveTablePaths() const {
  std::vector<std::string> paths;
  paths.reserve(sstables_.size());
  for (const auto& sst : sstables_) paths.push_back(sst->path());
  return paths;
}

Result<std::vector<std::string>> ReadManifestTables(const std::string& dir) {
  const std::string path = JoinPath(dir, kManifestName);
  if (!FileExists(path)) {
    return Status::NotFound("no MANIFEST in " + dir);
  }
  SAGA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto tables = ParseManifest(data);
  if (!tables.has_value()) {
    return Status::Corruption("corrupt MANIFEST in " + dir);
  }
  return *tables;
}

}  // namespace saga::storage
