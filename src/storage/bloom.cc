#include "storage/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace saga::storage {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
  // k = ln(2) * bits/key, clamped to a sane range.
  num_probes_ = std::clamp(
      static_cast<int>(std::round(bits_per_key * 0.69)), 1, 30);
}

BloomFilter BloomFilter::FromBytes(std::string_view bytes) {
  BloomFilter f;
  if (bytes.empty()) {
    f.bits_.assign(8, 0);
    f.num_probes_ = 1;
    return f;
  }
  f.num_probes_ = static_cast<uint8_t>(bytes[0]);
  if (f.num_probes_ < 1) f.num_probes_ = 1;
  f.bits_.assign(bytes.begin() + 1, bytes.end());
  if (f.bits_.empty()) f.bits_.assign(8, 0);
  return f;
}

void BloomFilter::Add(std::string_view key) {
  const uint64_t h1 = Hash64(key);
  const uint64_t h2 = Mix64(h1);
  const size_t num_bits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  const uint64_t h1 = Hash64(key);
  const uint64_t h2 = Mix64(h1);
  const size_t num_bits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.reserve(1 + bits_.size());
  out.push_back(static_cast<char>(num_probes_));
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  return out;
}

}  // namespace saga::storage
