// Quickstart: build a small open-domain KG, train embeddings, and serve
// fact ranking / related entities / fact verification queries.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "embedding/embedding_store.h"
#include "embedding/evaluator.h"
#include "embedding/trainer.h"
#include "graph_engine/view.h"
#include "kg/kg_generator.h"
#include "serving/embedding_service.h"
#include "serving/fact_ranker.h"
#include "serving/fact_verifier.h"
#include "serving/related_entities.h"

int main() {
  using namespace saga;

  // 1. Generate a synthetic open-domain KG (people, movies, teams...).
  kg::KgGeneratorConfig config;
  config.num_persons = 400;
  kg::GeneratedKg gen = kg::GenerateKg(config);
  std::printf("KG: %zu entities, %zu triples, %zu predicates\n",
              gen.kg.num_entities(), gen.kg.num_triples(),
              gen.kg.ontology().num_predicates());

  // 2. Build a filtered training view (drops literals, noisy facts).
  graph_engine::ViewDefinition def;
  def.min_confidence = 0.4;
  auto view = graph_engine::GraphView::Build(gen.kg, def);
  std::printf("View: %zu edges over %zu entities, %zu relations\n",
              view.edges().size(), view.num_entities(),
              view.num_relations());

  // 3. Train DistMult embeddings.
  embedding::TrainingConfig tc;
  tc.model = embedding::ModelKind::kDistMult;
  tc.dim = 32;
  tc.epochs = 8;
  tc.holdout_fraction = 0.05;
  embedding::InMemoryTrainer trainer(tc);
  auto emb = trainer.Train(view);
  std::printf("Training: loss %.3f -> %.3f over %zu epochs\n",
              emb.epoch_losses.front(), emb.epoch_losses.back(),
              emb.epoch_losses.size());
  Rng rng(1);
  std::printf("Held-out verification AUC: %.3f\n",
              embedding::EvaluateVerificationAuc(emb, view,
                                                 emb.holdout_edges, &rng));

  // 4. Serve related entities.
  serving::EmbeddingService service(
      embedding::EmbeddingStore::FromTrained(emb, view), &gen.kg);
  serving::RelatedEntitiesService related(&gen.kg, &view, &service);

  const kg::EntityId probe = view.global_entity(42);
  std::printf("\nRelated to \"%s\":\n",
              gen.kg.catalog().name(probe).c_str());
  auto hits = related.Related(probe, 5);
  if (hits.ok()) {
    for (const auto& [e, score] : *hits) {
      std::printf("  %-30s  %.4f\n", gen.kg.catalog().name(e).c_str(),
                  score);
    }
  }

  // 5. Rank a multi-valued fact ("what is the occupation of X?").
  serving::FactRanker ranker(&gen.kg, &view, &emb);
  for (const auto& rec : gen.kg.catalog().records()) {
    const auto objects = gen.kg.ObjectsOf(rec.id, gen.schema.occupation);
    if (objects.size() < 2) continue;
    std::printf("\nOccupations of \"%s\" (ranked):\n",
                rec.canonical_name.c_str());
    for (const auto& fact : ranker.Rank(rec.id, gen.schema.occupation)) {
      std::printf("  %-24s  score=%.3f (pop=%.3f)\n",
                  fact.object.is_entity()
                      ? gen.kg.catalog().name(fact.object.entity()).c_str()
                      : fact.object.ToString().c_str(),
                  fact.score, fact.popularity);
    }
    break;
  }

  // 6. Verify a fact.
  serving::FactVerifier verifier(&view, &emb);
  embedding::NegativeSampler sampler(view, true);
  std::vector<graph_engine::ViewEdge> pos(view.edges().begin(),
                                          view.edges().begin() + 200);
  std::vector<graph_engine::ViewEdge> neg;
  bool tail = true;
  for (const auto& e : pos) {
    neg.push_back(sampler.Corrupt(e, tail, &rng));
    tail = !tail;
  }
  verifier.Calibrate(pos, neg);
  const auto& true_edge = view.edges()[300];
  const auto verdict = verifier.Verify(
      view.global_entity(true_edge.src),
      view.global_relation(true_edge.relation),
      view.global_entity(true_edge.dst));
  std::printf("\nFact verification of a true edge: score=%.3f plausible=%s\n",
              verdict.score, verdict.plausible ? "yes" : "no");
  return 0;
}
