// "Linking the Web" (§3.1): generate a synthetic Web corpus from the
// KG, annotate every page with entity links, and extend the KG with
// entity -> document edges. Then run an incremental pass after 10% of
// the Web changes.
//
//   ./build/examples/link_the_web

#include <cstdio>

#include "annotation/annotator.h"
#include "annotation/web_linker.h"
#include "common/metrics.h"
#include "kg/kg_generator.h"
#include "websim/corpus_generator.h"

int main() {
  using namespace saga;

  kg::KgGeneratorConfig config;
  config.num_persons = 300;
  kg::GeneratedKg gen = kg::GenerateKg(config);
  std::printf("KG: %zu entities, %zu triples\n", gen.kg.num_entities(),
              gen.kg.num_triples());

  websim::CorpusGeneratorConfig cc;
  cc.num_news_pages = 200;
  cc.num_noise_pages = 80;
  websim::WebCorpus corpus = websim::GenerateCorpus(gen, cc);
  std::printf("Web corpus: %zu documents\n", corpus.size());

  annotation::Annotator annotator(&gen.kg, nullptr);
  annotation::IncrementalWebLinker linker(&annotator, &gen.kg);

  Stopwatch sw;
  const auto first = linker.AnnotateCorpus(corpus);
  const double first_s = sw.ElapsedSeconds();
  std::printf(
      "Full pass:        %zu docs annotated, %zu annotations, "
      "%.2f docs/s\n",
      first.docs_annotated, first.annotations,
      static_cast<double>(first.docs_annotated) / first_s);
  std::printf("KG now holds %zu triples (%zu entity->doc edges)\n",
              gen.kg.num_triples(),
              linker.index().num_entity_doc_edges());

  // Show one annotated document.
  for (websim::DocId id = 0; id < corpus.size(); ++id) {
    const auto* ann = linker.index().ForDoc(id);
    if (ann == nullptr || ann->annotations.size() < 4) continue;
    const auto& doc = corpus.doc(id);
    std::printf("\nExample: %s\n  \"%.100s...\"\n", doc.url.c_str(),
                doc.body.c_str());
    for (size_t i = 0; i < std::min<size_t>(5, ann->annotations.size());
         ++i) {
      const auto& a = ann->annotations[i];
      std::printf("  [%zu,%zu) \"%s\" -> %s (type %s, score %.2f)\n",
                  a.mention.begin, a.mention.end,
                  a.mention.surface.c_str(),
                  gen.kg.catalog().name(a.entity).c_str(),
                  a.type.valid()
                      ? gen.kg.ontology().type_name(a.type).c_str()
                      : "?",
                  a.score);
    }
    break;
  }

  // The Web changes; only re-annotate what changed.
  Rng rng(7);
  const auto changed = websim::MutateCorpus(&corpus, 0.1, &rng);
  sw.Reset();
  const auto incremental = linker.AnnotateCorpus(corpus);
  const double incr_s = sw.ElapsedSeconds();
  std::printf(
      "\nIncremental pass: %zu changed docs re-annotated, %zu skipped, "
      "%.1fx faster than full\n",
      incremental.docs_annotated, incremental.docs_skipped,
      first_s / std::max(incr_s, 1e-9));
  (void)changed;
  return 0;
}
