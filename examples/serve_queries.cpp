// Question answering over the KG — the paper's §1 motivating example:
// a query like "benicio del toro movies" is semantically annotated
// ("benicio del toro" -> entity id, "movies" -> relation), retrieved
// from the graph, and importance-ranked.
//
//   ./build/examples/serve_queries

#include <cstdio>

#include "annotation/query_answering.h"
#include "common/string_util.h"
#include "embedding/trainer.h"
#include "graph_engine/view.h"
#include "kg/kg_generator.h"
#include "serving/fact_ranker.h"

int main() {
  using namespace saga;

  kg::KgGeneratorConfig config;
  config.num_persons = 400;
  kg::GeneratedKg gen = kg::GenerateKg(config);

  graph_engine::ViewDefinition def;
  def.min_confidence = 0.4;
  auto view = graph_engine::GraphView::Build(gen.kg, def);
  embedding::TrainingConfig tc;
  tc.dim = 24;
  tc.epochs = 6;
  embedding::InMemoryTrainer trainer(tc);
  const auto emb = trainer.Train(view);
  serving::FactRanker ranker(&gen.kg, &view, &emb);
  annotation::QueryAnswerer answerer(&gen.kg, &ranker);

  // Build natural queries from real entities: "<director name> movies",
  // "<person> date of birth", "<athlete> team", "<person> spouse".
  std::vector<std::string> queries;
  for (const auto& rec : gen.kg.catalog().records()) {
    if (queries.size() >= 6) break;
    if (gen.kg.catalog().HasType(rec.id, gen.schema.director) &&
        !gen.kg.ObjectsOf(rec.id, gen.schema.directed).empty()) {
      queries.push_back(ToLower(rec.canonical_name) + " movies directed");
    } else if (gen.kg.catalog().HasType(rec.id, gen.schema.athlete)) {
      queries.push_back(ToLower(rec.canonical_name) + " team");
    } else if (gen.kg.catalog().HasType(rec.id, gen.schema.actor) &&
               queries.size() < 4) {
      queries.push_back(ToLower(rec.canonical_name) + " movies");
      queries.push_back(ToLower(rec.canonical_name) + " date of birth");
    }
  }

  for (const std::string& query : queries) {
    const auto answer = answerer.Ask(query);
    std::printf("Q: %s\n   %s\n", query.c_str(),
                answer.explanation.c_str());
    if (!answer.answered) {
      std::printf("   (no answer)\n\n");
      continue;
    }
    for (size_t i = 0; i < std::min<size_t>(3, answer.facts.size()); ++i) {
      const auto& fact = answer.facts[i];
      std::printf("   %zu. %s\n", i + 1,
                  fact.object.is_entity()
                      ? gen.kg.catalog().name(fact.object.entity()).c_str()
                      : fact.object.ToString().c_str());
    }
    std::printf("\n");
  }

  // The disambiguation case: same name, different relations resolve to
  // different namesakes through the query context.
  if (!gen.ambiguous_groups.empty()) {
    const auto& group = gen.ambiguous_groups[0];
    const std::string name = ToLower(gen.kg.catalog().name(group[0]));
    for (const char* suffix : {" team", " movies", " university"}) {
      const auto answer = answerer.Ask(name + suffix);
      std::printf("Q: %s%s\n   %s\n\n", name.c_str(), suffix,
                  answer.explanation.c_str());
    }
  }
  return 0;
}
