// Open-Domain Knowledge Extraction worked example (Figure 6): a missing
// date-of-birth fact for a person who shares a name with someone else.
// The pipeline synthesizes queries, searches the (synthetic) Web,
// extracts conflicting candidates — including the namesake's DOB — and
// corroborates the right one.
//
//   ./build/examples/odke_missing_fact

#include <cstdio>
#include <set>

#include "common/hash.h"
#include "kg/kg_generator.h"
#include "odke/corroborator.h"
#include "odke/pipeline.h"
#include "odke/query_synthesizer.h"
#include "websim/corpus_generator.h"
#include "websim/search_engine.h"

int main() {
  using namespace saga;

  kg::KgGeneratorConfig config;
  config.num_persons = 250;
  config.ambiguous_name_fraction = 0.15;  // plenty of namesakes
  config.withheld_fact_fraction = 0.25;
  kg::GeneratedKg gen = kg::GenerateKg(config);

  websim::CorpusGeneratorConfig cc;
  cc.num_news_pages = 100;
  cc.wrong_fact_rate = 0.12;  // namesake confusions in the wild
  websim::WebCorpus corpus = websim::GenerateCorpus(gen, cc);
  websim::SearchEngine search(&corpus);

  // Find a withheld DOB belonging to an ambiguous name (the "Michelle
  // Williams" setup).
  std::set<uint64_t> ambiguous;
  for (const auto& group : gen.ambiguous_groups) {
    for (kg::EntityId e : group) ambiguous.insert(e.value());
  }
  const kg::GroundTruthFact* target = nullptr;
  for (const auto& w : gen.withheld_facts) {
    if (w.predicate == gen.schema.date_of_birth &&
        ambiguous.count(w.subject.value())) {
      target = &w;
      break;
    }
  }
  if (target == nullptr) {
    for (const auto& w : gen.withheld_facts) {
      if (w.predicate == gen.schema.date_of_birth) {
        target = &w;
        break;
      }
    }
  }
  if (target == nullptr) {
    std::printf("no withheld DOB in this seed\n");
    return 1;
  }

  const std::string& name = gen.kg.catalog().name(target->subject);
  std::printf("(1) Missing fact: (%s, date_of_birth, ?)\n", name.c_str());
  std::printf("    True value (hidden from the KG): %s\n",
              target->object.date_value().ToString().c_str());

  odke::FactGap gap{target->subject, target->predicate,
                    odke::GapReason::kQueryLog, kg::kInvalidTripleIdx};
  odke::QuerySynthesizer synth(&gen.kg);
  std::printf("(2) Synthesized queries:\n");
  for (const auto& q : synth.Synthesize(gap)) {
    std::printf("    \"%s\"\n", q.c_str());
  }

  odke::CorroborationModel model;
  odke::OdkePipeline pipeline(&gen.kg, &corpus, &search, nullptr, &model);
  size_t docs = 0;
  const auto candidates = pipeline.ExtractCandidates(gap, &docs);
  std::printf("(3) Retrieved %zu relevant documents\n", docs);
  std::printf("(4) Extracted %zu candidate facts:\n", candidates.size());
  const auto groups = odke::GroupByValue(candidates);
  for (const auto& group : groups) {
    std::printf("    value=%s  support=%zu  max_conf=%.2f  "
                "infobox=%.0f%%  quality=%.2f\n",
                group.value.ToString().c_str(), group.evidence.size(),
                group.features.max_confidence,
                group.features.infobox_fraction * 100,
                group.features.mean_source_quality);
    for (size_t i = 0; i < std::min<size_t>(2, group.evidence.size());
         ++i) {
      std::printf("      <- %s [%s, conf %.2f] \"%s\"\n",
                  group.evidence[i].domain.c_str(),
                  std::string(
                      odke::ExtractorKindName(group.evidence[i].extractor))
                      .c_str(),
                  group.evidence[i].confidence,
                  group.evidence[i].support.substr(0, 60).c_str());
    }
  }

  const auto result = pipeline.HarvestGap(gap);
  std::printf("(5) Corroborated value: %s (p=%.3f, accepted=%s)\n",
              result.filled ? result.value.ToString().c_str() : "none",
              result.probability, result.filled ? "yes" : "no");
  if (result.filled) {
    std::printf("    %s\n", result.value == target->object
                                ? "CORRECT — matches hidden ground truth"
                                : "WRONG — does not match ground truth");
  }
  return 0;
}
