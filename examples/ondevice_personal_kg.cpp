// On-device personal knowledge (§5, Figure 7): integrate contacts,
// message senders, and calendar invitees into unified Person entities
// with an interruptible pipeline; resolve "message Tim about the SIGMOD
// draft" by context; sync across a laptop/phone/watch fleet.
//
//   ./build/examples/ondevice_personal_kg

#include <cstdio>

#include "common/file_util.h"
#include "ondevice/device_data_generator.h"
#include "ondevice/incremental_pipeline.h"
#include "ondevice/matcher.h"
#include "ondevice/personal_kg.h"
#include "ondevice/sync.h"

int main() {
  using namespace saga;
  using namespace saga::ondevice;

  DeviceDataConfig config;
  config.num_persons = 150;
  DeviceDataset data = GenerateDeviceData(config);
  std::printf("Device sources: %zu raw records for %zu true persons\n",
              data.records.size(), data.num_persons);

  // Incremental, pausable construction: run in small CPU slices, as if
  // yielding to higher-priority device work, checkpointing in between.
  IncrementalPipeline pipeline(&data.records,
                               IncrementalPipeline::Options());
  size_t slices = 0;
  std::string checkpoint;
  while (!pipeline.done()) {
    pipeline.RunSteps(64);
    checkpoint = pipeline.Checkpoint();  // survives process death
    ++slices;
  }
  std::printf("Construction ran in %zu interruptible slices "
              "(peak state: %zu bytes, checkpoint: %zu bytes)\n",
              slices, pipeline.peak_state_bytes(), checkpoint.size());

  const auto quality = EvaluateClustering(pipeline.clusters(), data.truth);
  std::printf("Entity linking quality: precision=%.3f recall=%.3f f1=%.3f\n",
              quality.precision, quality.recall, quality.f1);

  PersonalKg personal(pipeline.FusedPersons());
  std::printf("Personal KG: %zu fused persons\n",
              personal.persons().size());

  // Contextual reference resolution: which Tim?
  const std::string utterance_context =
      "I've added comments to the SIGMOD draft";
  std::printf("\nutterance: \"message Tim that %s\"\n",
              utterance_context.c_str());
  const auto refs = personal.ResolveReference("Tim", utterance_context, 3);
  for (const auto& ref : refs) {
    std::printf("  candidate: %-24s  name=%.2f context=%.2f total=%.2f\n",
                personal.persons()[ref.person].display_name.c_str(),
                ref.name_score, ref.context_score, ref.score);
  }

  // ---- Cross-device sync with per-source preferences ----
  DeviceConfig laptop;
  laptop.id = "laptop";
  laptop.compute_power = 10;
  laptop.has_source[0] = laptop.has_source[2] = true;  // contacts+calendar
  laptop.sync_enabled[0] = laptop.sync_enabled[1] = true;  // not calendar
  DeviceConfig phone;
  phone.id = "phone";
  phone.compute_power = 3;
  phone.has_source[1] = true;  // messages
  phone.sync_enabled[0] = phone.sync_enabled[1] = true;
  DeviceConfig watch;
  watch.id = "watch";
  watch.compute_power = 0.5;
  watch.sync_enabled[0] = watch.sync_enabled[1] = true;

  std::vector<Device> devices;
  devices.emplace_back(laptop);
  devices.emplace_back(phone);
  devices.emplace_back(watch);
  for (const SourceRecord& rec : data.records) {
    if (rec.source == SourceKind::kMessages) {
      devices[1].AddLocalRecord(rec);
    } else {
      devices[0].AddLocalRecord(rec);
    }
  }

  SyncService sync;
  const SyncStats stats = sync.SyncAll(&devices);
  std::printf("\nSync: %zu records shipped (%llu bytes) in %d rounds\n",
              stats.records_sent,
              static_cast<unsigned long long>(stats.bytes_sent),
              stats.rounds);
  std::printf("  contacts consistent: %s\n",
              SyncService::SourcesConsistent(devices, SourceKind::kContacts)
                  ? "yes"
                  : "no");
  std::printf("  calendar stays on laptop only: %s\n",
              devices[1].RecordsOfSource(SourceKind::kCalendar).empty() &&
                      devices[2].RecordsOfSource(SourceKind::kCalendar)
                          .empty()
                  ? "yes"
                  : "no");

  // Offload fusion to the laptop; the watch adopts the result.
  auto dir = MakeTempDir("saga_example_offload");
  if (dir.ok()) {
    const OffloadStats off = OffloadFusion(&devices, *dir);
    std::printf(
        "Offload: %s computed fusion, shipped %zu persons (%llu bytes) "
        "to weaker devices\n",
        off.compute_device.c_str(), off.persons_shipped,
        static_cast<unsigned long long>(off.bytes_shipped));
    (void)RemoveDirRecursively(*dir);
  }
  return 0;
}
